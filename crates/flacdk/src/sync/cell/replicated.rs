//! The `Replicated` backend: node-local reads after a tail check; every
//! node pays the replay of mutations it has not yet caught up with.

use super::{lines, CellInner, SyncCell, SyncState};
use rack_sim::{NodeCtx, SimError};

impl<T: SyncState> SyncCell<T> {
    pub(super) fn replicated_pre_op(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        me: usize,
    ) -> Result<(), SimError> {
        let tail = self.log.tail(ctx)?;
        self.charge_catch_up(ctx, inner, me, tail)
    }

    /// Charge node `me`'s replicated catch-up replay from its watermark
    /// to `target`, touching the real log slots.
    pub(super) fn charge_catch_up(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        me: usize,
        target: u64,
    ) -> Result<(), SimError> {
        if inner.synced[me] >= target {
            return Ok(());
        }
        let head = self.log.head(ctx)?;
        if inner.synced[me] < head {
            // The entries this replica missed were garbage collected:
            // model a bulk snapshot fetch (one fabric read of the state
            // footprint) instead of per-entry replay.
            let lat = ctx.latency();
            ctx.charge(
                lines(self.footprint_bytes) * (lat.invalidate_line_ns + lat.local_write_ns)
                    + lat.global_read_ns,
            );
            inner.synced[me] = head;
        }
        let mut idx = inner.synced[me];
        while idx < target {
            // The replica replays the committed entry: wire read + local
            // apply. The state itself was already folded at commit time;
            // this is the per-node cost of the replication family.
            let _ = self.log.read(ctx, idx)?;
            ctx.charge(ctx.latency().local_write_ns);
            idx += 1;
        }
        inner.synced[me] = target;
        self.applied_cells[me].store(ctx, target)?;
        Ok(())
    }
}
