//! The `Rcu` backend: constant-cost reads off a version cell; writers
//! publish a fresh version and bump it with a fabric atomic.

use super::{lines, SyncCell, SyncState};
use rack_sim::{NodeCtx, SimError};

impl<T: SyncState> SyncCell<T> {
    pub(super) fn rcu_pre_op(
        &self,
        ctx: &NodeCtx,
        is_read: bool,
        op_len: usize,
    ) -> Result<(), SimError> {
        let lat = ctx.latency();
        let _ = self.version.load(ctx)?;
        if is_read {
            ctx.charge(lat.invalidate_line_ns);
        } else {
            ctx.charge(lines(op_len.max(1)) * lat.writeback_line_ns);
            self.version.fetch_add(ctx, 1)?;
        }
        Ok(())
    }
}
