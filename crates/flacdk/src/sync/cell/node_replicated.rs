//! The `NodeReplicated` backend: flat-combined batched log appends plus
//! per-node lazy replicas (NR/OpLog-style, §3.2 + ROADMAP item 2).
//!
//! ## Publication slots
//!
//! Every node owns one line-aligned slot in global memory holding its
//! *list* of pending ops — flat combining publishes operation lists,
//! not single ops, so one publication (one flush + one fabric atomic)
//! and one consume can carry a node's whole pending batch:
//!
//! ```text
//! +0  state   u64   FREE = 0 | PENDING = 1 | CONSUMED = 2 | first idx << 8
//! +8  len     u64   packed bytes
//! +16 packed        [op len u32][framed op ([node][seq][op])] ...
//! ```
//!
//! A publisher writes `PENDING`+`len`+packed ops through the cache,
//! makes them visible with one flush, and then raises its bit in a
//! shared summary mask with a single fabric atomic. The mask is what
//! keeps an *empty* combine cheap: one fabric read answers "anything
//! pending?" instead of a sweep over every node's slot, so the
//! self-combine fast path (one writer at a time) stays competitive with
//! delegation. A publisher crash mid-publish leaves a non-`PENDING`
//! slot (the flush is all-or-nothing) that every combiner ignores.
//!
//! ## The combiner
//!
//! Whoever CASes the combiner cell from 0 to `node+1` drains every
//! `PENDING` slot and appends the whole batch with **one** fabric CAS on
//! the log tail ([`SharedOpLog::append_batch`]), then folds the batch
//! into the authoritative state and marks each drained slot
//! `CONSUMED | first idx << 8` so its publisher learns where its ops
//! landed (a slot's ops occupy consecutive log indices).
//! An updating node tries the claim *first*: the winner's own op rides
//! the batch straight from memory and is never published at all. Losers
//! publish, then alternate between polling their slot and re-trying the
//! claim (the previous combiner may have released before seeing them).
//!
//! ## Replicas and reads
//!
//! [`SyncCell::read`] on this backend stays linearizable: it loads the
//! tail and folds the authoritative state forward (cheap unchecked entry
//! reads). [`SyncCell::read_local`] serves from this node's lazily
//! materialized replica with **zero fabric operations** on the hit path;
//! [`SyncCell::sync_replica`] is the explicit catch-up for
//! linearization-sensitive readers that want the replica warm.
//!
//! ## Crash recovery
//!
//! A combiner can die in the window between draining slots and the tail
//! CAS (nothing committed — slots still `PENDING`) or after the batch
//! landed but before consuming the slots (committed — re-appending
//! would double-apply). [`SyncCell::on_node_crash`] therefore re-elects
//! a combiner with a CAS on the claim word and drains every `PENDING`
//! slot **with dedup**: the `[node][seq]` frame of each publication is
//! searched in the committed window first, and only unseen ops are
//! re-appended. The `nr_combine_crash_*` hooks expose exactly those two
//! windows to `flac-faultstorm`.
//!
//! [`SharedOpLog::append_batch`]: crate::sync::oplog::SharedOpLog::append_batch

use super::{frame_op, lines, unframe, CellInner, SyncCell, SyncState};
use rack_sim::{GAddr, NodeCtx, NodeId, SimError};

/// Publication-slot states (low byte; consumed carries `first idx << 8`).
const SLOT_FREE: u64 = 0;
const SLOT_PENDING: u64 = 1;
const SLOT_CONSUMED_TAG: u64 = 2;

fn consumed_word(idx: u64) -> u64 {
    SLOT_CONSUMED_TAG | (idx << 8)
}

/// Per-op pack header inside a publication slot: a `u32` length prefix
/// before each framed op. Slot sizing accounts for one header so a
/// maximum-size op always fits a publication.
pub(super) const PACK_BYTES: usize = 4;

/// Pack framed ops into a slot payload: `[len u32][framed]` per op.
fn pack_ops(framed: &[Vec<u8>]) -> Vec<u8> {
    let total = framed.iter().map(|f| PACK_BYTES + f.len()).sum();
    let mut buf = Vec::with_capacity(total);
    for f in framed {
        buf.extend_from_slice(&(f.len() as u32).to_le_bytes());
        buf.extend_from_slice(f);
    }
    buf
}

/// Unpack a slot payload back into framed ops. `None` on any framing
/// corruption — the publication is then treated as never made.
fn unpack_ops(buf: &[u8]) -> Option<Vec<Vec<u8>>> {
    let mut ops = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        let len = u32::from_le_bytes(buf.get(at..at + PACK_BYTES)?.try_into().ok()?) as usize;
        at += PACK_BYTES;
        ops.push(buf.get(at..at + len)?.to_vec());
        at += len;
    }
    if ops.is_empty() {
        return None;
    }
    Some(ops)
}

/// A lazily materialized per-node replica: a clone of the state at a
/// log position, advanced by replaying committed entries.
#[derive(Debug)]
pub(super) struct Replica<T> {
    state: T,
    applied: u64,
}

/// One drained publication: a node's pending op list.
struct Pending {
    node: usize,
    ops: Vec<Vec<u8>>,
}

impl<T: SyncState> SyncCell<T> {
    fn slot_addr(&self, node: usize) -> GAddr {
        self.slots.offset((node * self.slot_stride) as u64)
    }

    /// Distance class (LCA level) from this node to the op log's home
    /// leaf. `0` under the uniform home policy — the log then has no
    /// home and every node is equidistant, so the claim path below is
    /// byte-identical to the distance-oblivious protocol.
    fn log_home_distance(&self, ctx: &NodeCtx) -> u32 {
        let topo = ctx.interconnect().topology();
        topo.home_of(self.log.base().0)
            .map_or(0, |home| topo.lca_level(ctx.id(), home))
    }

    /// Count a combiner claim won by a node remote from the log's home:
    /// every append and entry write of that combine crosses the topology
    /// toward the home leaf, so this is the traffic the NUMA tie-break
    /// exists to minimize.
    fn note_combiner_claim(&self, ctx: &NodeCtx) {
        if self.log_home_distance(ctx) > 0 {
            // cold-path: one bump per won combiner claim, not per op.
            ctx.stats()
                .registry()
                .add("sync", "nr_combiner_remote_claims", 1);
        }
    }

    /// Publish packed framed ops into `node`'s slot: state + length +
    /// payload go through the cache and one flush makes them visible
    /// together, then a single fabric atomic raises the node's bit in
    /// the summary mask. A combiner that sees the bit sees the flushed
    /// slot.
    fn publish_slot(&self, ctx: &NodeCtx, node: usize, packed: &[u8]) -> Result<(), SimError> {
        let slot = self.slot_addr(node);
        ctx.write_u64(slot, SLOT_PENDING)?;
        ctx.write_u64(slot.offset(8), packed.len() as u64)?;
        ctx.write(slot.offset(16), packed)?;
        ctx.flush(slot, 16 + packed.len());
        self.pending_mask.fetch_add(ctx, 1 << node)?;
        Ok(())
    }

    /// Read one slot if it is `PENDING` (invalidate + cached reads).
    fn read_slot(&self, ctx: &NodeCtx, node: usize) -> Result<Option<Pending>, SimError> {
        let slot = self.slot_addr(node);
        ctx.invalidate(slot, self.slot_stride);
        if ctx.read_u64(slot)? != SLOT_PENDING {
            return Ok(None);
        }
        let len = ctx.read_u64(slot.offset(8))? as usize;
        if len > self.slot_stride - 16 {
            return Ok(None); // corrupt publication; never acknowledged
        }
        let mut packed = vec![0u8; len];
        ctx.read(slot.offset(16), &mut packed)?;
        Ok(unpack_ops(&packed).map(|ops| Pending { node, ops }))
    }

    /// The combine-path scan: one fabric read of the summary mask, then
    /// only the flagged slots, in node order (deterministic batch
    /// order). Returns the publications plus the mask bits they cover
    /// (the caller clears those bits once the slots are resolved). An
    /// empty combine costs one fabric read, not a full slot sweep.
    fn scan_pending_masked(
        &self,
        ctx: &NodeCtx,
        skip: Option<usize>,
    ) -> Result<(Vec<Pending>, u64), SimError> {
        let mask = self.pending_mask.load(ctx)?;
        if mask == 0 {
            return Ok((Vec::new(), 0));
        }
        let mut out = Vec::new();
        let mut bits = 0u64;
        for node in 0..self.slot_locks.len() {
            if mask & (1 << node) == 0 || Some(node) == skip {
                continue;
            }
            // A flagged slot that is not (yet) PENDING keeps its bit: a
            // later combine picks it up once the publish lands.
            if let Some(p) = self.read_slot(ctx, node)? {
                bits |= 1 << node;
                out.push(p);
            }
        }
        Ok((out, bits))
    }

    /// The recovery-path scan: every slot, mask ignored — a dead
    /// combiner or publisher may have left the summary out of step with
    /// the slots, so recovery trusts only the slots themselves.
    fn scan_pending(&self, ctx: &NodeCtx, skip: Option<usize>) -> Result<Vec<Pending>, SimError> {
        let mut out = Vec::new();
        for node in 0..self.slot_locks.len() {
            if Some(node) == skip {
                continue;
            }
            if let Some(p) = self.read_slot(ctx, node)? {
                out.push(p);
            }
        }
        Ok(out)
    }

    /// Clear resolved publication bits from the summary mask (wrapping
    /// subtract keeps concurrently-raised bits intact).
    fn clear_mask_bits(&self, ctx: &NodeCtx, bits: u64) -> Result<(), SimError> {
        if bits != 0 {
            self.pending_mask.fetch_add(ctx, bits.wrapping_neg())?;
        }
        Ok(())
    }

    /// Tell `node`'s publisher its op landed at `idx`. The combiner
    /// already holds the slot line from the scan, so this is a cached
    /// write plus a line write-back, not an uncached store.
    fn mark_consumed(&self, ctx: &NodeCtx, node: usize, idx: u64) -> Result<(), SimError> {
        let slot = self.slot_addr(node);
        ctx.write_u64(slot, consumed_word(idx))?;
        ctx.flush(slot, 8);
        Ok(())
    }

    /// Abort pending publications (log full): publishers polling their
    /// slot see `FREE` and surface the error; nothing was acknowledged.
    fn abort_slots(&self, ctx: &NodeCtx, pend: &[Pending]) -> Result<(), SimError> {
        for p in pend {
            ctx.store_uncached_u64(self.slot_addr(p.node), SLOT_FREE)?;
        }
        Ok(())
    }

    /// The combine: drain pending slots (plus the combiner's own unpub-
    /// lished op), append the batch with one tail CAS, fold it into the
    /// authoritative state, and mark the drained slots consumed. `f`
    /// runs on the state right after the combiner's own op applies.
    /// Returns `(own op's index, f's output, ops combined)`.
    fn combine_locked<R>(
        &self,
        ctx: &NodeCtx,
        own: Option<(usize, &[u8])>,
        f: impl FnOnce(&T) -> R,
    ) -> Result<(Option<u64>, Option<R>, u64), SimError> {
        let (pend, bits) = self.scan_pending_masked(ctx, own.map(|(me, _)| me))?;
        let mut payloads = Vec::with_capacity(pend.len() + 1);
        if let Some((_, framed)) = own {
            payloads.push(framed.to_vec());
        }
        payloads.extend(pend.iter().flat_map(|p| p.ops.iter().cloned()));
        if payloads.is_empty() {
            return Ok((None, None, 0));
        }
        let combined = payloads.len() as u64;
        let mut inner = self.inner.lock();
        let first = match self.log.append_batch(ctx, &payloads) {
            Ok(first) => first,
            Err(e) => {
                self.abort_slots(ctx, &pend)?;
                self.clear_mask_bits(ctx, bits)?;
                return Err(e);
            }
        };
        // Fold committed entries older than the batch before the batch
        // itself, so log order and apply order agree.
        self.drain_to_cheap(ctx, &mut inner, first)?;
        let mut idx = first;
        let (mut own_idx, mut out) = (None, None);
        if let Some((me, framed)) = own {
            if let Some((_, op)) = unframe(framed) {
                inner.state.apply(op);
                ctx.charge(ctx.latency().local_write_ns);
            }
            inner.applied = idx + 1;
            inner.synced[me] = inner.applied;
            own_idx = Some(idx);
            out = Some(f(&inner.state));
            idx += 1;
        }
        for p in &pend {
            // A publication's ops land consecutively; the consumed word
            // carries the first index.
            self.mark_consumed(ctx, p.node, idx)?;
            for framed in &p.ops {
                if let Some((_, op)) = unframe(framed) {
                    inner.state.apply(op);
                    ctx.charge(ctx.latency().local_write_ns);
                }
                inner.applied = idx + 1;
                idx += 1;
            }
        }
        self.clear_mask_bits(ctx, bits)?;
        Ok((own_idx, out, combined))
    }

    /// The node-replicated write path (dispatched from `update_map`).
    pub(super) fn nr_update_map<R>(
        &self,
        ctx: &NodeCtx,
        op: &[u8],
        f: impl FnOnce(&T) -> R,
    ) -> Result<(u64, R), SimError> {
        let me = self.me(ctx);
        let framed = frame_op(me as u32, self.next_seq(me), op);
        if framed.len() > self.slot_payload_cap {
            return Err(SimError::Protocol(format!(
                "op of {} bytes exceeds slot payload capacity {}",
                op.len(),
                self.slot_payload_cap - super::FRAME_BYTES
            )));
        }
        let _publisher = self.slot_locks[me].lock();
        // Combiner-first: the winner's own op rides the batch straight
        // from memory — no publication fabric traffic at all.
        if self.combiner.compare_exchange(ctx, 0, me as u64 + 1)? == 0 {
            self.note_combiner_claim(ctx);
            let res = self.combine_locked(ctx, Some((me, &framed)), f);
            let released = self.combiner.store(ctx, 0);
            let (own_idx, out, _) = res?;
            released?;
            let idx = own_idx.expect("combiner batches its own op");
            let out = out.expect("post-op closure ran");
            let mut inner = self.inner.lock();
            self.post_op(ctx, &mut inner, me, false, false)?;
            return Ok((idx, out));
        }
        // Waiter: publish, then alternate between polling the slot and
        // re-trying the claim (the active combiner may miss us).
        self.publish_slot(ctx, me, &pack_ops(std::slice::from_ref(&framed)))?;
        // NUMA tie-break: a waiter defers its first `distance` re-claims,
        // so among contenders the node closest to the log's home wins the
        // open combiner word and keeps the batch's tail CAS and entry
        // writes near-home. Distance is 0 under the uniform home policy —
        // no deference, byte-identical claims.
        let defer = u64::from(self.log_home_distance(ctx));
        let mut spins = 0u64;
        let idx = loop {
            let st = ctx.load_uncached_u64(self.slot_addr(me))?;
            if st & 0xff == SLOT_CONSUMED_TAG {
                break st >> 8;
            }
            if st == SLOT_FREE {
                return Err(SimError::Protocol(
                    "publication aborted by combiner (log full)".into(),
                ));
            }
            if spins >= defer && self.combiner.compare_exchange(ctx, 0, me as u64 + 1)? == 0 {
                self.note_combiner_claim(ctx);
                let res = self.combine_locked(ctx, None, |_| ());
                let released = self.combiner.store(ctx, 0);
                res?;
                released?;
                continue; // the next poll sees CONSUMED
            }
            spins += 1;
            if spins > 64 + self.log.capacity() {
                return Err(SimError::Protocol(
                    "combiner stalled; publication fate unknown".into(),
                ));
            }
            ctx.charge(ctx.latency().local_read_ns);
            // The stall bound above assumes a dead combiner; a live one
            // merely descheduled by the host OS must get CPU before we
            // burn through it. No simulated cost — host scheduling only.
            std::thread::yield_now();
        };
        let out = self.nr_post_state(ctx, me, idx, f)?;
        let mut inner = self.inner.lock();
        self.post_op(ctx, &mut inner, me, false, false)?;
        Ok((idx, out))
    }

    /// Run `f` on the state exactly after log index `idx` applied —
    /// from this node's replica when it has not yet passed `idx`,
    /// otherwise from the drained authoritative state (post-batch).
    fn nr_post_state<R>(
        &self,
        ctx: &NodeCtx,
        me: usize,
        idx: u64,
        f: impl FnOnce(&T) -> R,
    ) -> Result<R, SimError> {
        let mut guard = self.replicas[me].lock();
        if let Some(rep) = guard.as_mut() {
            if rep.applied <= idx {
                self.replica_catch_up(ctx, rep, idx + 1)?;
                return Ok(f(&rep.state));
            }
        }
        drop(guard);
        let mut inner = self.inner.lock();
        let tail = self.log.tail(ctx)?;
        self.drain_to_cheap(ctx, &mut inner, tail)?;
        Ok(f(&inner.state))
    }

    /// Linearizable read on the node-replicated backend: catch the
    /// authoritative state up to the tail with cheap entry reads.
    pub(super) fn nr_read_pre_op(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
    ) -> Result<(), SimError> {
        let tail = self.log.tail(ctx)?;
        self.drain_to_cheap(ctx, inner, tail)
    }

    /// Materialize `me`'s replica if absent (a clone of the
    /// authoritative state, charged as one snapshot fetch of the
    /// footprint). Returns the guard.
    fn replica_or_materialize(
        &self,
        ctx: &NodeCtx,
        me: usize,
    ) -> std::sync::MutexGuard<'_, Option<Replica<T>>> {
        let mut guard = self.replicas[me].lock();
        if guard.is_none() {
            let inner = self.inner.lock();
            let lat = ctx.latency();
            ctx.charge(
                lines(self.footprint_bytes) * (lat.invalidate_line_ns + lat.local_write_ns)
                    + lat.global_read_ns,
            );
            *guard = Some(Replica {
                state: inner.state.clone(),
                applied: inner.applied,
            });
        }
        guard
    }

    /// Advance a replica to `target` by replaying committed entries
    /// (holes skipped). Re-snapshots from the authoritative state when
    /// GC collected entries the replica still needed.
    fn replica_catch_up(
        &self,
        ctx: &NodeCtx,
        rep: &mut Replica<T>,
        target: u64,
    ) -> Result<(), SimError> {
        if rep.applied >= target {
            return Ok(());
        }
        let head = self.log.head(ctx)?;
        if rep.applied < head {
            let inner = self.inner.lock();
            let lat = ctx.latency();
            ctx.charge(
                lines(self.footprint_bytes) * (lat.invalidate_line_ns + lat.local_write_ns)
                    + lat.global_read_ns,
            );
            rep.state = inner.state.clone();
            rep.applied = inner.applied;
        }
        while rep.applied < target {
            if let Some(payload) = self.log.read_entry(ctx, rep.applied)? {
                if let Some((_, op)) = unframe(&payload) {
                    rep.state.apply(op);
                    ctx.charge(ctx.latency().local_write_ns);
                }
            }
            rep.applied += 1;
        }
        Ok(())
    }

    /// Read from this node's replica with **zero fabric operations** on
    /// the hit path (replica already materialized). The replica is a
    /// consistent — possibly stale — prefix of the log; use
    /// [`SyncCell::sync_replica`] first (or [`SyncCell::read`]) when the
    /// read is linearization-sensitive. Falls back to [`SyncCell::read`]
    /// on every other backend.
    ///
    /// # Errors
    ///
    /// Propagates memory errors (first-use materialization only).
    pub fn read_local<R>(&self, ctx: &NodeCtx, f: impl FnOnce(&T) -> R) -> Result<R, SimError> {
        if self.inner.lock().policy != super::SyncPolicy::NodeReplicated {
            return self.read(ctx, f);
        }
        let me = self.me(ctx);
        let guard = self.replica_or_materialize(ctx, me);
        let rep = guard.as_ref().expect("replica materialized");
        ctx.charge(ctx.latency().local_read_ns);
        let out = f(&rep.state);
        drop(guard);
        let mut inner = self.inner.lock();
        self.post_op(ctx, &mut inner, me, true, false)?;
        Ok(out)
    }

    /// Explicitly catch this node's replica up to the current log tail.
    /// Returns the replica's applied watermark.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn sync_replica(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        let me = self.me(ctx);
        let mut guard = self.replica_or_materialize(ctx, me);
        let rep = guard.as_mut().expect("replica materialized");
        let tail = self.log.tail(ctx)?;
        self.replica_catch_up(ctx, rep, tail)?;
        Ok(rep.applied)
    }

    /// Combiner takeover after `crashed` died: claim the combiner word
    /// (from the dead holder or from free), then drain every pending
    /// publication with dedup against the committed window — a dead
    /// combiner may have appended the batch before dying, and a blind
    /// re-append would double-apply. Caller holds the host mutex and has
    /// drained the committed tail. Returns whether a dead combiner was
    /// actually replaced.
    pub(super) fn nr_recover(
        &self,
        ctx: &NodeCtx,
        inner: &mut CellInner<T>,
        crashed: NodeId,
    ) -> Result<bool, SimError> {
        let me = self.me(ctx);
        let dead = crashed.0 as u64 + 1;
        let holder = self.combiner.load(ctx)?;
        let (claimed, reelected) = if holder == dead {
            let won = self.combiner.compare_exchange(ctx, dead, me as u64 + 1)? == dead;
            (won, won)
        } else if holder == 0 {
            (
                self.combiner.compare_exchange(ctx, 0, me as u64 + 1)? == 0,
                false,
            )
        } else {
            (false, false) // a live combiner elsewhere owns the slots
        };
        if reelected {
            // cold-path: re-election only fires after a combiner crash.
            ctx.stats().registry().add("sync", "reelections", 1);
        }
        if !claimed {
            return Ok(reelected);
        }
        self.note_combiner_claim(ctx);
        let res = self.nr_recover_drain(ctx, inner);
        let released = self.combiner.store(ctx, 0);
        res?;
        released?;
        Ok(reelected)
    }

    /// The dedup drain: committed-window search per pending publication,
    /// re-append of the unseen ones, then fold to the new tail.
    fn nr_recover_drain(&self, ctx: &NodeCtx, inner: &mut CellInner<T>) -> Result<(), SimError> {
        let pend = self.scan_pending(ctx, None)?;
        if pend.is_empty() {
            return Ok(());
        }
        let bits = pend.iter().fold(0u64, |b, p| b | 1 << p.node);
        let head = self.log.head(ctx)?;
        let tail = self.log.tail(ctx)?;
        let mut fresh: Vec<Pending> = Vec::new();
        for p in pend {
            // Dedup on the publication's *first* op: a slot's ops were
            // appended together (the batch append is all-or-nothing and
            // keeps them adjacent), so either every op committed or
            // none did.
            let Some((key, _)) = p.ops.first().and_then(|framed| unframe(framed)) else {
                // Malformed publication: never acknowledged, drop it.
                ctx.store_uncached_u64(self.slot_addr(p.node), SLOT_FREE)?;
                continue;
            };
            let mut committed_at = None;
            for idx in head..tail {
                if let Some(entry) = self.log.read_entry(ctx, idx)? {
                    if let Some((k, _)) = unframe(&entry) {
                        if k == key {
                            committed_at = Some(idx);
                            break;
                        }
                    }
                }
            }
            match committed_at {
                Some(idx) => self.mark_consumed(ctx, p.node, idx)?,
                None => fresh.push(p),
            }
        }
        if !fresh.is_empty() {
            let payloads: Vec<Vec<u8>> = fresh.iter().flat_map(|p| p.ops.iter().cloned()).collect();
            match self.log.append_batch(ctx, &payloads) {
                Ok(first) => {
                    let mut idx = first;
                    for p in &fresh {
                        self.mark_consumed(ctx, p.node, idx)?;
                        idx += p.ops.len() as u64;
                    }
                }
                Err(e) => {
                    self.abort_slots(ctx, &fresh)?;
                    self.clear_mask_bits(ctx, bits)?;
                    return Err(e);
                }
            }
        }
        self.clear_mask_bits(ctx, bits)?;
        let tail = self.log.tail(ctx)?;
        self.drain_to(ctx, inner, tail)
    }

    // ----- split-protocol hooks (flac-faultstorm / flac-sync-scale) -----

    /// Publish `op` into this node's slot and return, without waiting
    /// for a combiner. Drives the protocol one step at a time from the
    /// fault-storm campaigns and the scaling bench. Returns the
    /// publication's dedup key.
    ///
    /// # Errors
    ///
    /// Propagates memory errors; oversize ops are a protocol error.
    pub fn nr_publish(&self, ctx: &NodeCtx, op: &[u8]) -> Result<u64, SimError> {
        Ok(self.nr_publish_batch(ctx, &[op])?[0])
    }

    /// Publish a *batch* of ops as one publication: one flush and one
    /// fabric atomic carry the whole list, and the combiner consumes it
    /// with one slot write — the publication-side half of flat
    /// combining's amortization. The ops land at consecutive log
    /// indices starting at the index [`SyncCell::nr_poll`] reports.
    /// Returns the per-op dedup keys.
    ///
    /// # Errors
    ///
    /// Protocol errors for an empty batch, an oversize op, or a batch
    /// exceeding the slot; memory errors are propagated.
    pub fn nr_publish_batch(&self, ctx: &NodeCtx, ops: &[&[u8]]) -> Result<Vec<u64>, SimError> {
        if ops.is_empty() {
            return Err(SimError::Protocol("empty publication batch".into()));
        }
        let me = self.me(ctx);
        let _publisher = self.slot_locks[me].lock();
        let mut framed = Vec::with_capacity(ops.len());
        let mut keys = Vec::with_capacity(ops.len());
        for op in ops {
            let f = frame_op(me as u32, self.next_seq(me), op);
            if f.len() > self.slot_payload_cap {
                return Err(SimError::Protocol(format!(
                    "op of {} bytes exceeds slot payload capacity {}",
                    op.len(),
                    self.slot_payload_cap - super::FRAME_BYTES
                )));
            }
            keys.push(unframe(&f).expect("framed header present").0);
            framed.push(f);
        }
        let packed = pack_ops(&framed);
        if packed.len() > self.slot_stride - 16 {
            return Err(SimError::Protocol(format!(
                "publication batch of {} bytes exceeds slot capacity {}",
                packed.len(),
                self.slot_stride - 16
            )));
        }
        self.publish_slot(ctx, me, &packed)?;
        Ok(keys)
    }

    /// Claim the combiner role, run one full combine over the published
    /// slots, release. Returns the number of ops combined.
    ///
    /// # Errors
    ///
    /// `Protocol` if another node holds the combiner role; log and
    /// memory errors are propagated.
    pub fn nr_combine(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        let me = self.me(ctx);
        if self.combiner.compare_exchange(ctx, 0, me as u64 + 1)? != 0 {
            return Err(SimError::Protocol("combiner role already claimed".into()));
        }
        self.note_combiner_claim(ctx);
        let res = self.combine_locked(ctx, None, |_| ());
        let released = self.combiner.store(ctx, 0);
        let (_, _, combined) = res?;
        released?;
        let mut inner = self.inner.lock();
        ctx.stats()
            .registry()
            .add("sync", inner.policy.ops_counter(), combined);
        let _ = &mut inner;
        Ok(combined)
    }

    /// Poll this node's publication slot: `Some(first log index)` once
    /// a combiner consumed it (a batch publication's ops occupy
    /// consecutive indices from there), `None` while still pending.
    ///
    /// # Errors
    ///
    /// `Protocol` when the publication was aborted (log full); memory
    /// errors are propagated.
    pub fn nr_poll(&self, ctx: &NodeCtx) -> Result<Option<u64>, SimError> {
        let st = ctx.load_uncached_u64(self.slot_addr(self.me(ctx)))?;
        if st & 0xff == SLOT_CONSUMED_TAG {
            return Ok(Some(st >> 8));
        }
        if st == SLOT_FREE {
            return Err(SimError::Protocol("publication aborted".into()));
        }
        Ok(None)
    }

    /// Crash hook: the combiner claims the role and scans the slots,
    /// then dies **before the tail CAS**. Nothing is committed; every
    /// publication stays `PENDING` and the combiner word stays claimed
    /// by this node. Returns the number of publications stranded.
    ///
    /// # Errors
    ///
    /// `Protocol` if the combiner role is already claimed.
    pub fn nr_combine_crash_before_append(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        let me = self.me(ctx);
        if self.combiner.compare_exchange(ctx, 0, me as u64 + 1)? != 0 {
            return Err(SimError::Protocol("combiner role already claimed".into()));
        }
        let pend = self.scan_pending(ctx, None)?;
        Ok(pend.iter().map(|p| p.ops.len() as u64).sum())
    }

    /// Crash hook: the combiner appends the batch (tail CAS + committed
    /// entries), then dies **before consuming any slot or releasing the
    /// role**. Publications stay `PENDING` while their ops are already
    /// committed — the double-apply trap recovery's dedup must defuse.
    /// Returns the number of ops committed.
    ///
    /// # Errors
    ///
    /// `Protocol` if the combiner role is already claimed; log and
    /// memory errors are propagated.
    pub fn nr_combine_crash_after_append(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        let me = self.me(ctx);
        if self.combiner.compare_exchange(ctx, 0, me as u64 + 1)? != 0 {
            return Err(SimError::Protocol("combiner role already claimed".into()));
        }
        let pend = self.scan_pending(ctx, None)?;
        if pend.is_empty() {
            return Ok(0);
        }
        let payloads: Vec<Vec<u8>> = pend.iter().flat_map(|p| p.ops.iter().cloned()).collect();
        self.log.append_batch(ctx, &payloads)?;
        // Crash: no slot consumed, no authoritative fold, role not
        // released.
        Ok(payloads.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{SyncCell, SyncCellConfig, SyncPolicy, SyncState};
    use std::sync::Arc;

    use rack_sim::{Rack, RackConfig};

    #[derive(Debug, Default, Clone, PartialEq)]
    struct Tally {
        per_node: Vec<(u32, u32)>,
    }

    impl SyncState for Tally {
        fn apply(&mut self, op: &[u8]) {
            if op.len() < 8 {
                return;
            }
            let node = u32::from_le_bytes(op[0..4].try_into().unwrap());
            let step = u32::from_le_bytes(op[4..8].try_into().unwrap());
            self.per_node.push((node, step));
        }
    }

    fn op(node: u32, step: u32) -> Vec<u8> {
        let mut v = node.to_le_bytes().to_vec();
        v.extend_from_slice(&step.to_le_bytes());
        v
    }

    fn nr_cell(rack: &Rack) -> Arc<SyncCell<Tally>> {
        SyncCell::alloc(
            rack.global(),
            "test_nr",
            SyncCellConfig::new(rack.node_count(), SyncPolicy::NodeReplicated).with_log(256, 48),
            Tally::default(),
        )
        .unwrap()
    }

    #[test]
    fn batched_combine_commits_all_published_ops_in_order() {
        let rack = Rack::new(RackConfig::n_node(4));
        let c = nr_cell(&rack);
        // Three nodes publish, one combine commits the lot.
        for n in 1..4 {
            c.nr_publish(&rack.node(n), &op(n as u32, 0)).unwrap();
        }
        let atomics_before = rack.node(0).stats().snapshot().global_atomics;
        assert_eq!(c.nr_combine(&rack.node(0)).unwrap(), 3);
        // Claim CAS + one tail CAS for the whole batch + mask clear.
        let atomics = rack.node(0).stats().snapshot().global_atomics - atomics_before;
        assert_eq!(atomics, 3, "claim + tail CAS + mask clear, nothing per-op");
        for n in 1..4u64 {
            assert_eq!(c.nr_poll(&rack.node(n as usize)).unwrap(), Some(n - 1));
        }
        assert_eq!(c.committed(&rack.node(0)).unwrap(), 3);
        let (rebuilt, replayed) = c.replay(&rack.node(0), Tally::default()).unwrap();
        assert_eq!(replayed, 3);
        assert_eq!(c.peek(|t| t.clone()), rebuilt);
    }

    #[test]
    fn batch_publication_lands_consecutively_from_polled_index() {
        let rack = Rack::new(RackConfig::n_node(4));
        let c = nr_cell(&rack);
        // One publication carries a node's whole pending list.
        let n1 = rack.node(1);
        let before = n1.stats().snapshot().global_atomics;
        c.nr_publish_batch(&n1, &[&op(1, 10), &op(1, 11)]).unwrap();
        assert_eq!(
            n1.stats().snapshot().global_atomics - before,
            1,
            "one fabric atomic publishes the whole batch"
        );
        c.nr_publish(&rack.node(2), &op(2, 20)).unwrap();
        assert_eq!(c.nr_combine(&rack.node(0)).unwrap(), 3);
        let first = c.nr_poll(&n1).unwrap().unwrap();
        assert_eq!(first, 0, "node 1's ops land first, consecutively");
        assert_eq!(c.nr_poll(&rack.node(2)).unwrap(), Some(2));
        assert_eq!(
            c.peek(|t| t.per_node.clone()),
            vec![(1, 10), (1, 11), (2, 20)],
            "publication order preserved inside the batch"
        );
        let (rebuilt, replayed) = c.replay(&rack.node(0), Tally::default()).unwrap();
        assert_eq!(replayed, 3);
        assert_eq!(c.peek(|t| t.clone()), rebuilt);
    }

    #[test]
    fn update_path_self_combines_and_sees_post_op_state() {
        let rack = Rack::new(RackConfig::n_node(4));
        let c = nr_cell(&rack);
        for i in 0..6u32 {
            let node = (i % 3) as usize;
            let (idx, len) = c
                .update_map(&rack.node(node), &op(node as u32, i), |t| t.per_node.len())
                .unwrap();
            assert_eq!(idx, u64::from(i));
            assert_eq!(len, (i + 1) as usize, "post-op state visible");
        }
        let snap = c.read(&rack.node(3), |t| t.per_node.clone()).unwrap();
        assert_eq!(snap.len(), 6);
    }

    #[test]
    fn read_local_hits_replica_with_zero_fabric_ops() {
        let rack = Rack::new(RackConfig::n_node(4));
        let c = nr_cell(&rack);
        for i in 0..8u32 {
            c.update(&rack.node((i % 2) as usize), &op(i % 2, i))
                .unwrap();
        }
        let n3 = rack.node(3);
        assert_eq!(c.sync_replica(&n3).unwrap(), 8);
        let before = n3.stats().snapshot();
        for _ in 0..32 {
            assert_eq!(c.read_local(&n3, |t| t.per_node.len()).unwrap(), 8);
        }
        let after = n3.stats().snapshot();
        assert_eq!(after.global_reads, before.global_reads, "no fabric reads");
        assert_eq!(
            after.global_writes, before.global_writes,
            "no fabric writes"
        );
        assert_eq!(after.global_atomics, before.global_atomics, "no atomics");
        assert_eq!(after.messages_sent, before.messages_sent, "no messages");
        // The replica is stale until synced, then current again.
        c.update(&rack.node(0), &op(0, 99)).unwrap();
        assert_eq!(c.read_local(&n3, |t| t.per_node.len()).unwrap(), 8);
        c.sync_replica(&n3).unwrap();
        assert_eq!(c.read_local(&n3, |t| t.per_node.len()).unwrap(), 9);
    }

    #[test]
    fn combiner_crash_before_append_loses_nothing() {
        let rack = Rack::new(RackConfig::n_node(4));
        let c = nr_cell(&rack);
        c.update(&rack.node(0), &op(0, 0)).unwrap();
        c.nr_publish(&rack.node(1), &op(1, 1)).unwrap();
        c.nr_publish(&rack.node(2), &op(2, 2)).unwrap();
        // Node 3 claims, scans, dies before the tail CAS.
        assert_eq!(c.nr_combine_crash_before_append(&rack.node(3)).unwrap(), 2);
        rack.faults().crash_node(rack_sim::NodeId(3), 0);
        assert_eq!(c.committed(&rack.node(0)).unwrap(), 1, "nothing committed");
        // Recovery re-elects and commits the stranded publications.
        assert!(c.on_node_crash(&rack.node(0), rack_sim::NodeId(3)).unwrap());
        assert_eq!(c.committed(&rack.node(0)).unwrap(), 3);
        assert_eq!(c.nr_poll(&rack.node(1)).unwrap(), Some(1));
        assert_eq!(c.nr_poll(&rack.node(2)).unwrap(), Some(2));
        let (rebuilt, replayed) = c.replay(&rack.node(0), Tally::default()).unwrap();
        assert_eq!(replayed, 3);
        assert_eq!(c.peek(|t| t.clone()), rebuilt);
    }

    #[test]
    fn combiner_crash_after_append_never_double_applies() {
        let rack = Rack::new(RackConfig::n_node(4));
        let c = nr_cell(&rack);
        // A batch publication and a single one, so recovery dedup also
        // covers multi-op slots.
        c.nr_publish_batch(&rack.node(1), &[&op(1, 1), &op(1, 2)])
            .unwrap();
        c.nr_publish(&rack.node(2), &op(2, 3)).unwrap();
        // Node 3 appends the batch, dies before consuming the slots.
        assert_eq!(c.nr_combine_crash_after_append(&rack.node(3)).unwrap(), 3);
        rack.faults().crash_node(rack_sim::NodeId(3), 0);
        assert_eq!(c.committed(&rack.node(0)).unwrap(), 3, "batch landed");
        // Recovery dedups against the committed window: no re-append.
        assert!(c.on_node_crash(&rack.node(0), rack_sim::NodeId(3)).unwrap());
        assert_eq!(
            c.committed(&rack.node(0)).unwrap(),
            3,
            "no duplicate entries"
        );
        assert_eq!(c.nr_poll(&rack.node(1)).unwrap(), Some(0));
        assert_eq!(c.nr_poll(&rack.node(2)).unwrap(), Some(2));
        let (rebuilt, replayed) = c.replay(&rack.node(0), Tally::default()).unwrap();
        assert_eq!(replayed, 3);
        assert_eq!(c.peek(|t| t.clone()), rebuilt);
        assert_eq!(rebuilt.per_node, vec![(1, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn dead_publisher_slot_drains_on_recovery() {
        let rack = Rack::new(RackConfig::n_node(4));
        let c = nr_cell(&rack);
        c.nr_publish(&rack.node(2), &op(2, 7)).unwrap();
        rack.faults().crash_node(rack_sim::NodeId(2), 0);
        // No combiner was involved; recovery still commits the orphan.
        c.on_node_crash(&rack.node(0), rack_sim::NodeId(2)).unwrap();
        assert_eq!(c.committed(&rack.node(0)).unwrap(), 1);
        assert_eq!(c.peek(|t| t.per_node.clone()), vec![(2, 7)]);
    }

    /// Total `sync/nr_combiner_remote_claims` recorded on `node`.
    fn remote_claims(rack: &Rack, node: usize) -> u64 {
        rack.node(node)
            .stats()
            .snapshot()
            .subsystems
            .iter()
            .find(|c| c.subsystem == "sync" && c.name == "nr_combiner_remote_claims")
            .map_or(0, |c| c.value)
    }

    #[test]
    fn remote_combiner_claims_counted_under_interleaved_home() {
        // A two-rack pod with an interleaved home: the log's entry
        // region lives on one leaf, so some nodes are remote from it.
        let rack = Rack::new(RackConfig::pod(2, 2));
        let c = nr_cell(&rack);
        let n0 = rack.node(0);
        let topo = n0.interconnect().topology();
        let home = topo.home_of(c.log.base().0).expect("interleaved home");
        let far = (0..rack.node_count())
            .max_by_key(|&n| topo.lca_level(rack_sim::NodeId(n), home))
            .unwrap();
        assert!(topo.lca_level(rack_sim::NodeId(far), home) > 0);

        c.update(&rack.node(far), &op(far as u32, 1)).unwrap();
        assert_eq!(remote_claims(&rack, far), 1, "off-home combine counted");
        c.update(&rack.node(home.0), &op(home.0 as u32, 2)).unwrap();
        assert_eq!(remote_claims(&rack, home.0), 0, "home-leaf combine is not");
    }

    #[test]
    fn flat_rack_never_counts_remote_claims() {
        let rack = Rack::new(RackConfig::n_node(4));
        let c = nr_cell(&rack);
        for n in 0..4 {
            c.update(&rack.node(n), &op(n as u32, 1)).unwrap();
        }
        for n in 0..4 {
            assert_eq!(remote_claims(&rack, n), 0, "uniform home: no distance");
        }
    }

    #[test]
    fn remote_waiters_defer_reclaims_toward_the_log_home() {
        let rack = Rack::new(RackConfig::pod(2, 2));
        let c = nr_cell(&rack);
        let n0 = rack.node(0);
        let topo = n0.interconnect().topology();
        let home = topo.home_of(c.log.base().0).expect("interleaved home");
        let far = (0..rack.node_count())
            .max_by_key(|&n| topo.lca_level(rack_sim::NodeId(n), home))
            .unwrap();
        let dist = u64::from(topo.lca_level(rack_sim::NodeId(far), home));
        assert!(dist > 0 && far != home.0);
        let other = (0..rack.node_count())
            .find(|&n| n != far && n != home.0)
            .unwrap();

        // Hold the combiner word hostage, then drive a near and a far
        // waiter to the stall error: the far one must have skipped its
        // first `dist` re-claim CASes in deference to closer peers.
        c.nr_combine_crash_before_append(&rack.node(other)).unwrap();
        let atomics_spent = |n: usize| {
            let node = rack.node(n);
            let before = node.stats().snapshot().global_atomics;
            assert!(c.update(&node, &op(n as u32, 9)).is_err(), "stalled");
            node.stats().snapshot().global_atomics - before
        };
        let near_spent = atomics_spent(home.0);
        let far_spent = atomics_spent(far);
        assert_eq!(near_spent - far_spent, dist, "deferred claims = distance");
    }

    #[test]
    fn log_full_aborts_waiters_cleanly() {
        let rack = Rack::new(RackConfig::n_node(4));
        let c: Arc<SyncCell<Tally>> = SyncCell::alloc(
            rack.global(),
            "test_nr_full",
            SyncCellConfig::new(4, SyncPolicy::NodeReplicated).with_log(2, 48),
            Tally::default(),
        )
        .unwrap();
        c.update(&rack.node(0), &op(0, 0)).unwrap();
        c.update(&rack.node(0), &op(0, 1)).unwrap();
        c.nr_publish(&rack.node(1), &op(1, 2)).unwrap();
        assert!(c.nr_combine(&rack.node(0)).is_err(), "ring full");
        assert!(
            matches!(
                c.nr_poll(&rack.node(1)),
                Err(rack_sim::SimError::Protocol(_))
            ),
            "waiter sees the abort"
        );
        assert_eq!(c.peek(|t| t.per_node.len()), 2, "state untouched");
    }
}
