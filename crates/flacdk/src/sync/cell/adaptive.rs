//! The adaptive policy driver: observe the op mix, propose a backend.

use super::SyncPolicy;

/// Tuning knobs for the adaptive policy driver.
///
/// The driver observes a window of operations, computes the read
/// percentage, and proposes a backend: `>= promote_read_pct` →
/// [`SyncPolicy::Replicated`]; `<= demote_read_pct` →
/// [`SyncPolicy::NodeReplicated`] when the window saw two or more
/// distinct writer nodes (batched appends amortize the fabric atomic),
/// [`SyncPolicy::Delegated`] when one node produced every write (a
/// single owner beats paying the combiner protocol); in between → keep
/// the current one. The gap between the two thresholds plus the
/// `confirm_windows` requirement (the proposal must repeat in
/// consecutive windows) is the hysteresis that keeps a borderline
/// workload from thrashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Operations per observation window.
    pub window_ops: u64,
    /// Read percentage at or above which replication is proposed.
    pub promote_read_pct: u32,
    /// Read percentage at or below which a write-oriented backend
    /// (delegation or node replication) is proposed.
    pub demote_read_pct: u32,
    /// Consecutive agreeing windows required before switching.
    pub confirm_windows: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window_ops: 64,
            promote_read_pct: 80,
            demote_read_pct: 60,
            confirm_windows: 2,
        }
    }
}

/// The runtime state of the adaptive driver.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    cfg: AdaptiveConfig,
    window_reads: u64,
    window_writes: u64,
    window_remote: u64,
    /// Bitmask of nodes that wrote in this window (node 63 collects
    /// every higher id; distinctness is all the driver needs).
    window_writers: u64,
    candidate: Option<SyncPolicy>,
    streak: u32,
}

impl AdaptivePolicy {
    pub(super) fn new(cfg: AdaptiveConfig) -> Self {
        AdaptivePolicy {
            cfg,
            window_reads: 0,
            window_writes: 0,
            window_remote: 0,
            window_writers: 0,
            candidate: None,
            streak: 0,
        }
    }

    /// Record one op; when the window closes, return the policy the
    /// driver wants to switch to (hysteresis already applied).
    pub(super) fn observe(
        &mut self,
        current: SyncPolicy,
        is_read: bool,
        remote: bool,
        writer: Option<usize>,
    ) -> Option<SyncPolicy> {
        if is_read {
            self.window_reads += 1;
        } else {
            self.window_writes += 1;
        }
        if remote {
            self.window_remote += 1;
        }
        if let Some(node) = writer {
            self.window_writers |= 1 << node.min(63);
        }
        let total = self.window_reads + self.window_writes;
        if total < self.cfg.window_ops {
            return None;
        }
        let read_pct = (100 * self.window_reads / total) as u32;
        let multi_writer = self.window_writers.count_ones() >= 2;
        self.window_reads = 0;
        self.window_writes = 0;
        self.window_remote = 0;
        self.window_writers = 0;
        let proposal = if read_pct >= self.cfg.promote_read_pct {
            SyncPolicy::Replicated
        } else if read_pct <= self.cfg.demote_read_pct {
            if multi_writer {
                SyncPolicy::NodeReplicated
            } else {
                SyncPolicy::Delegated
            }
        } else {
            current
        };
        if proposal == current {
            self.candidate = None;
            self.streak = 0;
            return None;
        }
        if self.candidate == Some(proposal) {
            self.streak += 1;
        } else {
            self.candidate = Some(proposal);
            self.streak = 1;
        }
        if self.streak >= self.cfg.confirm_windows {
            self.candidate = None;
            self.streak = 0;
            Some(proposal)
        } else {
            None
        }
    }
}
