//! Baseline lock-based synchronization over global memory.
//!
//! The lock word itself stays correct on non-coherent fabrics because it
//! is manipulated exclusively with fabric atomics. The *protected data*,
//! however, is only safe if every critical section follows the
//! invalidate-before-read / write-back-after-write discipline that
//! [`LockGuard::read_sync`] and [`LockGuard::write_sync`] implement — and
//! doing so costs a cache flush per section on top of two fabric atomics,
//! which is exactly why the paper steers kernel data structures toward
//! the lock-free families instead. The ablation benches (`figures --
//! sync`) quantify this.

use crate::hw::GlobalCell;
use rack_sim::{GAddr, GlobalMemory, NodeCtx, SimError};

/// A test-and-set spinlock whose lock word lives in global memory.
#[derive(Debug, Clone, Copy)]
pub struct GlobalSpinLock {
    word: GlobalCell,
}

impl GlobalSpinLock {
    /// Allocate an unlocked lock in global memory.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc(global: &GlobalMemory) -> Result<Self, SimError> {
        Ok(GlobalSpinLock {
            word: GlobalCell::alloc(global, 0)?,
        })
    }

    /// Address of the lock word (for diagnostics and fault injection).
    pub fn addr(&self) -> GAddr {
        self.word.addr()
    }

    /// Acquire the lock, spinning on fabric CAS until it is free.
    ///
    /// Each failed attempt costs a full fabric atomic, so contention is
    /// expensive by construction — matching real non-coherent fabrics.
    ///
    /// # Errors
    ///
    /// Propagates node-down / poison errors. Never deadlocks against a
    /// *crashed* holder: if the holder node is marked dead, the lock is
    /// considered abandoned and is broken by the acquirer.
    pub fn lock<'a>(&self, ctx: &'a NodeCtx) -> Result<LockGuard<'a>, SimError> {
        let me = ctx.id().0 as u64 + 1;
        let mut spins = 0u64;
        loop {
            let prev = self.word.compare_exchange(ctx, 0, me)?;
            if prev == 0 {
                return Ok(LockGuard {
                    lock: *self,
                    ctx,
                    released: false,
                });
            }
            spins += 1;
            // Exponential-ish backoff, capped; charged as compute time.
            ctx.charge((spins.min(16)) * 50);
            if spins > 1_000_000 {
                return Err(SimError::Protocol("spinlock livelock".into()));
            }
        }
    }

    /// Try to acquire without spinning.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] if the lock is held; otherwise as
    /// [`GlobalSpinLock::lock`].
    pub fn try_lock<'a>(&self, ctx: &'a NodeCtx) -> Result<LockGuard<'a>, SimError> {
        let me = ctx.id().0 as u64 + 1;
        let prev = self.word.compare_exchange(ctx, 0, me)?;
        if prev == 0 {
            Ok(LockGuard {
                lock: *self,
                ctx,
                released: false,
            })
        } else {
            Err(SimError::WouldBlock)
        }
    }

    /// Current holder (node id + 1), or 0 if free. Diagnostic only.
    ///
    /// # Errors
    ///
    /// Propagates node-down / poison errors.
    pub fn holder(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        self.word.load(ctx)
    }
}

/// RAII guard for [`GlobalSpinLock`]. Releases on drop.
#[derive(Debug)]
pub struct LockGuard<'a> {
    lock: GlobalSpinLock,
    ctx: &'a NodeCtx,
    released: bool,
}

impl<'a> LockGuard<'a> {
    /// Coherently read protected data: invalidate the node's cached copy
    /// first so the read observes the previous holder's write-back.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn read_sync(&self, addr: GAddr, buf: &mut [u8]) -> Result<(), SimError> {
        self.ctx.invalidate(addr, buf.len());
        self.ctx.read(addr, buf)
    }

    /// Coherently write protected data: write through the cache and write
    /// it back before the lock can be released to another node.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn write_sync(&self, addr: GAddr, buf: &[u8]) -> Result<(), SimError> {
        self.ctx.write(addr, buf)?;
        self.ctx.writeback(addr, buf.len());
        Ok(())
    }

    /// Explicitly release (equivalent to drop, but surfaces errors).
    ///
    /// # Errors
    ///
    /// Propagates node-down / poison errors.
    pub fn unlock(mut self) -> Result<(), SimError> {
        self.released = true;
        self.lock.word.store(self.ctx, 0)
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        if !self.released {
            // Destructors must not fail; a dead node simply abandons the
            // lock (recovery handles it).
            let _ = self.lock.word.store(self.ctx, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    #[test]
    fn lock_excludes_and_releases() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let lock = GlobalSpinLock::alloc(rack.global()).unwrap();
        let g = lock.lock(&n0).unwrap();
        assert!(matches!(lock.try_lock(&n1), Err(SimError::WouldBlock)));
        assert_eq!(lock.holder(&n1).unwrap(), 1);
        drop(g);
        assert_eq!(lock.holder(&n1).unwrap(), 0);
        let g1 = lock.try_lock(&n1).unwrap();
        g1.unlock().unwrap();
    }

    #[test]
    fn naive_cached_access_under_lock_is_stale() {
        // The motivating bug: correct locking, but no flush discipline.
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let lock = GlobalSpinLock::alloc(rack.global()).unwrap();
        let data = rack.global().alloc(8, 8).unwrap();

        // n1 caches the initial value outside any critical section.
        assert_eq!(n1.read_u64(data).unwrap(), 0);

        // n0 takes the lock and writes WITHOUT writeback.
        let g0 = lock.lock(&n0).unwrap();
        n0.write_u64(data, 99).unwrap();
        drop(g0);

        // n1 takes the lock and reads WITHOUT invalidate: stale zero.
        let g1 = lock.lock(&n1).unwrap();
        assert_eq!(
            n1.read_u64(data).unwrap(),
            0,
            "locks alone cannot fix incoherence"
        );
        drop(g1);
    }

    #[test]
    fn sync_discipline_makes_lock_correct() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let lock = GlobalSpinLock::alloc(rack.global()).unwrap();
        let data = rack.global().alloc(8, 8).unwrap();

        // Warm n1's stale cache.
        assert_eq!(n1.read_u64(data).unwrap(), 0);

        let g0 = lock.lock(&n0).unwrap();
        g0.write_sync(data, &7u64.to_le_bytes()).unwrap();
        drop(g0);

        let g1 = lock.lock(&n1).unwrap();
        let mut buf = [0u8; 8];
        g1.read_sync(data, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 7);
    }

    #[test]
    fn contended_lock_charges_more_than_uncontended() {
        let rack = Rack::new(RackConfig::small_test());
        let (n0, n1) = (rack.node(0), rack.node(1));
        let lock = GlobalSpinLock::alloc(rack.global()).unwrap();

        let t0 = n1.clock().now();
        lock.lock(&n1).unwrap().unlock().unwrap();
        let uncontended = n1.clock().now() - t0;

        let _held = lock.lock(&n0).unwrap();
        let t1 = n1.clock().now();
        for _ in 0..10 {
            assert!(lock.try_lock(&n1).is_err());
        }
        let contended = n1.clock().now() - t1;
        assert!(contended > uncontended);
    }
}
