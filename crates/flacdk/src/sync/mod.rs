//! Level-2 FlacDK library: synchronization interfaces.
//!
//! Paper §3.2: lock-based synchronization over rack-scale shared memory is
//! ineffective — locks hammer a few contended lines whose coherence must
//! then be maintained in software, on top of high fabric latency. FlacDK
//! therefore provides, besides a baseline [`spinlock::GlobalSpinLock`]
//! (kept for comparison and for rarely-contended slow paths), the three
//! lock-free families the paper identifies:
//!
//! * **Replication** ([`replicated`]) — every node holds a local replica;
//!   a shared [`oplog::SharedOpLog`] carries mutations, replayed on each
//!   node. Reads are node-local; only writes touch the fabric.
//! * **Delegation** ([`delegation`]) — state is partitioned; each
//!   partition has one owner node that executes all operations on it,
//!   with other nodes shipping requests over the interconnect.
//! * **Quiescence** ([`rcu`]) — RCU-style multi-version updates: writers
//!   publish fresh copies and retire old ones; [`reclaim`] frees retired
//!   versions once no reader *and no checkpoint* can still reference
//!   them. Because readers always consume freshly-published blocks, the
//!   stale-cache-line problem turns into plain RCU version tracking
//!   (the "bounded incoherence" idea the paper cites).

pub mod cell;
pub mod delegation;
pub mod oplog;
pub mod rcu;
pub mod reclaim;
pub mod replicated;
pub mod spinlock;

pub use cell::{
    AdaptiveConfig, SyncCell, SyncCellConfig, SyncPolicy, SyncRecover, SyncState, FRAME_BYTES,
};
pub use delegation::{DelegationClient, DelegationServer, Service};
pub use oplog::SharedOpLog;
pub use rcu::{EpochManager, RcuHandle, VersionedCell};
pub use reclaim::RetireList;
pub use replicated::{Replica, ReplicatedHandle, ReplicatedLog};
pub use spinlock::GlobalSpinLock;
