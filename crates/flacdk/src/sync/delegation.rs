//! Delegation-based synchronization (ffwd / flat-combining style).
//!
//! Paper §3.2: *"This approach partitions data access between nodes, and
//! each node exclusively manipulates a partition. When a node accesses
//! other partitions, it sends requests to the owner node which performs
//! the operation on behalf of the requesting node."*
//!
//! Because only the owner ever touches a partition's memory, the
//! partition needs **no cross-node cache management at all** — requests
//! and responses ride the interconnect message fabric. The owner runs a
//! [`DelegationServer`] that drains its request port; remote nodes use a
//! [`DelegationClient`]. Operations execute in the owner's local memory
//! at local speed.

use crate::wire::{DecodeError, Decoder, Encoder};
use rack_sim::{NodeCtx, NodeId, SimError};
use std::sync::Arc;

/// Decode one delegation request frame: `[client u64][reply_port u64][req bytes]`.
///
/// # Errors
///
/// Returns the typed [`DecodeError`] (offset + bytes missing) of the
/// first field that fails to parse, so droppers can log *why* a frame
/// was malformed instead of silently pattern-matching it away.
fn decode_request(payload: &[u8]) -> Result<(NodeId, u16, &[u8]), DecodeError> {
    let mut d = Decoder::new(payload);
    let client = d.u64()?;
    let reply_port = d.u64()?;
    let req = d.bytes()?;
    Ok((NodeId(client as usize), reply_port as u16, req))
}

/// A service whose state is owned by exactly one node.
pub trait Service {
    /// Execute one request against the owned state, producing a response.
    fn handle(&mut self, request: &[u8]) -> Vec<u8>;
}

impl<F> Service for F
where
    F: FnMut(&[u8]) -> Vec<u8>,
{
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// The owning side of a delegated partition.
#[derive(Debug)]
pub struct DelegationServer<S: Service> {
    node: Arc<NodeCtx>,
    port: u16,
    service: S,
    served: u64,
    malformed: Vec<DecodeError>,
}

impl<S: Service> DelegationServer<S> {
    /// Serve `service` on `node`'s `port`.
    pub fn new(node: Arc<NodeCtx>, port: u16, service: S) -> Self {
        DelegationServer {
            node,
            port,
            service,
            served: 0,
            malformed: Vec::new(),
        }
    }

    /// Drain and execute all pending requests, replying to each client.
    /// Returns the number of requests served.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors (a dead client's reply failure is
    /// swallowed: the client crashed, not us).
    pub fn poll(&mut self) -> Result<usize, SimError> {
        let mut served = 0;
        loop {
            let msg = match self.node.try_recv(self.port) {
                Ok(m) => m,
                Err(SimError::WouldBlock) => break,
                Err(e) => return Err(e),
            };
            let (client, reply_port, req) = match decode_request(&msg.payload) {
                Ok(frame) => frame,
                Err(err) => {
                    // Malformed frame: drop it, but leave an audit trail
                    // (the typed error says which byte ran short).
                    self.node
                        .stats()
                        .registry()
                        .add("sync", "delegation_malformed", 1);
                    self.malformed.push(err);
                    continue;
                }
            };
            // The owner executes on local state at local-memory speed.
            self.node.charge(self.node.latency().local_read_ns);
            let resp = self.service.handle(req);
            self.node.charge(self.node.latency().local_write_ns);
            served += 1;
            self.served += 1;
            match self.node.send(client, reply_port, resp) {
                Ok(_) => {}
                Err(SimError::NodeDown { .. }) | Err(SimError::LinkDown { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(served)
    }

    /// Total requests served over the server's lifetime.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Typed decode errors of frames dropped as malformed, in arrival
    /// order (diagnostics; also counted as `sync/delegation_malformed`).
    pub fn malformed(&self) -> &[DecodeError] {
        &self.malformed
    }

    /// Execute a request directly against the local state (the owner's
    /// own fast path — no messaging).
    pub fn execute_local(&mut self, request: &[u8]) -> Vec<u8> {
        self.node.charge(self.node.latency().local_read_ns);
        let resp = self.service.handle(request);
        self.node.charge(self.node.latency().local_write_ns);
        self.served += 1;
        resp
    }

    /// The node that owns this partition.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }

    /// Access the owned service state (e.g. for checkpointing).
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Mutable access to the owned service state (e.g. for recovery).
    pub fn service_mut(&mut self) -> &mut S {
        &mut self.service
    }
}

/// A remote node's handle for invoking a delegated partition.
#[derive(Debug, Clone)]
pub struct DelegationClient {
    node: Arc<NodeCtx>,
    server: NodeId,
    server_port: u16,
    reply_port: u16,
}

impl DelegationClient {
    /// Client on `node` targeting `server`'s `server_port`; replies arrive
    /// on this node's `reply_port`.
    pub fn new(node: Arc<NodeCtx>, server: NodeId, server_port: u16, reply_port: u16) -> Self {
        DelegationClient {
            node,
            server,
            server_port,
            reply_port,
        }
    }

    /// Ship a request to the owner. Returns the simulated arrival time.
    ///
    /// # Errors
    ///
    /// Fails if the owner is down or the link is severed.
    pub fn send(&self, request: &[u8]) -> Result<u64, SimError> {
        let mut e = Encoder::new();
        e.put_u64(self.node.id().0 as u64)
            .put_u64(u64::from(self.reply_port))
            .put_bytes(request);
        self.node.send(self.server, self.server_port, e.into_vec())
    }

    /// Non-blocking receive of the next response.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] when no response has arrived.
    pub fn try_recv(&self) -> Result<Vec<u8>, SimError> {
        Ok(self.node.try_recv(self.reply_port)?.payload)
    }

    /// The node this client runs on.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }

    /// The owner node this client delegates to.
    pub fn server(&self) -> NodeId {
        self.server
    }
}

/// Convenience for cooperative (single-threaded) simulations and tests:
/// send `request`, step the server once, and collect the response.
///
/// # Errors
///
/// Propagates fabric errors; [`SimError::WouldBlock`] if the server
/// produced no response.
pub fn call_stepped<S: Service>(
    client: &DelegationClient,
    server: &mut DelegationServer<S>,
    request: &[u8],
) -> Result<Vec<u8>, SimError> {
    client.send(request)?;
    server.poll()?;
    client.try_recv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    /// A delegated map fragment: u64 -> u64.
    #[derive(Debug, Default)]
    struct KvPartition {
        map: std::collections::HashMap<u64, u64>,
    }

    impl Service for KvPartition {
        fn handle(&mut self, request: &[u8]) -> Vec<u8> {
            let mut d = Decoder::new(request);
            let op = d.u8().unwrap();
            let k = d.u64().unwrap();
            match op {
                0 => {
                    let v = d.u64().unwrap();
                    self.map.insert(k, v);
                    vec![1]
                }
                _ => {
                    let mut e = Encoder::new();
                    match self.map.get(&k) {
                        Some(v) => e.put_u8(1).put_u64(*v),
                        None => e.put_u8(0),
                    };
                    e.into_vec()
                }
            }
        }
    }

    fn put(k: u64, v: u64) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(0).put_u64(k).put_u64(v);
        e.into_vec()
    }

    fn get(k: u64) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(1).put_u64(k);
        e.into_vec()
    }

    #[test]
    fn remote_ops_execute_on_owner() {
        let rack = Rack::new(RackConfig::small_test());
        let mut server = DelegationServer::new(rack.node(0), 10, KvPartition::default());
        let client = DelegationClient::new(rack.node(1), NodeId(0), 10, 11);

        assert_eq!(
            call_stepped(&client, &mut server, &put(5, 50)).unwrap(),
            vec![1]
        );
        let resp = call_stepped(&client, &mut server, &get(5)).unwrap();
        let mut d = Decoder::new(&resp);
        assert_eq!(d.u8().unwrap(), 1);
        assert_eq!(d.u64().unwrap(), 50);
        assert_eq!(server.served(), 2);
    }

    #[test]
    fn owner_fast_path_bypasses_fabric() {
        let rack = Rack::new(RackConfig::small_test());
        let mut server = DelegationServer::new(rack.node(0), 10, KvPartition::default());
        let msgs_before = rack.node(0).stats().snapshot().messages_sent;
        server.execute_local(&put(1, 2));
        let resp = server.execute_local(&get(1));
        assert_eq!(Decoder::new(&resp).u8().unwrap(), 1);
        assert_eq!(rack.node(0).stats().snapshot().messages_sent, msgs_before);
    }

    #[test]
    fn missing_key_reports_absent() {
        let rack = Rack::new(RackConfig::small_test());
        let mut server = DelegationServer::new(rack.node(0), 10, KvPartition::default());
        let client = DelegationClient::new(rack.node(1), NodeId(0), 10, 11);
        let resp = call_stepped(&client, &mut server, &get(42)).unwrap();
        assert_eq!(Decoder::new(&resp).u8().unwrap(), 0);
    }

    #[test]
    fn malformed_request_is_dropped_not_fatal() {
        let rack = Rack::new(RackConfig::small_test());
        let mut server = DelegationServer::new(rack.node(0), 10, KvPartition::default());
        rack.node(1).send(NodeId(0), 10, vec![1, 2, 3]).unwrap();
        assert_eq!(server.poll().unwrap(), 0);
        // The typed decode error is kept: short read at offset 0.
        assert_eq!(server.malformed().len(), 1);
        assert_eq!(server.malformed()[0].at, 0);
    }

    #[test]
    fn dead_owner_fails_fast() {
        let rack = Rack::new(RackConfig::small_test());
        let client = DelegationClient::new(rack.node(1), NodeId(0), 10, 11);
        rack.faults().crash_node(NodeId(0), 0);
        assert!(matches!(
            client.send(&get(1)),
            Err(SimError::NodeDown { .. })
        ));
    }

    #[test]
    fn closures_are_services() {
        let rack = Rack::new(RackConfig::small_test());
        let mut count = 0u64;
        let mut server = DelegationServer::new(rack.node(0), 10, move |_req: &[u8]| {
            count += 1;
            count.to_le_bytes().to_vec()
        });
        let client = DelegationClient::new(rack.node(1), NodeId(0), 10, 11);
        assert_eq!(
            call_stepped(&client, &mut server, b"x").unwrap(),
            1u64.to_le_bytes()
        );
        assert_eq!(
            call_stepped(&client, &mut server, b"x").unwrap(),
            2u64.to_le_bytes()
        );
    }
}
