//! RCU copy-on-write radix tree in global memory.
//!
//! Maps `u64` keys to `u64` values with 6-bit fanout (64 children per
//! node). Interior and leaf nodes are immutable once published: an
//! update copies the root-to-leaf path, links the new leaf, and CAS-es
//! the root pointer; displaced nodes are retired into an RCU
//! [`RetireList`]. Readers traverse under an [`RcuReadGuard`],
//! invalidating each node line before reading — since published nodes
//! never change, a fresh read of a fresh address is always consistent.
//!
//! This is the index structure behind the FlacOS shared page cache
//! (§3.4) and the shared page table (§3.3).

use crate::alloc::object::GlobalAllocator;
use crate::hw::GlobalCell;
use crate::sync::rcu::{EpochManager, RcuReadGuard};
use crate::sync::reclaim::RetireList;
use rack_sim::{GAddr, GlobalMemory, NodeCtx, SimError};

/// Children per node (6 bits of key per level).
pub const FANOUT: usize = 64;
const NODE_BYTES: usize = FANOUT * 8;
/// Values are stored biased by +1 so 0 can mean "absent".
const ABSENT: u64 = 0;

/// A COW radix tree of `u64 -> u64` in global memory.
#[derive(Debug, Clone, Copy)]
pub struct RadixTree {
    root: GlobalCell,
    levels: u32,
}

impl RadixTree {
    /// Allocate an empty tree able to index keys below
    /// `FANOUT.pow(levels)`. Four levels cover 16M keys — enough for the
    /// page indices of multi-gigabyte files.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero or exceeds 10 (u64 key space).
    pub fn alloc(global: &GlobalMemory, levels: u32) -> Result<Self, SimError> {
        assert!((1..=10).contains(&levels), "levels must be in 1..=10");
        Ok(RadixTree {
            root: GlobalCell::alloc(global, 0)?,
            levels,
        })
    }

    /// Largest key this tree can hold, plus one.
    pub fn key_capacity(&self) -> u64 {
        (FANOUT as u64).saturating_pow(self.levels)
    }

    fn check_key(&self, key: u64) -> Result<(), SimError> {
        if key >= self.key_capacity() {
            return Err(SimError::Protocol(format!(
                "key {key} exceeds radix capacity {}",
                self.key_capacity()
            )));
        }
        Ok(())
    }

    fn slot_of(&self, key: u64, level: u32) -> usize {
        // level 0 is the root; deeper levels consume lower bits.
        let shift = 6 * (self.levels - 1 - level);
        ((key >> shift) & (FANOUT as u64 - 1)) as usize
    }

    fn read_word(ctx: &NodeCtx, node: GAddr, slot: usize) -> Result<u64, SimError> {
        let addr = node.offset((slot * 8) as u64);
        ctx.invalidate(addr, 8);
        ctx.read_u64(addr)
    }

    fn read_node(ctx: &NodeCtx, node: GAddr) -> Result<Vec<u8>, SimError> {
        ctx.invalidate(node, NODE_BYTES);
        let mut buf = vec![0u8; NODE_BYTES];
        ctx.read(node, &mut buf)?;
        Ok(buf)
    }

    fn write_node(ctx: &NodeCtx, alloc: &GlobalAllocator, bytes: &[u8]) -> Result<GAddr, SimError> {
        let addr = alloc.alloc(ctx, NODE_BYTES)?;
        ctx.write(addr, bytes)?;
        ctx.writeback(addr, NODE_BYTES);
        Ok(addr)
    }

    /// Look up `key` under an RCU read guard.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for out-of-range keys; memory errors are
    /// propagated.
    pub fn get(
        &self,
        ctx: &NodeCtx,
        _guard: &RcuReadGuard,
        key: u64,
    ) -> Result<Option<u64>, SimError> {
        self.check_key(key)?;
        let mut cur = self.root.load(ctx)?;
        for level in 0..self.levels {
            if cur == 0 {
                return Ok(None);
            }
            cur = Self::read_word(ctx, GAddr(cur), self.slot_of(key, level))?;
        }
        Ok(if cur == ABSENT { None } else { Some(cur - 1) })
    }

    /// Insert or overwrite `key -> value` with a copy-on-write path.
    /// Returns the previous value, if any.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for out-of-range keys; allocation and
    /// memory errors are propagated.
    pub fn insert(
        &self,
        ctx: &NodeCtx,
        alloc: &GlobalAllocator,
        mgr: &EpochManager,
        retired: &RetireList,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>, SimError> {
        self.check_key(key)?;
        self.update(ctx, alloc, mgr, retired, key, value + 1)
    }

    /// Remove `key`, returning the previous value if present.
    ///
    /// # Errors
    ///
    /// As [`RadixTree::insert`].
    pub fn remove(
        &self,
        ctx: &NodeCtx,
        alloc: &GlobalAllocator,
        mgr: &EpochManager,
        retired: &RetireList,
        key: u64,
    ) -> Result<Option<u64>, SimError> {
        self.check_key(key)?;
        self.update(ctx, alloc, mgr, retired, key, ABSENT)
    }

    fn update(
        &self,
        ctx: &NodeCtx,
        alloc: &GlobalAllocator,
        mgr: &EpochManager,
        retired: &RetireList,
        key: u64,
        stored: u64,
    ) -> Result<Option<u64>, SimError> {
        loop {
            let old_root = self.root.load(ctx)?;
            // Walk down, keeping each level's node image.
            let mut path: Vec<(GAddr, Vec<u8>)> = Vec::with_capacity(self.levels as usize);
            let mut cur = old_root;
            for level in 0..self.levels {
                if cur == 0 {
                    break;
                }
                let node = GAddr(cur);
                let img = Self::read_node(ctx, node)?;
                let slot = self.slot_of(key, level);
                let next = u64::from_le_bytes(img[slot * 8..slot * 8 + 8].try_into().expect("8"));
                path.push((node, img));
                cur = next;
            }
            let prev_stored = if path.len() == self.levels as usize {
                cur
            } else {
                ABSENT
            };
            if prev_stored == stored {
                // Idempotent update (includes removing an absent key).
                return Ok(if prev_stored == ABSENT {
                    None
                } else {
                    Some(prev_stored - 1)
                });
            }

            // Build the new path bottom-up.
            let mut child = stored;
            let mut new_nodes: Vec<GAddr> = Vec::new();
            for level in (0..self.levels).rev() {
                let slot = self.slot_of(key, level);
                let mut img = match path.get(level as usize) {
                    Some((_, img)) => img.clone(),
                    None => vec![0u8; NODE_BYTES],
                };
                img[slot * 8..slot * 8 + 8].copy_from_slice(&child.to_le_bytes());
                let addr = Self::write_node(ctx, alloc, &img)?;
                new_nodes.push(addr);
                child = addr.0;
            }
            let new_root = child;

            if self.root.compare_exchange(ctx, old_root, new_root)? == old_root {
                // Retire displaced path nodes at the pre-advance epoch
                // (readers entered at it may still be traversing them).
                let epoch = mgr.current(ctx)?;
                mgr.advance(ctx)?;
                for (addr, _) in path {
                    retired.retire(addr, NODE_BYTES, epoch);
                }
                return Ok(if prev_stored == ABSENT {
                    None
                } else {
                    Some(prev_stored - 1)
                });
            }
            // Lost the race: free our unpublished nodes and retry.
            for addr in new_nodes {
                alloc.free(ctx, addr, NODE_BYTES);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};
    use std::sync::Arc;

    fn setup() -> (
        Rack,
        GlobalAllocator,
        Arc<EpochManager>,
        RetireList,
        RadixTree,
    ) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(16 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let mgr = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let retired = RetireList::new();
        let tree = RadixTree::alloc(rack.global(), 3).unwrap();
        (rack, alloc, mgr, retired, tree)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let (rack, alloc, mgr, retired, tree) = setup();
        let n0 = rack.node(0);
        let h = mgr.handle(n0.clone());
        assert_eq!(
            tree.insert(&n0, &alloc, &mgr, &retired, 42, 4200).unwrap(),
            None
        );
        {
            let g = h.read_lock().unwrap();
            assert_eq!(tree.get(&n0, &g, 42).unwrap(), Some(4200));
            assert_eq!(tree.get(&n0, &g, 43).unwrap(), None);
        }
        assert_eq!(
            tree.insert(&n0, &alloc, &mgr, &retired, 42, 99).unwrap(),
            Some(4200)
        );
        assert_eq!(
            tree.remove(&n0, &alloc, &mgr, &retired, 42).unwrap(),
            Some(99)
        );
        let g = h.read_lock().unwrap();
        assert_eq!(tree.get(&n0, &g, 42).unwrap(), None);
    }

    #[test]
    fn zero_values_are_representable() {
        let (rack, alloc, mgr, retired, tree) = setup();
        let n0 = rack.node(0);
        tree.insert(&n0, &alloc, &mgr, &retired, 7, 0).unwrap();
        let g = mgr.handle(n0.clone()).read_lock().unwrap();
        assert_eq!(tree.get(&n0, &g, 7).unwrap(), Some(0));
    }

    #[test]
    fn cross_node_visibility_without_manual_flushes() {
        let (rack, alloc, mgr, retired, tree) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        for k in 0..50u64 {
            tree.insert(&n0, &alloc, &mgr, &retired, k * 1000 % 4096, k)
                .unwrap();
        }
        let h1 = mgr.handle(n1.clone());
        let g = h1.read_lock().unwrap();
        for k in 0..50u64 {
            assert_eq!(tree.get(&n1, &g, k * 1000 % 4096).unwrap(), Some(k));
        }
    }

    #[test]
    fn updates_retire_displaced_path_nodes() {
        let (rack, alloc, mgr, retired, tree) = setup();
        let n0 = rack.node(0);
        tree.insert(&n0, &alloc, &mgr, &retired, 1, 1).unwrap();
        let before = retired.pending();
        tree.insert(&n0, &alloc, &mgr, &retired, 1, 2).unwrap();
        assert_eq!(retired.pending() - before, 3, "3-level path displaced");
        // With no readers, reclamation frees them all.
        assert!(retired.reclaim(&n0, &mgr, &alloc).unwrap() >= 3);
    }

    #[test]
    fn removing_absent_key_is_noop() {
        let (rack, alloc, mgr, retired, tree) = setup();
        let n0 = rack.node(0);
        let before = retired.pending();
        assert_eq!(tree.remove(&n0, &alloc, &mgr, &retired, 5).unwrap(), None);
        assert_eq!(retired.pending(), before, "no path copied for a no-op");
    }

    #[test]
    fn out_of_range_key_rejected() {
        let (rack, alloc, mgr, retired, tree) = setup();
        let n0 = rack.node(0);
        let big = tree.key_capacity();
        assert!(tree.insert(&n0, &alloc, &mgr, &retired, big, 1).is_err());
        let g = mgr.handle(n0.clone()).read_lock().unwrap();
        assert!(tree.get(&n0, &g, big).is_err());
    }

    #[test]
    fn dense_population_then_full_scan() {
        let (rack, alloc, mgr, retired, tree) = setup();
        let n0 = rack.node(0);
        for k in 0..200u64 {
            tree.insert(&n0, &alloc, &mgr, &retired, k, k * 2).unwrap();
            // Reclaim as we go so the small pool suffices.
            retired.reclaim(&n0, &mgr, &alloc).unwrap();
        }
        let g = mgr.handle(n0.clone()).read_lock().unwrap();
        for k in 0..200u64 {
            assert_eq!(tree.get(&n0, &g, k).unwrap(), Some(k * 2));
        }
    }
}
