//! Replication-based shared vector.
//!
//! A growable sequence of `u64` elements kept consistent across nodes by
//! replaying a shared operation log. Reads are node-local after a sync;
//! mutations cost one log append. Suits read-mostly sequences such as
//! registries and tables of descriptors.

use crate::sync::replicated::{Replica, ReplicatedHandle, ReplicatedLog};
use crate::wire::{Decoder, Encoder};
use rack_sim::{GlobalMemory, NodeCtx, SimError};
use std::sync::Arc;

const OP_PUSH: u8 = 0;
const OP_SET: u8 = 1;
const OP_POP: u8 = 2;

/// The per-node replica state of a [`SharedVec`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct VecReplica {
    items: Vec<u64>,
}

impl Replica for VecReplica {
    fn apply(&mut self, op: &[u8]) {
        let mut d = Decoder::new(op);
        match d.u8() {
            Ok(OP_PUSH) => {
                if let Ok(v) = d.u64() {
                    self.items.push(v);
                }
            }
            Ok(OP_SET) => {
                if let (Ok(idx), Ok(v)) = (d.u64(), d.u64()) {
                    if let Some(slot) = self.items.get_mut(idx as usize) {
                        *slot = v;
                    }
                }
            }
            Ok(OP_POP) => {
                self.items.pop();
            }
            _ => {}
        }
    }
}

/// A node's handle on a replicated shared vector of `u64`.
#[derive(Debug)]
pub struct SharedVec {
    handle: ReplicatedHandle<VecReplica>,
}

impl SharedVec {
    /// Allocate the shared log for a vector used by `nodes` nodes.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc_shared(
        global: &GlobalMemory,
        nodes: usize,
        log_capacity: usize,
    ) -> Result<Arc<ReplicatedLog>, SimError> {
        ReplicatedLog::alloc(global, nodes, log_capacity, 64)
    }

    /// This node's handle.
    pub fn new(shared: Arc<ReplicatedLog>, node: Arc<NodeCtx>) -> Self {
        SharedVec {
            handle: ReplicatedHandle::new(shared, node, VecReplica::default()),
        }
    }

    /// Append `value`.
    ///
    /// # Errors
    ///
    /// Propagates log-full and memory errors.
    pub fn push(&mut self, value: u64) -> Result<(), SimError> {
        let mut e = Encoder::new();
        e.put_u8(OP_PUSH).put_u64(value);
        self.handle.execute(&e.into_vec())
    }

    /// Overwrite index `idx` (no-op if out of range at apply time).
    ///
    /// # Errors
    ///
    /// Propagates log-full and memory errors.
    pub fn set(&mut self, idx: u64, value: u64) -> Result<(), SimError> {
        let mut e = Encoder::new();
        e.put_u8(OP_SET).put_u64(idx).put_u64(value);
        self.handle.execute(&e.into_vec())
    }

    /// Remove the last element (no-op if empty at apply time).
    ///
    /// # Errors
    ///
    /// Propagates log-full and memory errors.
    pub fn pop(&mut self) -> Result<(), SimError> {
        self.handle.execute(&[OP_POP])
    }

    /// Element at `idx` after syncing with the log.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn get(&mut self, idx: u64) -> Result<Option<u64>, SimError> {
        self.handle.read(|r| r.items.get(idx as usize).copied())
    }

    /// Length after syncing with the log.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn len(&mut self) -> Result<usize, SimError> {
        self.handle.read(|r| r.items.len())
    }

    /// Whether the vector is empty after syncing.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn is_empty(&mut self) -> Result<bool, SimError> {
        Ok(self.len()? == 0)
    }

    /// Snapshot of the full contents after syncing.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn to_vec(&mut self) -> Result<Vec<u64>, SimError> {
        self.handle.read(|r| r.items.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    #[test]
    fn push_set_pop_converge_across_nodes() {
        let rack = Rack::new(RackConfig::small_test());
        let shared = SharedVec::alloc_shared(rack.global(), 2, 128).unwrap();
        let mut v0 = SharedVec::new(shared.clone(), rack.node(0));
        let mut v1 = SharedVec::new(shared, rack.node(1));

        v0.push(10).unwrap();
        v1.push(20).unwrap();
        v0.set(0, 11).unwrap();
        v1.push(30).unwrap();
        v0.pop().unwrap();

        assert_eq!(v0.to_vec().unwrap(), vec![11, 20]);
        assert_eq!(v1.to_vec().unwrap(), vec![11, 20]);
        assert_eq!(v1.get(1).unwrap(), Some(20));
        assert_eq!(v1.get(9).unwrap(), None);
        assert!(!v0.is_empty().unwrap());
    }

    #[test]
    fn out_of_range_set_is_noop() {
        let rack = Rack::new(RackConfig::small_test());
        let shared = SharedVec::alloc_shared(rack.global(), 1, 32).unwrap();
        let mut v = SharedVec::new(shared, rack.node(0));
        v.set(5, 1).unwrap();
        assert_eq!(v.len().unwrap(), 0);
    }

    #[test]
    fn pop_on_empty_is_noop() {
        let rack = Rack::new(RackConfig::small_test());
        let shared = SharedVec::alloc_shared(rack.global(), 1, 32).unwrap();
        let mut v = SharedVec::new(shared, rack.node(0));
        v.pop().unwrap();
        assert!(v.is_empty().unwrap());
    }
}
