//! Shared hash tables: replication-based and delegation-based.
//!
//! Two implementations with the same logical semantics (a `u64 -> bytes`
//! map) and very different fabric behaviour:
//!
//! * [`ReplicatedKv`] replays a shared op log into per-node `HashMap`
//!   replicas — reads are local, writes cost a log append, and total
//!   memory is `nodes ×` the map size.
//! * [`DelegatedKvSim`] partitions the key space across owner nodes —
//!   memory is stored once, reads/writes from non-owners cost a request
//!   round-trip, owner accesses are local. This is the shape used for
//!   write-heavy or capacity-bound tables.
//!
//! The sync ablation (`figures -- sync`) compares both against the
//! spinlock baseline.

use crate::sync::delegation::{DelegationClient, DelegationServer, Service};
use crate::sync::replicated::{Replica, ReplicatedHandle, ReplicatedLog};
use crate::wire::{Decoder, Encoder};
use rack_sim::{GlobalMemory, NodeCtx, NodeId, Rack, SimError};
use std::collections::HashMap;
use std::sync::Arc;

const OP_PUT: u8 = 0;
const OP_DEL: u8 = 1;
const OP_GET: u8 = 2;
const OP_LEN: u8 = 3;

// ---------------------------------------------------------------------------
// Replication-based map
// ---------------------------------------------------------------------------

/// Per-node replica state of a [`ReplicatedKv`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct KvReplica {
    map: HashMap<u64, Vec<u8>>,
}

impl Replica for KvReplica {
    fn apply(&mut self, op: &[u8]) {
        let mut d = Decoder::new(op);
        match d.u8() {
            Ok(OP_PUT) => {
                if let (Ok(k), Ok(v)) = (d.u64(), d.bytes()) {
                    self.map.insert(k, v.to_vec());
                }
            }
            Ok(OP_DEL) => {
                if let Ok(k) = d.u64() {
                    self.map.remove(&k);
                }
            }
            _ => {}
        }
    }
}

/// A node's handle on a replication-based shared map.
#[derive(Debug)]
pub struct ReplicatedKv {
    handle: ReplicatedHandle<KvReplica>,
}

impl ReplicatedKv {
    /// Allocate the shared log. `entry_size` bounds `16 + 13 + value`
    /// bytes per op, so size it for the largest value you will store.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc_shared(
        global: &GlobalMemory,
        nodes: usize,
        log_capacity: usize,
        entry_size: usize,
    ) -> Result<Arc<ReplicatedLog>, SimError> {
        ReplicatedLog::alloc(global, nodes, log_capacity, entry_size)
    }

    /// This node's handle.
    pub fn new(shared: Arc<ReplicatedLog>, node: Arc<NodeCtx>) -> Self {
        ReplicatedKv {
            handle: ReplicatedHandle::new(shared, node, KvReplica::default()),
        }
    }

    /// Insert or overwrite `key`.
    ///
    /// # Errors
    ///
    /// Propagates log-full and memory errors.
    pub fn put(&mut self, key: u64, value: &[u8]) -> Result<(), SimError> {
        let mut e = Encoder::new();
        e.put_u8(OP_PUT).put_u64(key).put_bytes(value);
        self.handle.execute(&e.into_vec())
    }

    /// Remove `key`.
    ///
    /// # Errors
    ///
    /// Propagates log-full and memory errors.
    pub fn del(&mut self, key: u64) -> Result<(), SimError> {
        let mut e = Encoder::new();
        e.put_u8(OP_DEL).put_u64(key);
        self.handle.execute(&e.into_vec())
    }

    /// Look up `key` after syncing with the log.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, SimError> {
        self.handle.read(|r| r.map.get(&key).cloned())
    }

    /// Entry count after syncing.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn len(&mut self) -> Result<usize, SimError> {
        self.handle.read(|r| r.map.len())
    }

    /// Whether the map is empty after syncing.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn is_empty(&mut self) -> Result<bool, SimError> {
        Ok(self.len()? == 0)
    }

    /// Shared log (for GC and recovery integration).
    pub fn shared(&self) -> &Arc<ReplicatedLog> {
        self.handle.shared()
    }
}

// ---------------------------------------------------------------------------
// Delegation-based map
// ---------------------------------------------------------------------------

/// The owner-side service of one map partition.
#[derive(Debug, Default)]
pub struct KvService {
    map: HashMap<u64, Vec<u8>>,
}

impl KvService {
    /// Entries owned by this partition.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether this partition is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Direct state access (checkpointing / recovery).
    pub fn entries(&self) -> &HashMap<u64, Vec<u8>> {
        &self.map
    }
}

impl Service for KvService {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        let mut d = Decoder::new(request);
        let mut resp = Encoder::new();
        match d.u8() {
            Ok(OP_PUT) => {
                if let (Ok(k), Ok(v)) = (d.u64(), d.bytes()) {
                    self.map.insert(k, v.to_vec());
                    resp.put_u8(1);
                } else {
                    resp.put_u8(0);
                }
            }
            Ok(OP_DEL) => {
                if let Ok(k) = d.u64() {
                    resp.put_u8(u8::from(self.map.remove(&k).is_some()));
                } else {
                    resp.put_u8(0);
                }
            }
            Ok(OP_GET) => match d.u64().ok().and_then(|k| self.map.get(&k)) {
                Some(v) => {
                    resp.put_u8(1).put_bytes(v);
                }
                None => {
                    resp.put_u8(0);
                }
            },
            Ok(OP_LEN) => {
                resp.put_u8(1).put_u64(self.map.len() as u64);
            }
            _ => {
                resp.put_u8(0);
            }
        }
        resp.into_vec()
    }
}

/// A cooperative (single-threaded-simulation) deployment of a delegated
/// map: one partition owner per node, plus per-node clients for every
/// remote partition. Requests from an owner to its own partition take the
/// local fast path; remote requests ship over the fabric and the target
/// server is stepped inline.
#[derive(Debug)]
pub struct DelegatedKvSim {
    servers: Vec<DelegationServer<KvService>>,
    /// `clients[from][partition]` — `None` on the diagonal (local path).
    clients: Vec<Vec<Option<DelegationClient>>>,
}

impl DelegatedKvSim {
    /// Base port used for partition request queues.
    pub const BASE_PORT: u16 = 4000;

    /// Deploy one partition per rack node.
    pub fn deploy(rack: &Rack) -> Self {
        let n = rack.node_count();
        let servers = (0..n)
            .map(|i| {
                DelegationServer::new(
                    rack.node(i),
                    Self::BASE_PORT + i as u16,
                    KvService::default(),
                )
            })
            .collect();
        let clients = (0..n)
            .map(|from| {
                (0..n)
                    .map(|part| {
                        if from == part {
                            None
                        } else {
                            Some(DelegationClient::new(
                                rack.node(from),
                                NodeId(part),
                                Self::BASE_PORT + part as u16,
                                // Distinct reply port per (from, partition) pair.
                                Self::BASE_PORT + 100 + (from * n + part) as u16,
                            ))
                        }
                    })
                    .collect()
            })
            .collect();
        DelegatedKvSim { servers, clients }
    }

    /// Which partition owns `key`.
    pub fn partition_of(&self, key: u64) -> usize {
        (key % self.servers.len() as u64) as usize
    }

    fn request(&mut self, from: usize, key: u64, req: Vec<u8>) -> Result<Vec<u8>, SimError> {
        let part = self.partition_of(key);
        if from == part {
            return Ok(self.servers[part].execute_local(&req));
        }
        let client = self.clients[from][part]
            .as_ref()
            .expect("off-diagonal client");
        client.send(&req)?;
        self.servers[part].poll()?;
        client.try_recv()
    }

    /// Insert from node `from`.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors (e.g. owner down).
    pub fn put(&mut self, from: usize, key: u64, value: &[u8]) -> Result<(), SimError> {
        let mut e = Encoder::new();
        e.put_u8(OP_PUT).put_u64(key).put_bytes(value);
        let resp = self.request(from, key, e.into_vec())?;
        if resp.first() == Some(&1) {
            Ok(())
        } else {
            Err(SimError::Protocol("delegated put rejected".into()))
        }
    }

    /// Look up from node `from`.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors.
    pub fn get(&mut self, from: usize, key: u64) -> Result<Option<Vec<u8>>, SimError> {
        let mut e = Encoder::new();
        e.put_u8(OP_GET).put_u64(key);
        let resp = self.request(from, key, e.into_vec())?;
        let mut d = Decoder::new(&resp);
        match d.u8() {
            Ok(1) => Ok(Some(
                d.bytes()
                    .map_err(|e| SimError::Protocol(e.to_string()))?
                    .to_vec(),
            )),
            _ => Ok(None),
        }
    }

    /// Delete from node `from`; returns whether the key existed.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors.
    pub fn del(&mut self, from: usize, key: u64) -> Result<bool, SimError> {
        let mut e = Encoder::new();
        e.put_u8(OP_DEL).put_u64(key);
        let resp = self.request(from, key, e.into_vec())?;
        Ok(resp.first() == Some(&1))
    }

    /// Total entries across all partitions (direct state inspection).
    pub fn total_len(&self) -> usize {
        self.servers.iter().map(|s| s.service().len()).sum()
    }

    /// The partition servers (for checkpoint/recovery integration).
    pub fn servers_mut(&mut self) -> &mut [DelegationServer<KvService>] {
        &mut self.servers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::RackConfig;

    #[test]
    fn replicated_map_basic_ops_converge() {
        let rack = Rack::new(RackConfig::small_test());
        let shared = ReplicatedKv::alloc_shared(rack.global(), 2, 128, 128).unwrap();
        let mut m0 = ReplicatedKv::new(shared.clone(), rack.node(0));
        let mut m1 = ReplicatedKv::new(shared, rack.node(1));

        m0.put(1, b"one").unwrap();
        m1.put(2, b"two").unwrap();
        m0.del(1).unwrap();
        assert_eq!(m1.get(1).unwrap(), None);
        assert_eq!(m0.get(2).unwrap(), Some(b"two".to_vec()));
        assert_eq!(m1.len().unwrap(), 1);
        assert!(!m0.is_empty().unwrap());
    }

    #[test]
    fn replicated_map_overwrite() {
        let rack = Rack::new(RackConfig::small_test());
        let shared = ReplicatedKv::alloc_shared(rack.global(), 1, 64, 128).unwrap();
        let mut m = ReplicatedKv::new(shared, rack.node(0));
        m.put(9, b"a").unwrap();
        m.put(9, b"b").unwrap();
        assert_eq!(m.get(9).unwrap(), Some(b"b".to_vec()));
        assert_eq!(m.len().unwrap(), 1);
    }

    #[test]
    fn delegated_map_local_and_remote_paths() {
        let rack = Rack::new(RackConfig::small_test());
        let mut kv = DelegatedKvSim::deploy(&rack);
        // key 0 owned by node 0; key 1 owned by node 1.
        kv.put(0, 0, b"local").unwrap(); // owner fast path
        kv.put(0, 1, b"remote").unwrap(); // delegated
        assert_eq!(kv.get(1, 0).unwrap(), Some(b"local".to_vec()));
        assert_eq!(kv.get(1, 1).unwrap(), Some(b"remote".to_vec()));
        assert_eq!(kv.total_len(), 2);
        assert!(kv.del(0, 1).unwrap());
        assert!(!kv.del(0, 1).unwrap());
        assert_eq!(kv.get(0, 1).unwrap(), None);
    }

    #[test]
    fn delegated_partitioning_spreads_keys() {
        let rack = Rack::new(RackConfig::n_node(4));
        let mut kv = DelegatedKvSim::deploy(&rack);
        for k in 0..32 {
            kv.put(0, k, &[k as u8]).unwrap();
        }
        assert_eq!(kv.total_len(), 32);
        let per_part: Vec<usize> = kv.servers.iter().map(|s| s.service().len()).collect();
        assert_eq!(per_part, vec![8, 8, 8, 8]);
    }

    #[test]
    fn delegated_local_path_sends_no_messages() {
        let rack = Rack::new(RackConfig::small_test());
        let mut kv = DelegatedKvSim::deploy(&rack);
        let before = rack.node(0).stats().snapshot().messages_sent;
        kv.put(0, 0, b"x").unwrap();
        kv.get(0, 0).unwrap();
        assert_eq!(rack.node(0).stats().snapshot().messages_sent, before);
    }
}
