//! Level-3 FlacDK library: high-level concurrent data structures.
//!
//! Paper §3.2: *"The last library provides high-level concurrent data
//! structures, such as vector, hash tables, ring buffer, and radix
//! tree."* Each structure is built on one of the lock-free families,
//! chosen to match its access pattern:
//!
//! * [`vector::SharedVec`] — replication-based (read-mostly sequences).
//! * [`hashmap::ReplicatedKv`] — replication-based map; reads stay local.
//! * [`hashmap::DelegatedKvSim`] — delegation-based partitioned map;
//!   write-heavy workloads ship ops to partition owners.
//! * [`ringbuf::SpscRing`] — publish/consume ring over global memory,
//!   the zero-copy IPC transport of §3.5.
//! * [`radix::RadixTree`] — RCU copy-on-write radix tree; backs the
//!   shared page cache (§3.4) and page-table-like indexes (§3.3).

pub mod hashmap;
pub mod radix;
pub mod ringbuf;
pub mod vector;

pub use hashmap::{DelegatedKvSim, KvService, ReplicatedKv};
pub use radix::RadixTree;
pub use ringbuf::SpscRing;
pub use vector::SharedVec;
