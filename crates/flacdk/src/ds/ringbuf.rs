//! Single-producer single-consumer ring buffer over global memory.
//!
//! The transport primitive beneath FlacOS zero-copy IPC (§3.5): payload
//! slots live in the shared pool; head and tail indices are fabric-atomic
//! cells. The producer publishes a slot with an explicit write-back
//! *before* advancing the tail; the consumer invalidates the slot range
//! *after* observing the tail — the publish/consume discipline that makes
//! streaming data safe on a non-coherent fabric. The paper notes exactly
//! this: streaming buffers "can be easily synchronized across nodes via
//! cache invalidation".

use crate::hw::GlobalCell;
use rack_sim::{GAddr, GlobalMemory, NodeCtx, SimError, LINE_SIZE};

/// A bounded SPSC ring of byte messages in global memory.
///
/// Copyable handle; clones denote the same ring. One node must act as the
/// sole producer and one as the sole consumer.
#[derive(Debug, Clone, Copy)]
pub struct SpscRing {
    head: GlobalCell, // consumer cursor
    tail: GlobalCell, // producer cursor
    slots: GAddr,
    capacity: u64,
    slot_size: u64,
}

impl SpscRing {
    /// Payload bytes a slot of `slot_size` can carry (16 bytes of each
    /// slot hold the length and the publish timestamp).
    pub fn payload_capacity(slot_size: usize) -> usize {
        slot_size.saturating_sub(16)
    }

    /// Allocate a ring of `capacity` slots of `slot_size` bytes
    /// (8 of which hold the per-message length).
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity or a slot size below 16 / not 8-aligned.
    pub fn alloc(
        global: &GlobalMemory,
        capacity: usize,
        slot_size: usize,
    ) -> Result<Self, SimError> {
        assert!(capacity > 0, "ring capacity must be positive");
        assert!(
            slot_size >= 24 && slot_size.is_multiple_of(8),
            "slot size must be >=24 and 8-aligned"
        );
        let head = GlobalCell::alloc(global, 0)?;
        let tail = GlobalCell::alloc(global, 0)?;
        let slots = global.alloc(capacity * slot_size, LINE_SIZE)?;
        Ok(SpscRing {
            head,
            tail,
            slots,
            capacity: capacity as u64,
            slot_size: slot_size as u64,
        })
    }

    fn slot_addr(&self, idx: u64) -> GAddr {
        self.slots.offset((idx % self.capacity) * self.slot_size)
    }

    /// Messages currently queued.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn len(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        Ok(self.tail.load(ctx)? - self.head.load(ctx)?)
    }

    /// Whether the ring is empty.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn is_empty(&self, ctx: &NodeCtx) -> Result<bool, SimError> {
        Ok(self.len(ctx)? == 0)
    }

    /// Produce one message.
    ///
    /// # Errors
    ///
    /// * [`SimError::WouldBlock`] if the ring is full.
    /// * [`SimError::Protocol`] if `payload` exceeds the slot capacity.
    /// * Memory errors are propagated.
    pub fn push(&self, ctx: &NodeCtx, payload: &[u8]) -> Result<(), SimError> {
        if payload.len() > Self::payload_capacity(self.slot_size as usize) {
            return Err(SimError::Protocol(format!(
                "message of {} bytes exceeds slot payload capacity {}",
                payload.len(),
                Self::payload_capacity(self.slot_size as usize)
            )));
        }
        let tail = self.tail.load(ctx)?;
        let head = self.head.load(ctx)?;
        if tail - head >= self.capacity {
            return Err(SimError::WouldBlock);
        }
        let slot = self.slot_addr(tail);
        ctx.write_u64(slot, payload.len() as u64)?;
        ctx.write(slot.offset(16), payload)?;
        // Publish the payload, then stamp the publish time (when the
        // data became globally visible) and publish the header line.
        ctx.writeback(slot, 16 + payload.len());
        ctx.write_u64(slot.offset(8), ctx.clock().now())?;
        ctx.writeback(slot.offset(8), 8);
        self.tail.store(ctx, tail + 1)?;
        Ok(())
    }

    /// Consume one message.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] if the ring is empty; memory errors are
    /// propagated.
    pub fn pop(&self, ctx: &NodeCtx) -> Result<Vec<u8>, SimError> {
        let head = self.head.load(ctx)?;
        let tail = self.tail.load(ctx)?;
        if head == tail {
            return Err(SimError::WouldBlock);
        }
        let slot = self.slot_addr(head);
        // Consume: invalidate before reading (slot lines may be cached
        // from a previous lap of the ring).
        ctx.invalidate(slot, self.slot_size as usize);
        let len = ctx.read_u64(slot)? as usize;
        if len > Self::payload_capacity(self.slot_size as usize) {
            return Err(SimError::Protocol(format!("corrupt slot length {len}")));
        }
        // Causality: the consumer cannot observe the message before the
        // producer published it (polling sees it no earlier than that).
        let publish_ts = ctx.read_u64(slot.offset(8))?;
        ctx.clock().advance_to(publish_ts);
        let mut buf = vec![0u8; len];
        ctx.read(slot.offset(16), &mut buf)?;
        self.head.store(ctx, head + 1)?;
        Ok(buf)
    }

    /// Peek the length of the next message without consuming it.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] if empty; memory errors are propagated.
    pub fn peek_len(&self, ctx: &NodeCtx) -> Result<usize, SimError> {
        let head = self.head.load(ctx)?;
        let tail = self.tail.load(ctx)?;
        if head == tail {
            return Err(SimError::WouldBlock);
        }
        let slot = self.slot_addr(head);
        ctx.invalidate(slot, 8);
        Ok(ctx.read_u64(slot)? as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn ring(rack: &Rack, cap: usize, slot: usize) -> SpscRing {
        SpscRing::alloc(rack.global(), cap, slot).unwrap()
    }

    #[test]
    fn cross_node_fifo_roundtrip() {
        let rack = Rack::new(RackConfig::small_test());
        let (p, c) = (rack.node(0), rack.node(1));
        let r = ring(&rack, 8, 64);
        r.push(&p, b"first").unwrap();
        r.push(&p, b"second").unwrap();
        assert_eq!(r.len(&c).unwrap(), 2);
        assert_eq!(r.pop(&c).unwrap(), b"first");
        assert_eq!(r.pop(&c).unwrap(), b"second");
        assert!(matches!(r.pop(&c), Err(SimError::WouldBlock)));
    }

    #[test]
    fn full_ring_blocks_producer() {
        let rack = Rack::new(RackConfig::small_test());
        let p = rack.node(0);
        let r = ring(&rack, 2, 64);
        r.push(&p, b"a").unwrap();
        r.push(&p, b"b").unwrap();
        assert!(matches!(r.push(&p, b"c"), Err(SimError::WouldBlock)));
        r.pop(&rack.node(1)).unwrap();
        r.push(&p, b"c").unwrap();
    }

    #[test]
    fn ring_laps_reuse_slots_correctly() {
        // Consumer caches slot lines on lap 1; lap 2 must not serve them stale.
        let rack = Rack::new(RackConfig::small_test());
        let (p, c) = (rack.node(0), rack.node(1));
        let r = ring(&rack, 2, 64);
        for round in 0..6u8 {
            r.push(&p, &[round; 16]).unwrap();
            assert_eq!(r.pop(&c).unwrap(), vec![round; 16]);
        }
    }

    #[test]
    fn oversize_message_rejected() {
        let rack = Rack::new(RackConfig::small_test());
        let r = ring(&rack, 2, 32);
        assert!(matches!(
            r.push(&rack.node(0), &[0; 32]),
            Err(SimError::Protocol(_))
        ));
        assert!(r.push(&rack.node(0), &[0; 16]).is_ok());
    }

    #[test]
    fn peek_does_not_consume() {
        let rack = Rack::new(RackConfig::small_test());
        let (p, c) = (rack.node(0), rack.node(1));
        let r = ring(&rack, 4, 64);
        r.push(&p, b"xyz").unwrap();
        assert_eq!(r.peek_len(&c).unwrap(), 3);
        assert_eq!(r.len(&c).unwrap(), 1);
        assert_eq!(r.pop(&c).unwrap(), b"xyz");
    }

    #[test]
    fn empty_message_roundtrips() {
        let rack = Rack::new(RackConfig::small_test());
        let r = ring(&rack, 2, 24);
        r.push(&rack.node(0), b"").unwrap();
        assert_eq!(r.pop(&rack.node(1)).unwrap(), Vec::<u8>::new());
    }
}
