//! Single-producer single-consumer ring buffer over global memory.
//!
//! The transport primitive beneath FlacOS zero-copy IPC (§3.5): payload
//! slots live in the shared pool; head and tail indices are fabric-atomic
//! cells. The producer publishes a slot with an explicit write-back
//! *before* advancing the tail; the consumer invalidates the slot range
//! *after* observing the tail — the publish/consume discipline that makes
//! streaming data safe on a non-coherent fabric. The paper notes exactly
//! this: streaming buffers "can be easily synchronized across nodes via
//! cache invalidation".

use crate::hw::GlobalCell;
use rack_sim::{GAddr, GlobalMemory, NodeCtx, SimError, LINE_SIZE};

/// A bounded SPSC ring of byte messages in global memory.
///
/// Copyable handle; clones denote the same ring. One node must act as the
/// sole producer and one as the sole consumer.
#[derive(Debug, Clone, Copy)]
pub struct SpscRing {
    head: GlobalCell, // consumer cursor
    tail: GlobalCell, // producer cursor
    slots: GAddr,
    capacity: u64,
    slot_size: u64,
}

impl SpscRing {
    /// Payload bytes a slot of `slot_size` can carry (16 bytes of each
    /// slot hold the length and the publish timestamp).
    pub fn payload_capacity(slot_size: usize) -> usize {
        slot_size.saturating_sub(16)
    }

    /// Allocate a ring of `capacity` slots of `slot_size` bytes
    /// (8 of which hold the per-message length).
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity or a slot size below 16 / not 8-aligned.
    pub fn alloc(
        global: &GlobalMemory,
        capacity: usize,
        slot_size: usize,
    ) -> Result<Self, SimError> {
        assert!(capacity > 0, "ring capacity must be positive");
        assert!(
            slot_size >= 24 && slot_size.is_multiple_of(8),
            "slot size must be >=24 and 8-aligned"
        );
        let head = GlobalCell::alloc(global, 0)?;
        let tail = GlobalCell::alloc(global, 0)?;
        let slots = global.alloc(capacity * slot_size, LINE_SIZE)?;
        Ok(SpscRing {
            head,
            tail,
            slots,
            capacity: capacity as u64,
            slot_size: slot_size as u64,
        })
    }

    fn slot_addr(&self, idx: u64) -> GAddr {
        self.slots.offset((idx % self.capacity) * self.slot_size)
    }

    /// Messages currently queued.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn len(&self, ctx: &NodeCtx) -> Result<u64, SimError> {
        Ok(self.tail.load(ctx)? - self.head.load(ctx)?)
    }

    /// Whether the ring is empty.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn is_empty(&self, ctx: &NodeCtx) -> Result<bool, SimError> {
        Ok(self.len(ctx)? == 0)
    }

    /// Produce one message.
    ///
    /// # Errors
    ///
    /// * [`SimError::WouldBlock`] if the ring is full.
    /// * [`SimError::Protocol`] if `payload` exceeds the slot capacity.
    /// * Memory errors are propagated.
    pub fn push(&self, ctx: &NodeCtx, payload: &[u8]) -> Result<(), SimError> {
        let tail = self.tail.load(ctx)?;
        let head = self.head.load(ctx)?;
        if tail - head >= self.capacity {
            return Err(SimError::WouldBlock);
        }
        self.write_slot(ctx, tail, payload)?;
        self.tail.store(ctx, tail + 1)?;
        Ok(())
    }

    /// Fill and publish the slot at `tail` (cursor checks are the
    /// caller's job).
    fn write_slot(&self, ctx: &NodeCtx, tail: u64, payload: &[u8]) -> Result<(), SimError> {
        if payload.len() > Self::payload_capacity(self.slot_size as usize) {
            return Err(SimError::Protocol(format!(
                "message of {} bytes exceeds slot payload capacity {}",
                payload.len(),
                Self::payload_capacity(self.slot_size as usize)
            )));
        }
        let slot = self.slot_addr(tail);
        ctx.write_u64(slot, payload.len() as u64)?;
        ctx.write(slot.offset(16), payload)?;
        // Publish the payload, then stamp the publish time (when the
        // data became globally visible) and publish the header line.
        ctx.writeback(slot, 16 + payload.len());
        ctx.write_u64(slot.offset(8), ctx.clock().now())?;
        ctx.writeback(slot.offset(8), 8);
        Ok(())
    }

    /// Consume one message.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] if the ring is empty; memory errors are
    /// propagated.
    pub fn pop(&self, ctx: &NodeCtx) -> Result<Vec<u8>, SimError> {
        let head = self.head.load(ctx)?;
        let tail = self.tail.load(ctx)?;
        if head == tail {
            return Err(SimError::WouldBlock);
        }
        let msg = self.read_slot(ctx, head)?;
        self.head.store(ctx, head + 1)?;
        Ok(msg)
    }

    /// Invalidate and read the slot at `head` (cursor checks are the
    /// caller's job).
    fn read_slot(&self, ctx: &NodeCtx, head: u64) -> Result<Vec<u8>, SimError> {
        let slot = self.slot_addr(head);
        // Consume: invalidate before reading (slot lines may be cached
        // from a previous lap of the ring).
        ctx.invalidate(slot, self.slot_size as usize);
        let len = ctx.read_u64(slot)? as usize;
        if len > Self::payload_capacity(self.slot_size as usize) {
            return Err(SimError::Protocol(format!("corrupt slot length {len}")));
        }
        // Causality: the consumer cannot observe the message before the
        // producer published it (polling sees it no earlier than that).
        let publish_ts = ctx.read_u64(slot.offset(8))?;
        ctx.clock().advance_to(publish_ts);
        let mut buf = vec![0u8; len];
        ctx.read(slot.offset(16), &mut buf)?;
        Ok(buf)
    }

    /// Bind a cursor-cached producer handle to this ring.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from the one-time cursor sync.
    pub fn producer(self, ctx: &NodeCtx) -> Result<RingProducer, SimError> {
        Ok(RingProducer {
            tail: self.tail.load(ctx)?,
            head_cache: self.head.load(ctx)?,
            ring: self,
        })
    }

    /// Bind a cursor-cached consumer handle to this ring.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from the one-time cursor sync.
    pub fn consumer(self, ctx: &NodeCtx) -> Result<RingConsumer, SimError> {
        Ok(RingConsumer {
            head: self.head.load(ctx)?,
            tail_cache: self.tail.load(ctx)?,
            ring: self,
        })
    }

    /// Peek the length of the next message without consuming it.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] if empty; memory errors are propagated.
    pub fn peek_len(&self, ctx: &NodeCtx) -> Result<usize, SimError> {
        let head = self.head.load(ctx)?;
        let tail = self.tail.load(ctx)?;
        if head == tail {
            return Err(SimError::WouldBlock);
        }
        let slot = self.slot_addr(head);
        ctx.invalidate(slot, 8);
        Ok(ctx.read_u64(slot)? as usize)
    }
}

/// The producing side of a ring with locally cached cursors — the
/// standard SPSC fast path. The producer is the sole writer of `tail`,
/// so it never re-reads it from the fabric; it re-reads `head` only when
/// the ring *appears* full against the cached value. A push therefore
/// costs just the slot writes plus one fabric store, instead of two
/// extra fabric loads — the difference that lets a polling server keep
/// up with per-command messages at loadgen rates.
///
/// The SPSC contract extends naturally: exactly one `RingProducer` (or
/// raw-push caller) and one consumer may be live per ring.
#[derive(Debug)]
pub struct RingProducer {
    ring: SpscRing,
    /// Producer-owned tail cursor (authoritative local copy).
    tail: u64,
    /// Last head value observed from the consumer.
    head_cache: u64,
}

impl RingProducer {
    /// Produce one message (see [`SpscRing::push`] for the discipline).
    ///
    /// # Errors
    ///
    /// * [`SimError::WouldBlock`] if the ring is full even after
    ///   refreshing the cached head.
    /// * [`SimError::Protocol`] if `payload` exceeds the slot capacity.
    /// * Memory errors are propagated.
    pub fn push(&mut self, ctx: &NodeCtx, payload: &[u8]) -> Result<(), SimError> {
        if self.tail - self.head_cache >= self.ring.capacity {
            // Apparent full: refresh the consumer's cursor once.
            self.head_cache = self.ring.head.load(ctx)?;
            if self.tail - self.head_cache >= self.ring.capacity {
                return Err(SimError::WouldBlock);
            }
        }
        self.ring.write_slot(ctx, self.tail, payload)?;
        self.ring.tail.store(ctx, self.tail + 1)?;
        self.tail += 1;
        Ok(())
    }

    /// Free slots as of the last cursor observation (may understate).
    pub fn space_hint(&self) -> u64 {
        self.ring.capacity - (self.tail - self.head_cache)
    }
}

/// The consuming side of a ring with locally cached cursors. The
/// consumer is the sole writer of `head`; it re-reads `tail` from the
/// fabric only when the ring *appears* empty, so an empty poll costs one
/// fabric load (not two) and draining a batch of `k` messages pays the
/// tail load once instead of `k` times.
#[derive(Debug)]
pub struct RingConsumer {
    ring: SpscRing,
    /// Consumer-owned head cursor (authoritative local copy).
    head: u64,
    /// Last tail value observed from the producer.
    tail_cache: u64,
}

impl RingConsumer {
    /// Consume one message.
    ///
    /// # Errors
    ///
    /// [`SimError::WouldBlock`] if the ring is empty even after
    /// refreshing the cached tail; memory errors are propagated.
    pub fn pop(&mut self, ctx: &NodeCtx) -> Result<Vec<u8>, SimError> {
        if self.tail_cache == self.head {
            // Apparent empty: refresh the producer's cursor once.
            self.tail_cache = self.ring.tail.load(ctx)?;
            if self.tail_cache == self.head {
                return Err(SimError::WouldBlock);
            }
        }
        let msg = self.ring.read_slot(ctx, self.head)?;
        self.ring.head.store(ctx, self.head + 1)?;
        self.head += 1;
        Ok(msg)
    }

    /// Messages currently queued (refreshes the cached tail if the ring
    /// appears empty).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn pending(&mut self, ctx: &NodeCtx) -> Result<u64, SimError> {
        if self.tail_cache == self.head {
            self.tail_cache = self.ring.tail.load(ctx)?;
        }
        Ok(self.tail_cache - self.head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn ring(rack: &Rack, cap: usize, slot: usize) -> SpscRing {
        SpscRing::alloc(rack.global(), cap, slot).unwrap()
    }

    #[test]
    fn cross_node_fifo_roundtrip() {
        let rack = Rack::new(RackConfig::small_test());
        let (p, c) = (rack.node(0), rack.node(1));
        let r = ring(&rack, 8, 64);
        r.push(&p, b"first").unwrap();
        r.push(&p, b"second").unwrap();
        assert_eq!(r.len(&c).unwrap(), 2);
        assert_eq!(r.pop(&c).unwrap(), b"first");
        assert_eq!(r.pop(&c).unwrap(), b"second");
        assert!(matches!(r.pop(&c), Err(SimError::WouldBlock)));
    }

    #[test]
    fn full_ring_blocks_producer() {
        let rack = Rack::new(RackConfig::small_test());
        let p = rack.node(0);
        let r = ring(&rack, 2, 64);
        r.push(&p, b"a").unwrap();
        r.push(&p, b"b").unwrap();
        assert!(matches!(r.push(&p, b"c"), Err(SimError::WouldBlock)));
        r.pop(&rack.node(1)).unwrap();
        r.push(&p, b"c").unwrap();
    }

    #[test]
    fn ring_laps_reuse_slots_correctly() {
        // Consumer caches slot lines on lap 1; lap 2 must not serve them stale.
        let rack = Rack::new(RackConfig::small_test());
        let (p, c) = (rack.node(0), rack.node(1));
        let r = ring(&rack, 2, 64);
        for round in 0..6u8 {
            r.push(&p, &[round; 16]).unwrap();
            assert_eq!(r.pop(&c).unwrap(), vec![round; 16]);
        }
    }

    #[test]
    fn oversize_message_rejected() {
        let rack = Rack::new(RackConfig::small_test());
        let r = ring(&rack, 2, 32);
        assert!(matches!(
            r.push(&rack.node(0), &[0; 32]),
            Err(SimError::Protocol(_))
        ));
        assert!(r.push(&rack.node(0), &[0; 16]).is_ok());
    }

    #[test]
    fn peek_does_not_consume() {
        let rack = Rack::new(RackConfig::small_test());
        let (p, c) = (rack.node(0), rack.node(1));
        let r = ring(&rack, 4, 64);
        r.push(&p, b"xyz").unwrap();
        assert_eq!(r.peek_len(&c).unwrap(), 3);
        assert_eq!(r.len(&c).unwrap(), 1);
        assert_eq!(r.pop(&c).unwrap(), b"xyz");
    }

    #[test]
    fn cached_handles_roundtrip_and_interop_with_raw_api() {
        let rack = Rack::new(RackConfig::small_test());
        let (p, c) = (rack.node(0), rack.node(1));
        let r = ring(&rack, 4, 64);
        let mut prod = r.producer(&p).unwrap();
        let mut cons = r.consumer(&c).unwrap();
        assert!(matches!(cons.pop(&c), Err(SimError::WouldBlock)));
        prod.push(&p, b"one").unwrap();
        prod.push(&p, b"two").unwrap();
        assert_eq!(cons.pending(&c).unwrap(), 2);
        assert_eq!(cons.pop(&c).unwrap(), b"one");
        // Raw API on the same ring stays coherent with the handles.
        r.push(&p, b"three").unwrap();
        assert_eq!(cons.pop(&c).unwrap(), b"two");
        assert_eq!(cons.pop(&c).unwrap(), b"three");
        assert!(matches!(cons.pop(&c), Err(SimError::WouldBlock)));
    }

    #[test]
    fn cached_producer_sees_freed_slots_after_refresh() {
        let rack = Rack::new(RackConfig::small_test());
        let (p, c) = (rack.node(0), rack.node(1));
        let r = ring(&rack, 2, 64);
        let mut prod = r.producer(&p).unwrap();
        let mut cons = r.consumer(&c).unwrap();
        prod.push(&p, b"a").unwrap();
        prod.push(&p, b"b").unwrap();
        assert_eq!(prod.space_hint(), 0);
        assert!(matches!(prod.push(&p, b"c"), Err(SimError::WouldBlock)));
        cons.pop(&c).unwrap();
        // The freed slot is found via the apparent-full head refresh.
        prod.push(&p, b"c").unwrap();
        assert_eq!(cons.pop(&c).unwrap(), b"b");
        assert_eq!(cons.pop(&c).unwrap(), b"c");
    }

    #[test]
    fn cached_cursors_reduce_polling_and_drain_cost() {
        let rack = Rack::new(RackConfig::small_test());
        let (p, c) = (rack.node(0), rack.node(1));

        // Empty poll: the cached consumer re-reads only the tail (one
        // fabric load); the raw API loads both cursors.
        let r1 = ring(&rack, 8, 64);
        let mut cons = r1.consumer(&c).unwrap();
        let t0 = c.clock().now();
        assert!(matches!(cons.pop(&c), Err(SimError::WouldBlock)));
        let cached_poll = c.clock().now() - t0;
        let t0 = c.clock().now();
        assert!(matches!(r1.pop(&c), Err(SimError::WouldBlock)));
        let raw_poll = c.clock().now() - t0;
        assert!(
            cached_poll < raw_poll,
            "cached empty poll ({cached_poll} ns) must beat raw ({raw_poll} ns)"
        );

        // Batched drain: cursor loads amortize across the batch.
        let fill = |ring: &SpscRing| {
            for i in 0..8u8 {
                ring.push(&p, &[i; 8]).unwrap();
            }
        };
        let r2 = ring(&rack, 8, 64);
        let r3 = ring(&rack, 8, 64);
        fill(&r2);
        fill(&r3);
        // Move the consumer clock past every publish timestamp so both
        // measured drains pay pure access costs, not causality jumps.
        c.clock().advance_to(p.clock().now());
        let mut cons2 = r2.consumer(&c).unwrap();
        let t0 = c.clock().now();
        for _ in 0..8 {
            cons2.pop(&c).unwrap();
        }
        let cached_drain = c.clock().now() - t0;
        let t0 = c.clock().now();
        for _ in 0..8 {
            r3.pop(&c).unwrap();
        }
        let raw_drain = c.clock().now() - t0;
        assert!(
            cached_drain < raw_drain,
            "cached drain ({cached_drain} ns) must beat raw ({raw_drain} ns)"
        );
    }

    #[test]
    fn empty_message_roundtrips() {
        let rack = Rack::new(RackConfig::small_test());
        let r = ring(&rack, 2, 24);
        r.push(&rack.node(0), b"").unwrap();
        assert_eq!(r.pop(&rack.node(1)).unwrap(), Vec::<u8>::new());
    }
}
