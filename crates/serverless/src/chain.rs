//! Function chains over FlacOS IPC.
//!
//! The paper's third serverless pain point (§4.1): *"communication cost
//! between services (chains)"*. A [`FunctionChain`] wires N function
//! stages across rack nodes; each hop is either a FlacOS zero-copy
//! channel or a TCP connection, and invoking the chain measures the
//! end-to-end latency — the `figures -- ipc` ablation sweeps this.

use flacdk::alloc::GlobalAllocator;
use flacos_ipc::channel::{FlacChannel, FlacEndpoint};
use flacos_ipc::netstack::{NetConfig, NetEndpoint, NetPair};
use rack_sim::{NodeCtx, Rack, SimError};
use std::sync::Arc;

/// Per-stage compute cost (function body execution), simulated ns.
pub const STAGE_COMPUTE_NS: u64 = 5_000;

/// The transport a chain's hops use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainTransport {
    /// FlacOS shared-memory IPC.
    FlacIpc,
    /// TCP/IP over Ethernet.
    Tcp,
}

enum Hop {
    Flac { tx: FlacEndpoint, rx: FlacEndpoint },
    Tcp { tx: NetEndpoint, rx: NetEndpoint },
}

impl std::fmt::Debug for Hop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Hop::Flac { .. } => write!(f, "Hop::Flac"),
            Hop::Tcp { .. } => write!(f, "Hop::Tcp"),
        }
    }
}

/// A linear chain of function stages spread round-robin across nodes.
#[derive(Debug)]
pub struct FunctionChain {
    stages: Vec<Arc<NodeCtx>>,
    hops: Vec<Hop>,
    transport: ChainTransport,
}

impl FunctionChain {
    /// Build a chain of `stages` functions over `transport`, placing
    /// stage `i` on node `i % rack.node_count()`.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `stages < 2`.
    pub fn build(
        rack: &Rack,
        alloc: &GlobalAllocator,
        stages: usize,
        transport: ChainTransport,
    ) -> Result<Self, SimError> {
        assert!(stages >= 2, "a chain needs at least two stages");
        let nodes: Vec<Arc<NodeCtx>> = (0..stages)
            .map(|i| rack.node(i % rack.node_count()))
            .collect();
        let mut hops = Vec::with_capacity(stages - 1);
        for i in 0..stages - 1 {
            let (a, b) = (nodes[i].clone(), nodes[i + 1].clone());
            let hop = match transport {
                ChainTransport::FlacIpc => {
                    let (tx, rx) = FlacChannel::create(rack.global(), alloc.clone(), a, b)?;
                    Hop::Flac { tx, rx }
                }
                ChainTransport::Tcp => {
                    let (tx, rx) = NetPair::connect(a, b, NetConfig::ten_gbe(), i as u16 + 100);
                    Hop::Tcp { tx, rx }
                }
            };
            hops.push(hop);
        }
        Ok(FunctionChain {
            stages: nodes,
            hops,
            transport,
        })
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain is trivial (never true; chains have ≥2 stages).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The transport in use.
    pub fn transport(&self) -> ChainTransport {
        self.transport
    }

    /// Invoke the chain with `payload`: each stage computes, transforms
    /// the payload (a real byte-level transform, so data actually flows),
    /// and forwards it. Returns the final payload and the end-to-end
    /// latency in simulated nanoseconds.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn invoke(&mut self, payload: &[u8]) -> Result<(Vec<u8>, u64), SimError> {
        let start = self.stages[0].clock().now();
        let mut data = payload.to_vec();
        for (i, hop) in self.hops.iter_mut().enumerate() {
            // Stage i computes, then forwards.
            self.stages[i].charge(STAGE_COMPUTE_NS);
            for b in &mut data {
                *b = b.wrapping_add(1);
            }
            match hop {
                Hop::Flac { tx, rx } => {
                    tx.send(&data)?;
                    self.stages[i + 1]
                        .clock()
                        .advance_to(self.stages[i].clock().now());
                    data = rx.try_recv()?;
                }
                Hop::Tcp { tx, rx } => {
                    tx.send(&data)?;
                    self.stages[i + 1]
                        .clock()
                        .advance_to(self.stages[i].clock().now());
                    data = rx.try_recv()?;
                }
            }
        }
        // Final stage computes.
        let last = self.stages.len() - 1;
        self.stages[last].charge(STAGE_COMPUTE_NS);
        let end = self.stages[last].clock().now();
        Ok((data, end - start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::RackConfig;

    fn setup() -> (Rack, GlobalAllocator) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(64 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        (rack, alloc)
    }

    #[test]
    fn chain_transforms_payload_once_per_non_final_stage() {
        let (rack, alloc) = setup();
        let mut chain = FunctionChain::build(&rack, &alloc, 4, ChainTransport::FlacIpc).unwrap();
        let (out, latency) = chain.invoke(&[0u8; 8]).unwrap();
        assert_eq!(out, vec![3u8; 8], "3 forwarding stages each add 1");
        assert!(latency >= 4 * STAGE_COMPUTE_NS);
        assert_eq!(chain.len(), 4);
        assert!(!chain.is_empty());
    }

    #[test]
    fn ipc_chain_beats_tcp_chain() {
        let (rack, alloc) = setup();
        let mut ipc = FunctionChain::build(&rack, &alloc, 3, ChainTransport::FlacIpc).unwrap();
        let (_, ipc_lat) = ipc.invoke(&[0u8; 256]).unwrap();

        let (rack2, alloc2) = setup();
        let mut tcp = FunctionChain::build(&rack2, &alloc2, 3, ChainTransport::Tcp).unwrap();
        let (_, tcp_lat) = tcp.invoke(&[0u8; 256]).unwrap();
        assert!(
            ipc_lat < tcp_lat,
            "IPC chain {ipc_lat} ns vs TCP chain {tcp_lat} ns"
        );
        assert_eq!(tcp.transport(), ChainTransport::Tcp);
    }

    #[test]
    fn longer_chains_cost_more() {
        let (rack, alloc) = setup();
        let mut short = FunctionChain::build(&rack, &alloc, 2, ChainTransport::FlacIpc).unwrap();
        let (_, lat2) = short.invoke(&[0u8; 64]).unwrap();
        let (rack2, alloc2) = setup();
        let mut long = FunctionChain::build(&rack2, &alloc2, 6, ChainTransport::FlacIpc).unwrap();
        let (_, lat6) = long.invoke(&[0u8; 64]).unwrap();
        assert!(lat6 > lat2);
    }

    #[test]
    #[should_panic(expected = "two stages")]
    fn single_stage_chain_panics() {
        let (rack, alloc) = setup();
        let _ = FunctionChain::build(&rack, &alloc, 1, ChainTransport::FlacIpc);
    }
}
