//! The container runtime and the three startup paths of §4.2, on the
//! content-addressed chunk store.
//!
//! An image manifest names its pages by content hash; starting a
//! container means making those chunks resident rack-wide
//! ([`ChunkStore::ensure`]) and mapping them. The first node to start
//! an image takes the **cold** path — but "cold" now means "fetch only
//! the chunks the rack does not already hold, in parallel slices across
//! the backend shards": overlapping images, shared base layers, even
//! identical pages in unrelated images are all served from the shared
//! deduped frames instead of the wire. Any other node then takes the
//! **FlacOS** path (manifest + chunk reads from global memory); a node
//! that has already started the image takes the **hot** path (runtime
//! state resident, no fetches at all).

use crate::image::ContainerImage;
use crate::registry::ImageRegistry;
use flac_store::ChunkStore;
use flacos_fs::memfs::MemFs;
use flacos_mem::PAGE_SIZE;
use rack_sim::{NodeCtx, NodeId, SimError};
use std::collections::HashSet;
use std::sync::Arc;

/// Container initialization cost (namespace/cgroup setup, runtime init,
/// entrypoint exec) — the floor every startup pays. Calibrated to the
/// paper's 3.02 s hot start.
pub const CONTAINER_INIT_NS: u64 = 3_020_000_000;

/// Which startup path a container took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartupPath {
    /// At least one chunk was downloaded from the backend shards.
    Cold,
    /// Every chunk was already resident in the rack's shared store.
    SharedPageCache,
    /// Runtime state already resident on this node.
    Hot,
}

/// Breakdown of one container startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartupReport {
    /// Path taken.
    pub path: StartupPath,
    /// Manifest resolution time (0 on the hot path).
    pub manifest_ns: u64,
    /// Image data acquisition time (chunk fetch + mapping reads).
    pub fetch_ns: u64,
    /// Container initialization time.
    pub init_ns: u64,
    /// End-to-end startup latency.
    pub total_ns: u64,
    /// Chunks this start downloaded from the backend shards.
    pub pages_downloaded: u64,
    /// Chunks served from the rack-wide store (present, coalesced onto
    /// another node's fetch, or duplicated within the image).
    pub pages_from_cache: u64,
    /// Bytes this start downloaded from the backend shards.
    pub bytes_fetched: u64,
}

/// A started container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    /// Container id (node-scoped).
    pub id: u64,
    /// Image it runs.
    pub image: String,
    /// Node it runs on.
    pub node: NodeId,
    /// Root directory inside the FlacOS fs.
    pub rootfs: String,
}

/// The per-node container runtime.
#[derive(Debug)]
pub struct ContainerRuntime {
    node: Arc<NodeCtx>,
    fs: MemFs,
    registry: Arc<ImageRegistry>,
    store: Arc<ChunkStore>,
    local_started: HashSet<String>,
    next_id: u64,
}

impl ContainerRuntime {
    /// A runtime on `node`, mounting `fs`, resolving manifests from
    /// `registry` and chunks from `store`.
    pub fn new(
        node: Arc<NodeCtx>,
        fs: MemFs,
        registry: Arc<ImageRegistry>,
        store: Arc<ChunkStore>,
    ) -> Self {
        ContainerRuntime {
            node,
            fs,
            registry,
            store,
            local_started: HashSet::new(),
            next_id: 1,
        }
    }

    /// The node this runtime serves.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }

    /// The chunk store this runtime resolves image data from.
    pub fn store(&self) -> &Arc<ChunkStore> {
        &self.store
    }

    /// Mutable file-system access (inspection in tests).
    pub fn fs_mut(&mut self) -> &mut MemFs {
        &mut self.fs
    }

    /// Make one layer's chunks resident rack-wide and map them (read
    /// each resident chunk once into the container's address space).
    /// Returns (chunks downloaded, chunks from the store, bytes
    /// downloaded).
    fn fetch_layer(
        &mut self,
        manifest: &ContainerImage,
        layer_idx: usize,
    ) -> Result<(u64, u64, u64), SimError> {
        let layer = &manifest.layers[layer_idx];
        let rep = self.store.ensure(&self.node, &layer.chunk_hashes)?;
        // Map: one charged read per chunk (the container touches every
        // image page once; re-touches hit the node cache).
        let mut buf = vec![0u8; PAGE_SIZE];
        for batch in layer.chunk_hashes.chunks(512) {
            for (&hash, frame) in batch.iter().zip(self.store.lookup(&self.node, batch)?) {
                let (frame, len) = frame.ok_or_else(|| {
                    SimError::Protocol(format!("chunk {hash:#018x} vanished after ensure"))
                })?;
                self.node.invalidate(frame, len as usize);
                self.node.read(frame, &mut buf[..len as usize])?;
            }
        }
        Ok((
            rep.fetched,
            rep.rack_hits + rep.coalesced + rep.duplicates,
            rep.bytes_fetched,
        ))
    }

    /// Start a container from `image_name`, reporting the path taken and
    /// the latency breakdown — the paper's container-startup experiment.
    ///
    /// # Errors
    ///
    /// Propagates registry, store and file-system errors.
    pub fn start_container(
        &mut self,
        image_name: &str,
    ) -> Result<(Container, StartupReport), SimError> {
        let start = self.node.clock().now();

        // Hot path: runtime state for this image is already resident.
        if self.local_started.contains(image_name) {
            self.node.charge(CONTAINER_INIT_NS);
            let total = self.node.clock().now() - start;
            let container = self.make_container(image_name)?;
            return Ok((
                container,
                StartupReport {
                    path: StartupPath::Hot,
                    manifest_ns: 0,
                    fetch_ns: 0,
                    init_ns: total,
                    total_ns: total,
                    pages_downloaded: 0,
                    pages_from_cache: 0,
                    bytes_fetched: 0,
                },
            ));
        }

        // Manifest resolution (both cold and shared-store paths pay it).
        let manifest = self.registry.pull_manifest(&self.node, image_name)?;
        let manifest_ns = self.node.clock().now() - start;

        // Image data: only the chunks the rack does not already hold.
        let fetch_start = self.node.clock().now();
        let mut downloaded = 0;
        let mut cached = 0;
        let mut bytes = 0;
        for layer_idx in 0..manifest.layers.len() {
            let (d, c, b) = self.fetch_layer(&manifest, layer_idx)?;
            downloaded += d;
            cached += c;
            bytes += b;
        }
        let fetch_ns = self.node.clock().now() - fetch_start;

        // Container initialization.
        let init_start = self.node.clock().now();
        self.node.charge(CONTAINER_INIT_NS);
        let init_ns = self.node.clock().now() - init_start;

        self.local_started.insert(image_name.to_string());
        let container = self.make_container(image_name)?;
        let total_ns = self.node.clock().now() - start;
        Ok((
            container,
            StartupReport {
                path: if downloaded > 0 {
                    StartupPath::Cold
                } else {
                    StartupPath::SharedPageCache
                },
                manifest_ns,
                fetch_ns,
                init_ns,
                total_ns,
                pages_downloaded: downloaded,
                pages_from_cache: cached,
                bytes_fetched: bytes,
            },
        ))
    }

    fn make_container(&mut self, image_name: &str) -> Result<Container, SimError> {
        let id = self.next_id;
        self.next_id += 1;
        let rootfs = format!("/containers/{}-{}", self.node.id().0, id);
        self.fs.mkdir("/containers").ok();
        self.fs.mkdir(&rootfs)?;
        self.fs
            .write_file(&format!("{rootfs}/config.json"), image_name.as_bytes())?;
        Ok(Container {
            id,
            image: image_name.to_string(),
            node: self.node.id(),
            rootfs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use flac_store::{BackendConfig, ShardedBackends, StoreConfig};
    use flacdk::alloc::GlobalAllocator;
    use flacdk::sync::rcu::EpochManager;
    use flacdk::sync::reclaim::RetireList;
    use flacos_fs::block::BlockDevice;
    use flacos_fs::memfs::FsShared;
    use flacos_mem::dedup::PageDeduper;
    use flacos_mem::fault::FrameAllocator;
    use rack_sim::{Rack, RackConfig};

    fn setup(image_pages: u64) -> (Rack, Arc<FsShared>, Arc<ImageRegistry>, Arc<ChunkStore>) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(128 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let fs = FsShared::alloc(
            rack.global(),
            rack.node_count(),
            alloc,
            epochs,
            RetireList::new(),
            Arc::new(BlockDevice::nvme(rack.global(), rack.node_count()).unwrap()),
        )
        .unwrap();
        let registry = Arc::new(ImageRegistry::new(RegistryConfig::paper_calibrated()));
        let image = ContainerImage::synthetic("pytorch", image_pages, 4, 42);
        let backends = Arc::new(ShardedBackends::uniform(
            4,
            BackendConfig::paper_calibrated(4, 64),
        ));
        image.publish(&backends);
        registry.push(image);
        let dedup = Arc::new(PageDeduper::new(FrameAllocator::new(rack.global().clone())));
        let store = ChunkStore::alloc(
            rack.global(),
            backends,
            dedup,
            StoreConfig::new(rack.node_count()),
        )
        .unwrap();
        (rack, fs, registry, store)
    }

    fn runtime(
        rack: &Rack,
        node: usize,
        fs: &Arc<FsShared>,
        registry: &Arc<ImageRegistry>,
        store: &Arc<ChunkStore>,
    ) -> ContainerRuntime {
        ContainerRuntime::new(
            rack.node(node),
            MemFs::mount(fs.clone(), rack.node(node)),
            registry.clone(),
            store.clone(),
        )
    }

    #[test]
    fn three_startup_paths_in_order() {
        let (rack, fs, registry, store) = setup(64);
        let mut rt0 = runtime(&rack, 0, &fs, &registry, &store);
        let mut rt1 = runtime(&rack, 1, &fs, &registry, &store);

        // Node 0 cold-starts: every chunk is missing rack-wide.
        let (_c0, cold) = rt0.start_container("pytorch").unwrap();
        assert_eq!(cold.path, StartupPath::Cold);
        assert_eq!(cold.pages_downloaded, 64);
        assert_eq!(cold.bytes_fetched, 64 * PAGE_SIZE as u64);

        // Node 1 starts the same image: all chunks resident, none fetched.
        let (_c1, shared) = rt1.start_container("pytorch").unwrap();
        assert_eq!(shared.path, StartupPath::SharedPageCache);
        assert_eq!(shared.pages_downloaded, 0);
        assert_eq!(shared.pages_from_cache, 64);
        assert_eq!(shared.bytes_fetched, 0);

        // Node 1 starts it again: hot.
        let (_c2, hot) = rt1.start_container("pytorch").unwrap();
        assert_eq!(hot.path, StartupPath::Hot);

        // The paper's ordering: hot < shared < cold.
        assert!(hot.total_ns < shared.total_ns, "hot beats shared");
        assert!(shared.total_ns < cold.total_ns, "shared beats cold");
        // And the shape: cold pays the download, shared only chunk reads.
        assert!(cold.fetch_ns > shared.fetch_ns * 5);
        assert_eq!(hot.manifest_ns, 0);
    }

    #[test]
    fn chunks_are_stored_once_and_never_refetched() {
        let (rack, fs, registry, store) = setup(32);
        let mut rt0 = runtime(&rack, 0, &fs, &registry, &store);
        let mut rt1 = runtime(&rack, 1, &fs, &registry, &store);
        rt0.start_container("pytorch").unwrap();
        let frames_after_first = store.dedup().stats().unique_frames;
        rt1.start_container("pytorch").unwrap();
        // Second start added no frames and shipped no backend bytes.
        assert_eq!(store.dedup().stats().unique_frames, frames_after_first);
        assert_eq!(store.backends().total_stats().chunks_shipped, 32);
        for h in registry
            .pull_manifest(&rack.node(0), "pytorch")
            .unwrap()
            .chunk_hashes()
        {
            assert_eq!(store.backends().fetch_count(h), 1);
        }
    }

    #[test]
    fn overlapping_image_downloads_only_missing_chunks() {
        let (rack, fs, registry, store) = setup(64); // "pytorch": seeds 42..46
                                                     // "jupyter" shares 2 of pytorch's 4 layers (seeds 44..48).
        let overlap = ContainerImage::synthetic("jupyter", 64, 4, 44);
        overlap.publish(store.backends());
        registry.push(overlap);

        let mut rt0 = runtime(&rack, 0, &fs, &registry, &store);
        let mut rt1 = runtime(&rack, 1, &fs, &registry, &store);
        rt0.start_container("pytorch").unwrap();

        let bytes_before = store.backends().total_stats().bytes_shipped;
        let (_c, rep) = rt1.start_container("jupyter").unwrap();
        assert_eq!(rep.path, StartupPath::Cold);
        assert_eq!(rep.pages_downloaded, 32, "only the 2 unshared layers");
        assert_eq!(rep.pages_from_cache, 32, "shared layers come from the rack");
        // Byte accounting: exactly the unique missing chunk bytes.
        assert_eq!(
            store.backends().total_stats().bytes_shipped - bytes_before,
            32 * PAGE_SIZE as u64
        );
    }

    #[test]
    fn containers_get_distinct_rootfs() {
        let (rack, fs, registry, store) = setup(8);
        let mut rt = runtime(&rack, 0, &fs, &registry, &store);
        let (c1, _) = rt.start_container("pytorch").unwrap();
        let (c2, _) = rt.start_container("pytorch").unwrap();
        assert_ne!(c1.rootfs, c2.rootfs);
        assert_eq!(c1.image, "pytorch");
        let mut fs_check = rt.fs;
        assert!(fs_check
            .stat(&format!("{}/config.json", c2.rootfs))
            .unwrap()
            .is_some());
    }

    #[test]
    fn unknown_image_fails_cleanly() {
        let (rack, fs, registry, store) = setup(8);
        let mut rt = runtime(&rack, 0, &fs, &registry, &store);
        assert!(rt.start_container("ghost").is_err());
    }
}
