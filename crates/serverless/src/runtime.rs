//! The container runtime and the three startup paths of §4.2.
//!
//! Image layers are stored as files in the FlacOS file system, so their
//! pages land in the **shared page cache** — one copy rack-wide. The
//! first node to start an image takes the **cold** path (manifest +
//! registry download, populating the cache); any other node then takes
//! the **FlacOS** path (manifest + read from the shared cache); a node
//! that has already started the image takes the **hot** path (runtime
//! state resident, no fetches at all).

use crate::image::ContainerImage;
use crate::registry::ImageRegistry;
use flacos_fs::memfs::MemFs;
use flacos_mem::PAGE_SIZE;
use rack_sim::{NodeCtx, NodeId, SimError};
use std::collections::HashSet;
use std::sync::Arc;

/// Container initialization cost (namespace/cgroup setup, runtime init,
/// entrypoint exec) — the floor every startup pays. Calibrated to the
/// paper's 3.02 s hot start.
pub const CONTAINER_INIT_NS: u64 = 3_020_000_000;

/// Which startup path a container took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartupPath {
    /// Image downloaded from the registry (populates the shared cache).
    Cold,
    /// Image served from the rack's shared page cache.
    SharedPageCache,
    /// Runtime state already resident on this node.
    Hot,
}

/// Breakdown of one container startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartupReport {
    /// Path taken.
    pub path: StartupPath,
    /// Manifest resolution time (0 on the hot path).
    pub manifest_ns: u64,
    /// Image data acquisition time (download or cache reads).
    pub fetch_ns: u64,
    /// Container initialization time.
    pub init_ns: u64,
    /// End-to-end startup latency.
    pub total_ns: u64,
    /// Pages downloaded from the registry.
    pub pages_downloaded: u64,
    /// Pages served by the shared page cache / file system.
    pub pages_from_cache: u64,
}

/// A started container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    /// Container id (node-scoped).
    pub id: u64,
    /// Image it runs.
    pub image: String,
    /// Node it runs on.
    pub node: NodeId,
    /// Root directory inside the FlacOS fs.
    pub rootfs: String,
}

/// The per-node container runtime.
#[derive(Debug)]
pub struct ContainerRuntime {
    node: Arc<NodeCtx>,
    fs: MemFs,
    registry: Arc<ImageRegistry>,
    local_started: HashSet<String>,
    next_id: u64,
}

impl ContainerRuntime {
    /// A runtime on `node`, mounting `fs` and pulling from `registry`.
    pub fn new(node: Arc<NodeCtx>, fs: MemFs, registry: Arc<ImageRegistry>) -> Self {
        ContainerRuntime {
            node,
            fs,
            registry,
            local_started: HashSet::new(),
            next_id: 1,
        }
    }

    /// The node this runtime serves.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }

    /// Mutable file-system access (inspection in tests).
    pub fn fs_mut(&mut self) -> &mut MemFs {
        &mut self.fs
    }

    fn layer_path(image: &str, layer_idx: usize) -> String {
        format!("/images/{image}/layer{layer_idx}")
    }

    /// Ensure one layer's bytes are resident in the shared cache,
    /// downloading from the registry if no node has fetched them yet.
    /// Returns (pages downloaded, pages served from cache).
    fn fetch_layer(
        &mut self,
        manifest: &ContainerImage,
        layer_idx: usize,
    ) -> Result<(u64, u64), SimError> {
        let path = Self::layer_path(&manifest.name, layer_idx);
        let layer = &manifest.layers[layer_idx];
        if self.fs.stat(&path)?.is_some() {
            // Shared-cache path: stream the file (hits the shared page
            // cache populated by the first starter; falls back to the
            // block device if pages were written back + evicted).
            let mut buf = vec![0u8; PAGE_SIZE];
            for p in 0..layer.pages {
                let ino = self.fs.resolve(&path)?.expect("stat said it exists");
                self.fs.read_at(ino, p * PAGE_SIZE as u64, &mut buf)?;
            }
            return Ok((0, layer.pages));
        }
        // Cold path: download the blob, then store it as one file write
        // (one metadata/journal entry per layer, like storing a fetched
        // blob, rather than one per page).
        let ino = self.fs.create(&path)?;
        let mut blob = Vec::with_capacity((layer.pages as usize) * PAGE_SIZE);
        for p in 0..layer.pages {
            blob.extend_from_slice(
                &self
                    .registry
                    .download_page(&self.node, manifest, layer_idx, p),
            );
        }
        self.fs.write_at(ino, 0, &blob)?;
        Ok((layer.pages, 0))
    }

    /// Start a container from `image_name`, reporting the path taken and
    /// the latency breakdown — the paper's container-startup experiment.
    ///
    /// # Errors
    ///
    /// Propagates registry and file-system errors.
    pub fn start_container(
        &mut self,
        image_name: &str,
    ) -> Result<(Container, StartupReport), SimError> {
        let start = self.node.clock().now();

        // Hot path: runtime state for this image is already resident.
        if self.local_started.contains(image_name) {
            self.node.charge(CONTAINER_INIT_NS);
            let total = self.node.clock().now() - start;
            let container = self.make_container(image_name)?;
            return Ok((
                container,
                StartupReport {
                    path: StartupPath::Hot,
                    manifest_ns: 0,
                    fetch_ns: 0,
                    init_ns: total,
                    total_ns: total,
                    pages_downloaded: 0,
                    pages_from_cache: 0,
                },
            ));
        }

        // Manifest resolution (both cold and shared-cache paths pay it).
        let manifest = self.registry.pull_manifest(&self.node, image_name)?;
        let manifest_ns = self.node.clock().now() - start;

        // Image data.
        let fetch_start = self.node.clock().now();
        self.fs.mkdir("/images").ok();
        self.fs.mkdir(&format!("/images/{image_name}")).ok();
        let mut downloaded = 0;
        let mut cached = 0;
        for layer_idx in 0..manifest.layers.len() {
            let (d, c) = self.fetch_layer(&manifest, layer_idx)?;
            downloaded += d;
            cached += c;
        }
        let fetch_ns = self.node.clock().now() - fetch_start;

        // Container initialization.
        let init_start = self.node.clock().now();
        self.node.charge(CONTAINER_INIT_NS);
        let init_ns = self.node.clock().now() - init_start;

        self.local_started.insert(image_name.to_string());
        let container = self.make_container(image_name)?;
        let total_ns = self.node.clock().now() - start;
        Ok((
            container,
            StartupReport {
                path: if downloaded > 0 {
                    StartupPath::Cold
                } else {
                    StartupPath::SharedPageCache
                },
                manifest_ns,
                fetch_ns,
                init_ns,
                total_ns,
                pages_downloaded: downloaded,
                pages_from_cache: cached,
            },
        ))
    }

    fn make_container(&mut self, image_name: &str) -> Result<Container, SimError> {
        let id = self.next_id;
        self.next_id += 1;
        let rootfs = format!("/containers/{}-{}", self.node.id().0, id);
        self.fs.mkdir("/containers").ok();
        self.fs.mkdir(&rootfs)?;
        self.fs
            .write_file(&format!("{rootfs}/config.json"), image_name.as_bytes())?;
        Ok(Container {
            id,
            image: image_name.to_string(),
            node: self.node.id(),
            rootfs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use flacdk::alloc::GlobalAllocator;
    use flacdk::sync::rcu::EpochManager;
    use flacdk::sync::reclaim::RetireList;
    use flacos_fs::block::BlockDevice;
    use flacos_fs::memfs::FsShared;
    use rack_sim::{Rack, RackConfig};

    fn setup(image_pages: u64) -> (Rack, Arc<FsShared>, Arc<ImageRegistry>) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(128 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let fs = FsShared::alloc(
            rack.global(),
            rack.node_count(),
            alloc,
            epochs,
            RetireList::new(),
            Arc::new(BlockDevice::nvme(rack.global(), rack.node_count()).unwrap()),
        )
        .unwrap();
        let registry = Arc::new(ImageRegistry::new(RegistryConfig::paper_calibrated()));
        registry.push(ContainerImage::synthetic("pytorch", image_pages, 4, 42));
        (rack, fs, registry)
    }

    #[test]
    fn three_startup_paths_in_order() {
        let (rack, fs, registry) = setup(64);
        let mut rt0 = ContainerRuntime::new(
            rack.node(0),
            MemFs::mount(fs.clone(), rack.node(0)),
            registry.clone(),
        );
        let mut rt1 = ContainerRuntime::new(
            rack.node(1),
            MemFs::mount(fs.clone(), rack.node(1)),
            registry,
        );

        // Node 0 cold-starts.
        let (_c0, cold) = rt0.start_container("pytorch").unwrap();
        assert_eq!(cold.path, StartupPath::Cold);
        assert_eq!(cold.pages_downloaded, 64);

        // Node 1 starts the same image: shared page cache path.
        let (_c1, shared) = rt1.start_container("pytorch").unwrap();
        assert_eq!(shared.path, StartupPath::SharedPageCache);
        assert_eq!(shared.pages_downloaded, 0);
        assert_eq!(shared.pages_from_cache, 64);

        // Node 1 starts it again: hot.
        let (_c2, hot) = rt1.start_container("pytorch").unwrap();
        assert_eq!(hot.path, StartupPath::Hot);

        // The paper's ordering: hot < shared < cold.
        assert!(hot.total_ns < shared.total_ns, "hot beats shared");
        assert!(shared.total_ns < cold.total_ns, "shared beats cold");
        // And the shape: cold pays the download, shared only the manifest.
        assert!(cold.fetch_ns > shared.fetch_ns * 5);
        assert_eq!(hot.manifest_ns, 0);
    }

    #[test]
    fn shared_cache_stores_one_copy_for_both_nodes() {
        let (rack, fs, registry) = setup(32);
        let mut rt0 = ContainerRuntime::new(
            rack.node(0),
            MemFs::mount(fs.clone(), rack.node(0)),
            registry.clone(),
        );
        let mut rt1 = ContainerRuntime::new(
            rack.node(1),
            MemFs::mount(fs.clone(), rack.node(1)),
            registry,
        );
        rt0.start_container("pytorch").unwrap();
        let resident_after_first = fs.cache().resident_pages();
        rt1.start_container("pytorch").unwrap();
        // Second start added no image pages (only its tiny config file).
        assert!(fs.cache().resident_pages() <= resident_after_first + 2);
    }

    #[test]
    fn containers_get_distinct_rootfs() {
        let (rack, fs, registry) = setup(8);
        let mut rt = ContainerRuntime::new(
            rack.node(0),
            MemFs::mount(fs.clone(), rack.node(0)),
            registry,
        );
        let (c1, _) = rt.start_container("pytorch").unwrap();
        let (c2, _) = rt.start_container("pytorch").unwrap();
        assert_ne!(c1.rootfs, c2.rootfs);
        assert_eq!(c1.image, "pytorch");
        let mut fs_check = rt.fs;
        assert!(fs_check
            .stat(&format!("{}/config.json", c2.rootfs))
            .unwrap()
            .is_some());
    }

    #[test]
    fn unknown_image_fails_cleanly() {
        let (rack, fs, registry) = setup(8);
        let mut rt = ContainerRuntime::new(rack.node(0), MemFs::mount(fs, rack.node(0)), registry);
        assert!(rt.start_container("ghost").is_err());
    }
}
