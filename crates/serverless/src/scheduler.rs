//! Density-aware function placement with an interference model.
//!
//! The paper's second serverless pain point (§4.1): *"performance
//! interference under high container density"*. The scheduler places
//! function instances across nodes under a per-node capacity, and models
//! the slowdown co-located instances inflict on each other, so
//! experiments can trade density against latency.

use rack_sim::{NodeId, SimError};
use std::collections::HashMap;

/// Interference model: each co-located instance beyond the first adds
/// this fraction of slowdown (cache/membw contention).
pub const INTERFERENCE_PER_NEIGHBOR: f64 = 0.06;

/// Placement and density state.
#[derive(Debug)]
pub struct DensityScheduler {
    capacity_per_node: usize,
    nodes: usize,
    placements: HashMap<u64, NodeId>,
    load: Vec<usize>,
}

impl DensityScheduler {
    /// A scheduler over `nodes` nodes of `capacity_per_node` instances.
    ///
    /// # Panics
    ///
    /// Panics on zero nodes or zero capacity.
    pub fn new(nodes: usize, capacity_per_node: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(capacity_per_node > 0, "capacity must be positive");
        DensityScheduler {
            capacity_per_node,
            nodes,
            placements: HashMap::new(),
            load: vec![0; nodes],
        }
    }

    /// Place instance `id` on the least-loaded node with spare capacity.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when the rack is full or the id is taken.
    pub fn place(&mut self, id: u64) -> Result<NodeId, SimError> {
        if self.placements.contains_key(&id) {
            return Err(SimError::Protocol(format!("instance {id} already placed")));
        }
        let (node_idx, load) = self
            .load
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|(i, l)| (*l, *i))
            .expect("nodes > 0");
        if load >= self.capacity_per_node {
            return Err(SimError::Protocol("rack at capacity".into()));
        }
        self.load[node_idx] += 1;
        self.placements.insert(id, NodeId(node_idx));
        Ok(NodeId(node_idx))
    }

    /// Tier-aware placement: like [`DensityScheduler::place`], but only
    /// nodes reporting at least `min_free_bytes` of local-DRAM tier
    /// headroom via `free_local` are eligible (a tier-exhausted node
    /// would serve the new instance's hot pages from the ~5× slower
    /// global pool). When every node with spare capacity is
    /// tier-exhausted, falls back to capacity-only placement. The
    /// closure decouples this crate from the tier ledger: callers pass
    /// `|n| budget.free_bytes(ctx, n).unwrap_or(0)` or a model.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when the rack is full or the id is taken.
    pub fn place_with_budget(
        &mut self,
        id: u64,
        free_local: impl Fn(NodeId) -> u64,
        min_free_bytes: u64,
    ) -> Result<NodeId, SimError> {
        if self.placements.contains_key(&id) {
            return Err(SimError::Protocol(format!("instance {id} already placed")));
        }
        let pick = self
            .load
            .iter()
            .copied()
            .enumerate()
            .filter(|&(i, l)| l < self.capacity_per_node && free_local(NodeId(i)) >= min_free_bytes)
            .min_by_key(|&(i, l)| (l, i));
        match pick {
            Some((node_idx, _)) => {
                self.load[node_idx] += 1;
                self.placements.insert(id, NodeId(node_idx));
                Ok(NodeId(node_idx))
            }
            None => self.place(id),
        }
    }

    /// Warm-start-aware placement: like [`DensityScheduler::place`],
    /// but nodes in `warm` (e.g. nodes whose runtime already started
    /// this instance's image — they'd take the hot path, skipping even
    /// the manifest pull) win ties and are preferred as long as they
    /// have spare capacity, even over less-loaded cold nodes. Falls
    /// back to capacity-only placement when no warm node has room.
    /// Image *data* needs no such affinity — the chunk store makes it
    /// resident rack-wide — so this only chases per-node runtime state.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when the rack is full or the id is taken.
    pub fn place_preferring(&mut self, id: u64, warm: &[NodeId]) -> Result<NodeId, SimError> {
        if self.placements.contains_key(&id) {
            return Err(SimError::Protocol(format!("instance {id} already placed")));
        }
        let pick = self
            .load
            .iter()
            .copied()
            .enumerate()
            .filter(|&(i, l)| l < self.capacity_per_node && warm.contains(&NodeId(i)))
            .min_by_key(|&(i, l)| (l, i));
        match pick {
            Some((node_idx, _)) => {
                self.load[node_idx] += 1;
                self.placements.insert(id, NodeId(node_idx));
                Ok(NodeId(node_idx))
            }
            None => self.place(id),
        }
    }

    /// Remove instance `id`.
    pub fn evict(&mut self, id: u64) -> Option<NodeId> {
        let node = self.placements.remove(&id)?;
        self.load[node.0] -= 1;
        Some(node)
    }

    /// Where instance `id` runs.
    pub fn node_of(&self, id: u64) -> Option<NodeId> {
        self.placements.get(&id).copied()
    }

    /// Instances on `node`.
    pub fn density(&self, node: NodeId) -> usize {
        self.load[node.0]
    }

    /// Total placed instances.
    pub fn total(&self) -> usize {
        self.placements.len()
    }

    /// Utilization of the whole rack in [0, 1].
    pub fn utilization(&self) -> f64 {
        self.total() as f64 / (self.nodes * self.capacity_per_node) as f64
    }

    /// Latency multiplier an instance on `node` suffers from co-located
    /// neighbours (1.0 = no interference).
    pub fn interference_factor(&self, node: NodeId) -> f64 {
        let neighbors = self.load[node.0].saturating_sub(1);
        1.0 + neighbors as f64 * INTERFERENCE_PER_NEIGHBOR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_spreads_round_robin_by_load() {
        let mut s = DensityScheduler::new(3, 2);
        let homes: Vec<NodeId> = (0..6).map(|i| s.place(i).unwrap()).collect();
        for n in 0..3 {
            assert_eq!(homes.iter().filter(|h| h.0 == n).count(), 2);
            assert_eq!(s.density(NodeId(n)), 2);
        }
        assert_eq!(s.utilization(), 1.0);
        assert!(s.place(99).is_err(), "rack full");
    }

    #[test]
    fn evict_frees_capacity() {
        let mut s = DensityScheduler::new(1, 1);
        s.place(1).unwrap();
        assert!(s.place(2).is_err());
        assert_eq!(s.evict(1), Some(NodeId(0)));
        assert_eq!(s.evict(1), None);
        s.place(2).unwrap();
        assert_eq!(s.node_of(2), Some(NodeId(0)));
        assert_eq!(s.total(), 1);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut s = DensityScheduler::new(2, 4);
        s.place(7).unwrap();
        assert!(s.place(7).is_err());
    }

    #[test]
    fn budgeted_placement_skips_tier_exhausted_nodes() {
        let mut s = DensityScheduler::new(3, 2);
        // Node 0 has no fast-tier headroom; 1 and 2 are fine.
        let free = |n: NodeId| if n.0 == 0 { 0 } else { 1 << 20 };
        assert_eq!(s.place_with_budget(1, free, 4096).unwrap(), NodeId(1));
        assert_eq!(s.place_with_budget(2, free, 4096).unwrap(), NodeId(2));
        assert_eq!(s.place_with_budget(3, free, 4096).unwrap(), NodeId(1));
        assert_eq!(s.density(NodeId(0)), 0);
        // Every node exhausted → fall back to capacity-only placement.
        assert_eq!(s.place_with_budget(4, |_| 0, 4096).unwrap(), NodeId(0));
        // Duplicate ids still rejected on the budgeted path.
        assert!(s.place_with_budget(4, free, 4096).is_err());
    }

    #[test]
    fn warm_placement_prefers_warm_nodes_until_full() {
        let mut s = DensityScheduler::new(3, 2);
        let warm = [NodeId(2)];
        // Warm node wins even while colder nodes are emptier.
        assert_eq!(s.place_preferring(1, &warm).unwrap(), NodeId(2));
        assert_eq!(s.place_preferring(2, &warm).unwrap(), NodeId(2));
        // Warm node full → fall back to least-loaded placement.
        assert_eq!(s.place_preferring(3, &warm).unwrap(), NodeId(0));
        // No warm nodes at all behaves exactly like place().
        assert_eq!(s.place_preferring(4, &[]).unwrap(), NodeId(1));
        assert!(s.place_preferring(4, &warm).is_err(), "duplicate id");
    }

    #[test]
    fn interference_grows_with_density() {
        let mut s = DensityScheduler::new(1, 10);
        s.place(1).unwrap();
        assert_eq!(
            s.interference_factor(NodeId(0)),
            1.0,
            "alone: no interference"
        );
        for i in 2..=5 {
            s.place(i).unwrap();
        }
        let f = s.interference_factor(NodeId(0));
        assert!((f - (1.0 + 4.0 * INTERFERENCE_PER_NEIGHBOR)).abs() < 1e-9);
    }
}
