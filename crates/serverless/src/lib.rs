//! # serverless — the rack-level serverless case study (paper §4)
//!
//! The paper motivates FlacOS with three serverless pain points: cold
//! start latency, interference under density, and service-chain
//! communication cost. This crate builds the §4.1 architecture on the
//! FlacOS substrate:
//!
//! * [`image`] / [`registry`] — synthetic layered container images and a
//!   remote registry with realistic manifest + bandwidth costs.
//! * [`runtime`] — the container runtime with the three startup paths
//!   of §4.2: **cold** (download from the registry), **FlacOS**
//!   (image pages already in the rack's shared page cache, placed there
//!   by whichever node started the image first), and **hot** (runtime
//!   state already resident on this node).
//! * [`chain`] — function chains whose hops run over FlacOS IPC instead
//!   of the network.
//! * [`scheduler`] — density-aware placement with an interference model.
//!
//! The container-startup experiment (`figures -- startup`) reproduces
//! the paper's 21.067 s → 5.526 s → 3.02 s progression in shape.

pub mod chain;
pub mod image;
pub mod registry;
pub mod runtime;
pub mod scheduler;

pub use chain::FunctionChain;
pub use image::ContainerImage;
pub use registry::ImageRegistry;
pub use runtime::{ContainerRuntime, StartupPath, StartupReport};
pub use scheduler::DensityScheduler;
