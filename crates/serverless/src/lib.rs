//! # serverless — the rack-level serverless case study (paper §4)
//!
//! The paper motivates FlacOS with three serverless pain points: cold
//! start latency, interference under density, and service-chain
//! communication cost. This crate builds the §4.1 architecture on the
//! FlacOS substrate:
//!
//! * [`image`] / [`registry`] — synthetic layered container images
//!   whose layers are chunk manifests (content-hash-addressed pages),
//!   and a remote registry serving manifests with realistic metadata
//!   costs; the bytes live on sharded `flac-store` backends.
//! * [`runtime`] — the container runtime with the three startup paths
//!   of §4.2: **cold** (fetch only the chunks the rack doesn't already
//!   hold, in parallel across backend shards), **FlacOS** (every chunk
//!   already resident in the rack-wide content-addressed store, placed
//!   there by whichever node fetched it first), and **hot** (runtime
//!   state already resident on this node).
//! * [`chain`] — function chains whose hops run over FlacOS IPC instead
//!   of the network.
//! * [`scheduler`] — density-aware placement with an interference model.
//!
//! The container-startup experiment (`figures -- startup`) reproduces
//! the paper's 21.067 s → 5.526 s → 3.02 s progression in shape.

pub mod chain;
pub mod image;
pub mod registry;
pub mod runtime;
pub mod scheduler;

pub use chain::FunctionChain;
pub use image::ContainerImage;
pub use registry::ImageRegistry;
pub use runtime::{ContainerRuntime, StartupPath, StartupReport};
pub use scheduler::DensityScheduler;
