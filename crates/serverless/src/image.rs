//! Synthetic layered container images.
//!
//! Stands in for the paper's 4 GB PyTorch image (which we cannot ship):
//! images are layered, page-granular, and *deterministically generated*,
//! so any node regenerates identical bytes — and identical pages across
//! images (shared base layers) dedup in the shared page cache exactly
//! like identical registry blobs do in production.

use flacdk::wire::fnv1a;
use flacos_mem::PAGE_SIZE;

/// One image layer: a deterministic blob of `pages` pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Layer identifier (content-address-like).
    pub id: u64,
    /// Size in pages.
    pub pages: u64,
}

impl Layer {
    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.pages * PAGE_SIZE as u64
    }

    /// Deterministic content of page `idx` of this layer.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn page_content(&self, idx: u64) -> Vec<u8> {
        assert!(
            idx < self.pages,
            "page {idx} beyond layer of {} pages",
            self.pages
        );
        let mut page = vec![0u8; PAGE_SIZE];
        let mut state = fnv1a(&[self.id.to_le_bytes(), idx.to_le_bytes()].concat()) | 1;
        for chunk in page.chunks_mut(8) {
            // xorshift64* — fast deterministic filler.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let bytes = state.wrapping_mul(0x2545_f491_4f6c_dd1d).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        page
    }
}

/// A named, layered container image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerImage {
    /// Image name ("pytorch:2.1").
    pub name: String,
    /// Ordered layers.
    pub layers: Vec<Layer>,
}

impl ContainerImage {
    /// Build an image of `total_pages` split over `layer_count` layers.
    /// `base_id` seeds layer ids; images built with the same `base_id`
    /// share base layers (and thus dedup in the page cache).
    ///
    /// # Panics
    ///
    /// Panics if `layer_count` is zero or exceeds `total_pages`.
    pub fn synthetic(name: &str, total_pages: u64, layer_count: usize, base_id: u64) -> Self {
        assert!(layer_count > 0, "image needs at least one layer");
        assert!(layer_count as u64 <= total_pages, "more layers than pages");
        let per = total_pages / layer_count as u64;
        let mut layers: Vec<Layer> = (0..layer_count as u64)
            .map(|i| Layer {
                id: base_id + i,
                pages: per,
            })
            .collect();
        // Remainder pages go to the last layer.
        layers.last_mut().expect("non-empty").pages += total_pages - per * layer_count as u64;
        ContainerImage {
            name: name.to_string(),
            layers,
        }
    }

    /// Total size in pages.
    pub fn total_pages(&self) -> u64 {
        self.layers.iter().map(|l| l.pages).sum()
    }

    /// Total size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_image_partitions_pages() {
        let img = ContainerImage::synthetic("pytorch", 100, 3, 7);
        assert_eq!(img.layers.len(), 3);
        assert_eq!(img.total_pages(), 100);
        assert_eq!(img.total_bytes(), 100 * PAGE_SIZE as u64);
        assert_eq!(img.layers[0].pages, 33);
        assert_eq!(img.layers[2].pages, 34, "remainder on last layer");
    }

    #[test]
    fn page_content_is_deterministic_and_distinct() {
        let layer = Layer { id: 5, pages: 10 };
        assert_eq!(layer.page_content(3), layer.page_content(3));
        assert_ne!(layer.page_content(3), layer.page_content(4));
        let other = Layer { id: 6, pages: 10 };
        assert_ne!(layer.page_content(3), other.page_content(3));
        assert_eq!(layer.page_content(0).len(), PAGE_SIZE);
    }

    #[test]
    fn shared_base_id_shares_layer_content() {
        let a = ContainerImage::synthetic("a", 50, 2, 100);
        let b = ContainerImage::synthetic("b", 50, 2, 100);
        assert_eq!(a.layers[0].page_content(0), b.layers[0].page_content(0));
    }

    #[test]
    #[should_panic(expected = "beyond layer")]
    fn out_of_range_page_panics() {
        Layer { id: 1, pages: 2 }.page_content(2);
    }
}
