//! Synthetic layered container images, chunked and content-addressed.
//!
//! Stands in for the paper's 4 GB PyTorch image (which we cannot ship):
//! images are layered, page-granular, and *deterministically generated*
//! from a seed, so any node regenerates identical bytes. Each layer is
//! a **chunk manifest**: the ordered list of content hashes of its
//! pages, and the layer id is itself a content hash (the hash of the
//! chunk-hash list) — two independently built layers with the same
//! bytes get the same id, which is what lets unrelated images dedup
//! chunk-by-chunk in the rack-wide store.

use flac_store::{chunk_hash, ShardedBackends};
use flacdk::wire::fnv1a;
use flacos_mem::PAGE_SIZE;

/// One image layer: a deterministic blob of `pages` pages, named by
/// content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Content-derived layer id: the fnv1a hash over the ordered chunk
    /// hashes. Identical bytes ⇒ identical id, however the layer was
    /// built.
    pub id: u64,
    /// Generator seed (decides the bytes; layers built from the same
    /// seed and size are bit-identical).
    pub seed: u64,
    /// Size in pages.
    pub pages: u64,
    /// Content hash of each page, in order — the layer's chunk
    /// manifest.
    pub chunk_hashes: Vec<u64>,
}

impl Layer {
    /// Generate a layer of `pages` pages from `seed`, computing its
    /// chunk manifest and content-derived id.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn generate(seed: u64, pages: u64) -> Self {
        assert!(pages > 0, "a layer holds at least one page");
        let chunk_hashes: Vec<u64> = (0..pages)
            .map(|idx| chunk_hash(&generate_page(seed, idx)))
            .collect();
        let mut manifest_bytes = Vec::with_capacity(chunk_hashes.len() * 8);
        for h in &chunk_hashes {
            manifest_bytes.extend_from_slice(&h.to_le_bytes());
        }
        Layer {
            id: fnv1a(&manifest_bytes),
            seed,
            pages,
            chunk_hashes,
        }
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.pages * PAGE_SIZE as u64
    }

    /// Deterministic content of page `idx` of this layer.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn page_content(&self, idx: u64) -> Vec<u8> {
        assert!(
            idx < self.pages,
            "page {idx} beyond layer of {} pages",
            self.pages
        );
        generate_page(self.seed, idx)
    }

    /// Publish every chunk of this layer to its backend shard (the
    /// "registry upload"). Idempotent: already-published chunks are
    /// skipped. Returns the number of chunks newly published.
    pub fn publish(&self, backends: &ShardedBackends) -> u64 {
        (0..self.pages)
            .filter(|&idx| backends.publish(self.page_content(idx)))
            .count() as u64
    }
}

/// Deterministic page bytes for (`seed`, `idx`) — xorshift64* filler.
fn generate_page(seed: u64, idx: u64) -> Vec<u8> {
    let mut page = vec![0u8; PAGE_SIZE];
    let mut state = fnv1a(&[seed.to_le_bytes(), idx.to_le_bytes()].concat()) | 1;
    for chunk in page.chunks_mut(8) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let bytes = state.wrapping_mul(0x2545_f491_4f6c_dd1d).to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&bytes[..n]);
    }
    page
}

/// A named, layered container image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerImage {
    /// Image name ("pytorch:2.1").
    pub name: String,
    /// Ordered layers.
    pub layers: Vec<Layer>,
}

impl ContainerImage {
    /// Build an image of `total_pages` split over `layer_count` layers.
    /// `base_seed` seeds layer generators; images built with overlapping
    /// seed ranges share layers — and, because ids are content-derived,
    /// those shared layers carry identical ids and chunk hashes.
    ///
    /// # Panics
    ///
    /// Panics if `layer_count` is zero or exceeds `total_pages`.
    pub fn synthetic(name: &str, total_pages: u64, layer_count: usize, base_seed: u64) -> Self {
        assert!(layer_count > 0, "image needs at least one layer");
        assert!(layer_count as u64 <= total_pages, "more layers than pages");
        let per = total_pages / layer_count as u64;
        let remainder = total_pages - per * layer_count as u64;
        let layers: Vec<Layer> = (0..layer_count as u64)
            .map(|i| {
                // Remainder pages go to the last layer.
                let pages = if i + 1 == layer_count as u64 {
                    per + remainder
                } else {
                    per
                };
                Layer::generate(base_seed + i, pages)
            })
            .collect();
        ContainerImage {
            name: name.to_string(),
            layers,
        }
    }

    /// Total size in pages.
    pub fn total_pages(&self) -> u64 {
        self.layers.iter().map(|l| l.pages).sum()
    }

    /// Total size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * PAGE_SIZE as u64
    }

    /// Every chunk hash in the image, in layer order (duplicates kept —
    /// the store coalesces them).
    pub fn chunk_hashes(&self) -> Vec<u64> {
        self.layers
            .iter()
            .flat_map(|l| l.chunk_hashes.iter().copied())
            .collect()
    }

    /// Publish every layer's chunks to the backends. Returns the number
    /// of chunks newly published.
    pub fn publish(&self, backends: &ShardedBackends) -> u64 {
        self.layers.iter().map(|l| l.publish(backends)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_image_partitions_pages() {
        let img = ContainerImage::synthetic("pytorch", 100, 3, 7);
        assert_eq!(img.layers.len(), 3);
        assert_eq!(img.total_pages(), 100);
        assert_eq!(img.total_bytes(), 100 * PAGE_SIZE as u64);
        assert_eq!(img.layers[0].pages, 33);
        assert_eq!(img.layers[2].pages, 34, "remainder on last layer");
        assert_eq!(img.chunk_hashes().len(), 100);
    }

    #[test]
    fn page_content_is_deterministic_and_distinct() {
        let layer = Layer::generate(5, 10);
        assert_eq!(layer.page_content(3), layer.page_content(3));
        assert_ne!(layer.page_content(3), layer.page_content(4));
        let other = Layer::generate(6, 10);
        assert_ne!(layer.page_content(3), other.page_content(3));
        assert_eq!(layer.page_content(0).len(), PAGE_SIZE);
        assert_eq!(
            layer.chunk_hashes[3],
            chunk_hash(&layer.page_content(3)),
            "the manifest names the real bytes"
        );
    }

    #[test]
    fn identical_content_gets_identical_ids_across_images() {
        // Two images built independently with overlapping seed ranges:
        // the shared layers carry the same content, so the same id.
        let a = ContainerImage::synthetic("pytorch", 64, 4, 100);
        let b = ContainerImage::synthetic("jupyter", 64, 4, 102);
        assert_eq!(a.layers[2].id, b.layers[0].id, "same bytes, same id");
        assert_eq!(a.layers[2].chunk_hashes, b.layers[0].chunk_hashes);
        assert_ne!(a.layers[0].id, b.layers[0].id, "different bytes differ");
        // And the id really is derived from content, not the seed: a
        // layer of different size from the same seed has a new id.
        let long = Layer::generate(100, 32);
        assert_ne!(a.layers[0].id, long.id);
    }

    #[test]
    fn publish_is_idempotent_and_dedups_shared_layers() {
        let backends =
            ShardedBackends::uniform(4, flac_store::BackendConfig::paper_calibrated(4, 64));
        let a = ContainerImage::synthetic("a", 40, 2, 100);
        let b = ContainerImage::synthetic("b", 40, 2, 101); // shares layer seed 101
        assert_eq!(a.publish(&backends), 40);
        assert_eq!(b.publish(&backends), 20, "shared layer already published");
        for h in a.chunk_hashes() {
            assert!(backends.contains(h));
        }
    }

    #[test]
    #[should_panic(expected = "beyond layer")]
    fn out_of_range_page_panics() {
        Layer::generate(1, 2).page_content(2);
    }
}
