//! The remote container registry, with realistic transfer costs.
//!
//! A cold start must fetch the image manifest (metadata round-trips to a
//! remote service — seconds, per the paper's hot-vs-FlacOS gap) and then
//! download every layer at WAN/registry bandwidth. The registry is
//! *outside* the rack: its costs are charged as simulated time but its
//! bytes are generated deterministically ([`crate::image::Layer`]), so
//! downloads still produce real page content.

use crate::image::ContainerImage;
use rack_sim::sync::Mutex;
use rack_sim::{NodeCtx, SimError};
use std::collections::HashMap;

/// Registry cost parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryConfig {
    /// Manifest resolution cost (auth + metadata round trips), ns.
    pub manifest_ns: u64,
    /// Download bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Fixed per-layer request overhead, ns.
    pub per_layer_ns: u64,
}

impl RegistryConfig {
    /// Calibrated so a 4 GB image downloads in ≈16 s and manifest
    /// resolution costs ≈2.5 s, matching the decomposition of the
    /// paper's 21.067 s cold start. Scaled-down images keep the same
    /// *rates*, so experiment reports scale times accordingly.
    pub fn paper_calibrated() -> Self {
        RegistryConfig {
            manifest_ns: 2_470_000_000,
            bandwidth_bytes_per_sec: 285_000_000, // ~272 MiB/s
            per_layer_ns: 30_000_000,             // 30 ms per blob request
        }
    }
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// Registry traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Manifest fetches served.
    pub manifests: u64,
    /// Layer downloads served.
    pub layer_downloads: u64,
    /// Bytes shipped.
    pub bytes_shipped: u64,
}

/// The remote image registry.
#[derive(Debug)]
pub struct ImageRegistry {
    config: RegistryConfig,
    images: Mutex<HashMap<String, ContainerImage>>,
    stats: Mutex<RegistryStats>,
}

impl ImageRegistry {
    /// An empty registry with `config` costs.
    pub fn new(config: RegistryConfig) -> Self {
        ImageRegistry {
            config,
            images: Mutex::new(HashMap::new()),
            stats: Mutex::new(RegistryStats::default()),
        }
    }

    /// Publish an image.
    pub fn push(&self, image: ContainerImage) {
        self.images.lock().insert(image.name.clone(), image);
    }

    /// Fetch an image's manifest (layer list), charging metadata cost.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for unknown images.
    pub fn pull_manifest(&self, ctx: &NodeCtx, name: &str) -> Result<ContainerImage, SimError> {
        ctx.charge(self.config.manifest_ns);
        self.stats.lock().manifests += 1;
        self.images
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| SimError::Protocol(format!("image {name:?} not in registry")))
    }

    /// Download one page of one layer, charging bandwidth + (amortized)
    /// request overhead on the first page of each layer.
    pub fn download_page(
        &self,
        ctx: &NodeCtx,
        image: &ContainerImage,
        layer_idx: usize,
        page_idx: u64,
    ) -> Vec<u8> {
        let layer = &image.layers[layer_idx];
        if page_idx == 0 {
            ctx.charge(self.config.per_layer_ns);
            self.stats.lock().layer_downloads += 1;
        }
        let page = layer.page_content(page_idx);
        let ns = (page.len() as u64).saturating_mul(1_000_000_000)
            / self.config.bandwidth_bytes_per_sec.max(1);
        ctx.charge(ns);
        self.stats.lock().bytes_shipped += page.len() as u64;
        page
    }

    /// Whether the registry hosts `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.images.lock().contains_key(name)
    }

    /// Traffic counters.
    pub fn stats(&self) -> RegistryStats {
        *self.stats.lock()
    }

    /// The cost configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flacos_mem::PAGE_SIZE;
    use rack_sim::{Rack, RackConfig};

    #[test]
    fn manifest_and_download_charge_time() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let reg = ImageRegistry::new(RegistryConfig::paper_calibrated());
        reg.push(ContainerImage::synthetic("app", 16, 2, 1));
        assert!(reg.contains("app"));

        let t0 = n0.clock().now();
        let img = reg.pull_manifest(&n0, "app").unwrap();
        assert_eq!(n0.clock().now() - t0, reg.config().manifest_ns);

        let t1 = n0.clock().now();
        let page = reg.download_page(&n0, &img, 0, 0);
        assert_eq!(page.len(), PAGE_SIZE);
        let dl = n0.clock().now() - t1;
        assert!(
            dl >= reg.config().per_layer_ns,
            "first page pays the request overhead"
        );
        assert_eq!(
            page,
            img.layers[0].page_content(0),
            "registry ships the real bytes"
        );
    }

    #[test]
    fn unknown_image_fails() {
        let rack = Rack::new(RackConfig::small_test());
        let reg = ImageRegistry::new(RegistryConfig::default());
        assert!(reg.pull_manifest(&rack.node(0), "ghost").is_err());
    }

    #[test]
    fn bandwidth_scales_download_time() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let slow = ImageRegistry::new(RegistryConfig {
            manifest_ns: 0,
            bandwidth_bytes_per_sec: 1_000_000,
            per_layer_ns: 0,
        });
        slow.push(ContainerImage::synthetic("s", 4, 1, 9));
        let img = slow.pull_manifest(&n0, "s").unwrap();
        let t0 = n0.clock().now();
        slow.download_page(&n0, &img, 0, 1);
        // 4096 bytes at 1 MB/s = ~4.1 ms.
        assert_eq!(n0.clock().now() - t0, 4096 * 1_000_000_000 / 1_000_000);
        assert_eq!(slow.stats().bytes_shipped, 4096);
    }
}
