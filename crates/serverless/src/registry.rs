//! The remote image registry: manifests only.
//!
//! A cold start must fetch the image manifest (auth + metadata round
//! trips to a remote service — seconds, per the paper's hot-vs-FlacOS
//! gap). The image *bytes* no longer flow through the registry at all:
//! a manifest is a list of content hashes, and the bytes come from the
//! sharded chunk backends ([`flac_store::ShardedBackends`]), fetched
//! only for the chunks the rack does not already hold.
//!
//! Stats are relaxed atomics — manifest pulls never serialize on a
//! stats lock (the same discipline the node cache's `CacheStats` use).

use crate::image::ContainerImage;
use rack_sim::sync::Mutex;
use rack_sim::{NodeCtx, SimError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Registry cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Manifest resolution cost (auth + metadata round trips), ns.
    pub manifest_ns: u64,
}

impl RegistryConfig {
    /// Calibrated to the ≈2.5 s manifest-resolution share of the
    /// paper's 21.067 s cold start.
    pub fn paper_calibrated() -> Self {
        RegistryConfig {
            manifest_ns: 2_470_000_000,
        }
    }
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// Registry traffic counters (a snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Manifest fetches served.
    pub manifests: u64,
    /// Chunk hashes listed in served manifests.
    pub manifest_chunks: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    manifests: AtomicU64,
    manifest_chunks: AtomicU64,
}

/// The remote image registry.
#[derive(Debug)]
pub struct ImageRegistry {
    config: RegistryConfig,
    images: Mutex<HashMap<String, ContainerImage>>,
    stats: StatCells,
}

impl ImageRegistry {
    /// An empty registry with `config` costs.
    pub fn new(config: RegistryConfig) -> Self {
        ImageRegistry {
            config,
            images: Mutex::new(HashMap::new()),
            stats: StatCells::default(),
        }
    }

    /// Publish an image's manifest.
    pub fn push(&self, image: ContainerImage) {
        self.images.lock().insert(image.name.clone(), image);
    }

    /// Fetch an image's manifest (chunked layer list), charging
    /// metadata cost.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for unknown images.
    pub fn pull_manifest(&self, ctx: &NodeCtx, name: &str) -> Result<ContainerImage, SimError> {
        ctx.charge(self.config.manifest_ns);
        let image = self
            .images
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| SimError::Protocol(format!("image {name:?} not in registry")))?;
        self.stats.manifests.fetch_add(1, Ordering::Relaxed);
        self.stats
            .manifest_chunks
            .fetch_add(image.total_pages(), Ordering::Relaxed);
        Ok(image)
    }

    /// Whether the registry hosts `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.images.lock().contains_key(name)
    }

    /// Traffic counters.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            manifests: self.stats.manifests.load(Ordering::Relaxed),
            manifest_chunks: self.stats.manifest_chunks.load(Ordering::Relaxed),
        }
    }

    /// The cost configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    #[test]
    fn manifest_charges_time_and_counts_chunks() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let reg = ImageRegistry::new(RegistryConfig::paper_calibrated());
        reg.push(ContainerImage::synthetic("app", 16, 2, 1));
        assert!(reg.contains("app"));

        let t0 = n0.clock().now();
        let img = reg.pull_manifest(&n0, "app").unwrap();
        assert_eq!(n0.clock().now() - t0, reg.config().manifest_ns);
        assert_eq!(img.total_pages(), 16);
        assert_eq!(
            img.chunk_hashes().len(),
            16,
            "the manifest is a chunk list, not a byte stream"
        );
        let s = reg.stats();
        assert_eq!(s.manifests, 1);
        assert_eq!(s.manifest_chunks, 16);
    }

    #[test]
    fn unknown_image_fails_and_counts_nothing() {
        let rack = Rack::new(RackConfig::small_test());
        let reg = ImageRegistry::new(RegistryConfig::default());
        assert!(reg.pull_manifest(&rack.node(0), "ghost").is_err());
        assert_eq!(reg.stats().manifests, 0);
    }

    #[test]
    fn stats_count_across_nodes_without_a_lock() {
        let rack = Rack::new(RackConfig::small_test());
        let reg = std::sync::Arc::new(ImageRegistry::new(RegistryConfig { manifest_ns: 1_000 }));
        reg.push(ContainerImage::synthetic("app", 8, 2, 1));
        let mut handles = Vec::new();
        for n in 0..2 {
            let reg = reg.clone();
            let node = rack.node(n);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    reg.pull_manifest(&node, "app").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.stats().manifests, 100);
        assert_eq!(reg.stats().manifest_chunks, 800);
    }
}
