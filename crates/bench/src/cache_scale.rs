//! `bench::cache_scale` — wall-clock scalability of the sharded node cache.
//!
//! Unlike every other module in this crate, which measures *simulated*
//! nanoseconds, this benchmark measures **real** time: it pits the
//! sharded, bank-locked [`rack_sim::cache::NodeCache`] against a faithful
//! port of the pre-shard design (one mutex around a `HashMap` + lazy LRU
//! queue, stats copied out under the lock after every operation) and
//! reports aggregate operations per wall-clock second at 1..=8 threads.
//!
//! Both implementations run the *identical* deterministic per-thread op
//! sequence (seeded [`SplitMix64`], disjoint working sets per thread), so
//! besides throughput the run cross-checks the cost model: the total
//! simulated nanoseconds charged by the two designs must be equal, and
//! equal across thread counts. A divergence fails the `--gate` check.
//!
//! The `cache-scale` binary writes the results as `BENCH_cache.json`;
//! `scripts/verify.sh` runs it in `--quick --gate` mode as a smoke test.

use rack_sim::cache::{CacheConfig, CacheStats, NodeCache};
use rack_sim::sync::Mutex;
use rack_sim::{GAddr, GlobalMemory, LatencyModel, SimError, SplitMix64, LINE_SIZE};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Thread counts exercised by the sweep (the gate compares the ends).
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Minimum host CPUs for the 4x multi-thread speedup target to be
/// physically meaningful (see [`host_cpus`]).
pub const SPEEDUP_TARGET_MIN_CPUS: usize = 8;

/// Cache-op driver interface shared by the two implementations.
pub trait DriverCache: Sync {
    /// Human-readable implementation name used in the report.
    fn name(&self) -> &'static str;
    /// Cached read; returns simulated cost.
    ///
    /// # Errors
    ///
    /// Propagates memory errors, as [`rack_sim::cache::NodeCache::read`].
    fn read(
        &self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        buf: &mut [u8],
    ) -> Result<u64, SimError>;
    /// Cached write; returns simulated cost.
    ///
    /// # Errors
    ///
    /// Propagates memory errors, as [`rack_sim::cache::NodeCache::write`].
    fn write(
        &self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        buf: &[u8],
    ) -> Result<u64, SimError>;
    /// Drop cached lines; returns simulated cost.
    fn invalidate(&self, lat: &LatencyModel, addr: GAddr, len: usize) -> u64;
}

impl DriverCache for NodeCache {
    fn name(&self) -> &'static str {
        "sharded"
    }
    fn read(
        &self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        buf: &mut [u8],
    ) -> Result<u64, SimError> {
        NodeCache::read(self, global, lat, addr, buf)
    }
    fn write(
        &self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        buf: &[u8],
    ) -> Result<u64, SimError> {
        NodeCache::write(self, global, lat, addr, buf)
    }
    fn invalidate(&self, lat: &LatencyModel, addr: GAddr, len: usize) -> u64 {
        NodeCache::invalidate(self, lat, addr, len)
    }
}

#[derive(Debug, Clone)]
struct BLine {
    data: [u8; LINE_SIZE],
    dirty: bool,
    lru_tick: u64,
}

#[derive(Debug)]
struct BaselineInner {
    lines: HashMap<u64, BLine>,
    tick: u64,
    stats: CacheStats,
    lru_queue: VecDeque<(u64, u64)>,
    max_lines: usize,
}

/// Faithful port of the pre-shard node cache: every operation takes one
/// node-wide mutex, LRU is a lazily-compacted tick queue, and (as the old
/// `NodeCtx` did) the whole `CacheStats` struct is copied out under the
/// lock and re-published after each op.
#[derive(Debug)]
pub struct BaselineCache {
    inner: Mutex<BaselineInner>,
    published: [AtomicU64; 6],
}

impl BaselineCache {
    /// An empty baseline cache with `max_lines` capacity.
    pub fn new(max_lines: usize) -> Self {
        BaselineCache {
            inner: Mutex::new(BaselineInner {
                lines: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
                lru_queue: VecDeque::new(),
                max_lines,
            }),
            published: Default::default(),
        }
    }

    fn publish(&self, s: CacheStats) {
        for (cell, v) in self.published.iter().zip([
            s.hits,
            s.misses,
            s.allocs,
            s.writebacks,
            s.invalidations,
            s.evictions,
        ]) {
            cell.store(v, Ordering::Relaxed);
        }
    }
}

impl BaselineInner {
    fn touch(&mut self, line_id: u64) {
        self.tick += 1;
        if let Some(l) = self.lines.get_mut(&line_id) {
            l.lru_tick = self.tick;
            self.lru_queue.push_back((line_id, self.tick));
        }
        if self.lru_queue.len() > self.lines.len() * 4 + 64 {
            let lines = &self.lines;
            self.lru_queue
                .retain(|(id, t)| lines.get(id).map(|l| l.lru_tick == *t).unwrap_or(false));
        }
    }

    fn enforce_capacity(&mut self, global: &GlobalMemory, lat: &LatencyModel) -> u64 {
        let mut cost = 0;
        while self.lines.len() > self.max_lines {
            let victim = loop {
                match self.lru_queue.pop_front() {
                    Some((id, t)) => {
                        if self
                            .lines
                            .get(&id)
                            .map(|l| l.lru_tick == t)
                            .unwrap_or(false)
                        {
                            break Some(id);
                        }
                    }
                    None => break None,
                }
            };
            let victim = match victim.or_else(|| {
                self.lines
                    .iter()
                    .min_by_key(|(id, l)| (l.lru_tick, **id))
                    .map(|(id, _)| *id)
            }) {
                Some(v) => v,
                None => break,
            };
            let line = self.lines.remove(&victim).expect("present");
            self.stats.evictions += 1;
            if line.dirty {
                if global
                    .write_bytes(GAddr(victim * LINE_SIZE as u64), &line.data)
                    .is_ok()
                {
                    self.stats.writebacks += 1;
                }
                cost += lat.writeback_line_ns;
            }
        }
        cost
    }

    fn fetch_line(
        &mut self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        line_id: u64,
        first_miss: bool,
    ) -> Result<u64, SimError> {
        let mut data = [0u8; LINE_SIZE];
        global.read_bytes(GAddr(line_id * LINE_SIZE as u64), &mut data)?;
        self.tick += 1;
        self.lines.insert(
            line_id,
            BLine {
                data,
                dirty: false,
                lru_tick: self.tick,
            },
        );
        self.lru_queue.push_back((line_id, self.tick));
        self.stats.misses += 1;
        let mut cost = if first_miss {
            lat.global_read_ns
        } else {
            lat.transfer_ns(LINE_SIZE).max(1)
        };
        cost += self.enforce_capacity(global, lat);
        Ok(cost)
    }
}

impl DriverCache for BaselineCache {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn read(
        &self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        buf: &mut [u8],
    ) -> Result<u64, SimError> {
        let mut inner = self.inner.lock();
        let mut cost = 0u64;
        let mut pos = 0usize;
        let mut a = addr.0;
        let mut missed = false;
        while pos < buf.len() {
            let line_id = a / LINE_SIZE as u64;
            let in_line = (a % LINE_SIZE as u64) as usize;
            let take = (LINE_SIZE - in_line).min(buf.len() - pos);
            if inner.lines.contains_key(&line_id) {
                inner.stats.hits += 1;
                cost += lat.cache_hit_ns;
                inner.touch(line_id);
            } else {
                cost += inner.fetch_line(global, lat, line_id, !missed)?;
                missed = true;
            }
            let line = inner.lines.get(&line_id).expect("just ensured");
            buf[pos..pos + take].copy_from_slice(&line.data[in_line..in_line + take]);
            pos += take;
            a += take as u64;
        }
        let stats = inner.stats;
        drop(inner);
        self.publish(stats);
        Ok(cost)
    }

    fn write(
        &self,
        global: &GlobalMemory,
        lat: &LatencyModel,
        addr: GAddr,
        buf: &[u8],
    ) -> Result<u64, SimError> {
        let mut inner = self.inner.lock();
        let mut cost = 0u64;
        let mut pos = 0usize;
        let mut a = addr.0;
        let mut missed = false;
        while pos < buf.len() {
            let line_id = a / LINE_SIZE as u64;
            let in_line = (a % LINE_SIZE as u64) as usize;
            let take = (LINE_SIZE - in_line).min(buf.len() - pos);
            if inner.lines.contains_key(&line_id) {
                inner.stats.hits += 1;
                cost += lat.cache_hit_ns;
                inner.touch(line_id);
            } else if take == LINE_SIZE {
                inner.stats.allocs += 1;
                inner.tick += 1;
                let tick = inner.tick;
                inner.lines.insert(
                    line_id,
                    BLine {
                        data: [0u8; LINE_SIZE],
                        dirty: false,
                        lru_tick: tick,
                    },
                );
                inner.lru_queue.push_back((line_id, tick));
                cost += lat.cache_hit_ns;
                cost += inner.enforce_capacity(global, lat);
            } else {
                cost += inner.fetch_line(global, lat, line_id, !missed)?;
                missed = true;
            }
            let line = inner.lines.get_mut(&line_id).expect("just ensured");
            line.data[in_line..in_line + take].copy_from_slice(&buf[pos..pos + take]);
            line.dirty = true;
            pos += take;
            a += take as u64;
        }
        let stats = inner.stats;
        drop(inner);
        self.publish(stats);
        Ok(cost)
    }

    fn invalidate(&self, lat: &LatencyModel, addr: GAddr, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let mut inner = self.inner.lock();
        let mut cost = 0;
        let mut first = true;
        let last = addr.0.saturating_add(len as u64 - 1) / LINE_SIZE as u64;
        for line_id in (addr.0 / LINE_SIZE as u64)..=last {
            if inner.lines.remove(&line_id).is_some() {
                inner.stats.invalidations += 1;
                cost += if first {
                    lat.invalidate_line_ns
                } else {
                    lat.invalidate_extra_line_ns
                };
                first = false;
            }
        }
        let stats = inner.stats;
        drop(inner);
        self.publish(stats);
        cost
    }
}

/// Parameters of one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Operations per thread in the timed region.
    pub ops_per_thread: u64,
    /// Cache lines in each thread's (disjoint) working set.
    pub lines_per_thread: u64,
    /// Target hit ratio in permille (e.g. 950 = 95 % of reads hit).
    pub hit_permille: u64,
    /// Base RNG seed; thread `t` uses `seed + t`.
    pub seed: u64,
    /// Measurement repetitions per point; best (shortest) run is kept, so
    /// one bad scheduling quantum cannot sink a point.
    pub reps: u32,
}

impl ScaleConfig {
    /// Full-run parameters (committed `BENCH_cache.json`).
    pub fn full(hit_permille: u64) -> Self {
        ScaleConfig {
            ops_per_thread: 200_000,
            lines_per_thread: 2048,
            hit_permille,
            seed: 0xCAC4E_5CA1E,
            reps: 3,
        }
    }

    /// Quick parameters for the ~1 s CI smoke run.
    pub fn quick(hit_permille: u64) -> Self {
        ScaleConfig {
            ops_per_thread: 30_000,
            reps: 2,
            ..Self::full(hit_permille)
        }
    }

    /// Hit ratios swept by a run (permille). The miss-heavy 500 sweep is
    /// part of *both* modes: it is the one that exposed the serialized
    /// miss path, so the smoke run must keep exercising it.
    pub fn hit_ratios(_quick: bool) -> &'static [u64] {
        &[950, 500]
    }
}

/// Result of one (implementation, thread count) measurement.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Implementation name (`"sharded"` / `"baseline"`).
    pub cache_impl: &'static str,
    /// Worker threads driving the cache.
    pub threads: usize,
    /// Hit-ratio target in permille.
    pub hit_permille: u64,
    /// Total cache operations across all threads.
    pub total_ops: u64,
    /// Wall-clock duration of the timed region, nanoseconds.
    pub elapsed_ns: u64,
    /// Aggregate throughput, operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Total *simulated* nanoseconds charged — must match between the two
    /// implementations for the same (threads, hit_permille) workload.
    pub sim_ns: u64,
}

/// One thread's deterministic op stream against `cache`.
///
/// Returns (ops performed, simulated ns charged). The mix is ~1/8 writes;
/// a miss is forced by invalidating the target line first with
/// probability `1 - hit_permille/1000`.
fn drive(
    cache: &dyn DriverCache,
    global: &GlobalMemory,
    lat: &LatencyModel,
    cfg: ScaleConfig,
    thread_idx: usize,
) -> (u64, u64) {
    let mut rng = SplitMix64::new(cfg.seed + thread_idx as u64);
    let base_line = thread_idx as u64 * cfg.lines_per_thread;
    let mut sim_ns = 0u64;
    let mut ops = 0u64;
    let mut buf = [0u8; 8];
    for _ in 0..cfg.ops_per_thread {
        let line = base_line + rng.next_below(cfg.lines_per_thread);
        let addr = GAddr(line * LINE_SIZE as u64);
        if rng.next_below(1000) >= cfg.hit_permille {
            sim_ns += cache.invalidate(lat, addr, 8);
            ops += 1;
        }
        if rng.next_below(8) == 0 {
            buf = line.to_le_bytes();
            sim_ns += cache.write(global, lat, addr, &buf).expect("in bounds");
        } else {
            sim_ns += cache.read(global, lat, addr, &mut buf).expect("in bounds");
        }
        ops += 1;
    }
    std::hint::black_box(buf);
    (ops, sim_ns)
}

/// Measure one implementation at one thread count.
pub fn run_point(cache: &dyn DriverCache, cfg: ScaleConfig, threads: usize) -> ScalePoint {
    let global = GlobalMemory::new((threads as u64 * cfg.lines_per_thread) as usize * LINE_SIZE);
    let lat = LatencyModel::hccs();

    // Warm every working set before the timed region so the measured
    // hit ratio matches `hit_permille` instead of cold-start misses.
    for t in 0..threads {
        let base = t as u64 * cfg.lines_per_thread;
        for l in 0..cfg.lines_per_thread {
            let mut b = [0u8; 8];
            cache
                .read(&global, &lat, GAddr((base + l) * LINE_SIZE as u64), &mut b)
                .expect("warm-up read in bounds");
        }
    }

    let barrier = Barrier::new(threads + 1);
    let (elapsed_ns, per_thread) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let global = &global;
                let lat = &lat;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    drive(cache, global, lat, cfg, t)
                })
            })
            .collect();
        // Timestamp BEFORE entering the barrier: workers cannot start
        // until main arrives, so this bounds the timed region from above
        // even if main is descheduled right after the release (on a
        // single-core host the workers may otherwise run — or finish —
        // before a post-barrier `Instant::now()` executes).
        let start = Instant::now();
        barrier.wait();
        let per_thread: Vec<(u64, u64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (start.elapsed().as_nanos() as u64, per_thread)
    });

    let total_ops: u64 = per_thread.iter().map(|(o, _)| o).sum();
    let sim_ns: u64 = per_thread.iter().map(|(_, s)| s).sum();
    ScalePoint {
        cache_impl: cache.name(),
        threads,
        hit_permille: cfg.hit_permille,
        total_ops,
        elapsed_ns,
        ops_per_sec: total_ops as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        sim_ns,
    }
}

/// Best-of-`reps` measurement: a fresh cache per rep (so every rep runs
/// the identical deterministic workload) and the shortest wall-clock kept.
fn best_point(
    make: &dyn Fn() -> Box<dyn DriverCache>,
    cfg: ScaleConfig,
    threads: usize,
) -> ScalePoint {
    (0..cfg.reps.max(1))
        .map(|_| run_point(&*make(), cfg, threads))
        .max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec))
        .expect("at least one rep")
}

/// Sweep both implementations over `thread_counts` at one hit ratio.
pub fn run_sweep(cfg: ScaleConfig, thread_counts: &[usize]) -> Vec<ScalePoint> {
    let mut points = Vec::new();
    for &threads in thread_counts {
        points.push(best_point(
            &|| Box::new(NodeCache::new(CacheConfig::default())),
            cfg,
            threads,
        ));
        points.push(best_point(
            &|| Box::new(BaselineCache::new(CacheConfig::default().max_lines)),
            cfg,
            threads,
        ));
    }
    points
}

/// Derived gate metrics for one hit ratio.
#[derive(Debug, Clone, Copy)]
pub struct ScaleSummary {
    /// Hit-ratio target in permille.
    pub hit_permille: u64,
    /// sharded / baseline throughput at 1 thread (target: ≥ 0.95).
    pub single_thread_ratio: f64,
    /// sharded / baseline throughput at the top of the sweep (target: ≥ 4).
    pub speedup_top: f64,
    /// Thread count the speedup was taken at.
    pub top_threads: usize,
    /// Minimum sharded / baseline throughput ratio over every measured
    /// thread count. The miss-heavy gate requires this ≥ 1 at
    /// `hit_permille = 500` in the committed report: the sharded cache
    /// must never lose to the single-mutex baseline.
    pub min_thread_ratio: f64,
    /// Whether both impls charged identical simulated ns at every point.
    pub sim_ns_parity: bool,
}

/// Compute the gate metrics from a sweep's points.
///
/// # Panics
///
/// Panics if `points` lacks a (sharded, baseline) pair at some thread
/// count — `run_sweep` always produces matched pairs.
pub fn summarize(points: &[ScalePoint]) -> ScaleSummary {
    let get = |name: &str, threads: usize| {
        points
            .iter()
            .find(|p| p.cache_impl == name && p.threads == threads)
            .expect("matched pair per thread count")
    };
    let top = points.iter().map(|p| p.threads).max().unwrap_or(1);
    let parity = points
        .iter()
        .filter(|p| p.cache_impl == "sharded")
        .all(|p| p.sim_ns == get("baseline", p.threads).sim_ns);
    let min_ratio = points
        .iter()
        .filter(|p| p.cache_impl == "sharded")
        .map(|p| p.ops_per_sec / get("baseline", p.threads).ops_per_sec)
        .fold(f64::INFINITY, f64::min);
    ScaleSummary {
        hit_permille: points.first().map(|p| p.hit_permille).unwrap_or(0),
        single_thread_ratio: get("sharded", 1).ops_per_sec / get("baseline", 1).ops_per_sec,
        speedup_top: get("sharded", top).ops_per_sec / get("baseline", top).ops_per_sec,
        top_threads: top,
        min_thread_ratio: min_ratio,
        sim_ns_parity: parity,
    }
}

/// CPUs the benchmark process may actually run on.
///
/// Wall-clock *parallel* speedup is physically bounded by this: on a
/// 1-CPU host, 8 threads time-slice one core and aggregate throughput
/// can only reflect per-op efficiency, never parallel scaling. The gate
/// therefore arms the 4x speedup target only when enough CPUs exist.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Render the full report (all sweeps + summaries) as a JSON document.
/// Hand-rolled: the workspace is hermetic, so no serde.
pub fn to_json(sweeps: &[(Vec<ScalePoint>, ScaleSummary)], quick: bool, cpus: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cache_scale\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"line_size\": {LINE_SIZE},\n"));
    out.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    out.push_str(&format!(
        "  \"speedup_target_armed\": {},\n",
        cpus >= SPEEDUP_TARGET_MIN_CPUS
    ));
    out.push_str(
        "  \"targets\": { \"speedup_top_min\": 4.0, \"single_thread_ratio_min\": 0.95, \
         \"speedup_min_requires_cpus\": 8, \"miss_heavy_min_thread_ratio_min\": 1.0 },\n",
    );
    out.push_str("  \"results\": [\n");
    let mut first = true;
    for (points, _) in sweeps {
        for p in points {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{ \"impl\": \"{}\", \"threads\": {}, \"hit_permille\": {}, \
                 \"total_ops\": {}, \"elapsed_ns\": {}, \"ops_per_sec\": {:.1}, \"sim_ns\": {} }}",
                p.cache_impl,
                p.threads,
                p.hit_permille,
                p.total_ops,
                p.elapsed_ns,
                p.ops_per_sec,
                p.sim_ns
            ));
        }
    }
    out.push_str("\n  ],\n  \"summaries\": [\n");
    for (i, (_, s)) in sweeps.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{ \"hit_permille\": {}, \"single_thread_ratio\": {:.3}, \
             \"speedup_top\": {:.2}, \"top_threads\": {}, \"min_thread_ratio\": {:.3}, \
             \"sim_ns_parity\": {} }}",
            s.hit_permille,
            s.single_thread_ratio,
            s.speedup_top,
            s.top_threads,
            s.min_thread_ratio,
            s.sim_ns_parity
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// One `results[]` entry re-read from a report on disk.
#[derive(Debug, Clone)]
pub struct ParsedPoint {
    /// Implementation name (`"sharded"` / `"baseline"`).
    pub cache_impl: String,
    /// Worker threads driving the cache.
    pub threads: usize,
    /// Hit-ratio target in permille.
    pub hit_permille: u64,
    /// Aggregate throughput, operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Total simulated nanoseconds charged.
    pub sim_ns: u64,
}

/// A `BENCH_cache.json` report re-read from disk (see [`parse_report`]).
#[derive(Debug, Clone)]
pub struct ParsedReport {
    /// Whether the report came from a `--quick` smoke run.
    pub quick: bool,
    /// Every measurement point, in report order.
    pub points: Vec<ParsedPoint>,
}

/// Re-read a report produced by [`to_json`]. Hand-rolled like the writer
/// (hermetic workspace, no serde): each `results[]` object occupies one
/// line, so the shared [`crate::report`] line-wise extraction is exact.
///
/// # Errors
///
/// Returns a description of the first malformed line or missing field.
pub fn parse_report(json: &str) -> Result<ParsedReport, String> {
    let quick = crate::report::parse_quick(json)?;
    let mut points = Vec::new();
    for obj in crate::report::objects_with(json, "impl") {
        points.push(ParsedPoint {
            cache_impl: obj.str_field("impl")?,
            threads: obj.usize_field("threads")?,
            hit_permille: obj.u64_field("hit_permille")?,
            ops_per_sec: obj.f64_field("ops_per_sec")?,
            sim_ns: obj.u64_field("sim_ns")?,
        });
    }
    if points.is_empty() {
        return Err("no results[] entries found".into());
    }
    Ok(ParsedReport { quick, points })
}

/// The strict acceptance check applied to the *committed*
/// `BENCH_cache.json` (the `--check` mode of the `cache-scale` binary).
/// Recomputes every ratio from the raw points rather than trusting the
/// report's own summary block. Requirements:
///
/// * full (non-quick) run with a (sharded, baseline) pair at every
///   (threads, hit ratio) point;
/// * `sim_ns` parity between the implementations at every point;
/// * miss-heavy sweep present (`hit_permille = 500`) and the sharded
///   cache at least as fast as the baseline at **every** thread count
///   there — including single-threaded (`single_thread_ratio ≥ 1.0`).
///
/// Returns the list of failures (empty = pass).
pub fn check_report(report: &ParsedReport) -> Vec<String> {
    let mut failures = Vec::new();
    if report.quick {
        failures.push("committed report must come from a full run, not --quick".into());
    }
    let mut saw_miss_heavy = false;
    for p in report.points.iter().filter(|p| p.cache_impl == "sharded") {
        let Some(base) = report.points.iter().find(|q| {
            q.cache_impl == "baseline" && q.threads == p.threads && q.hit_permille == p.hit_permille
        }) else {
            failures.push(format!(
                "no baseline point pairs (threads={}, hit_permille={})",
                p.threads, p.hit_permille
            ));
            continue;
        };
        if p.sim_ns != base.sim_ns {
            failures.push(format!(
                "sim_ns parity broken at threads={}, hit_permille={}: {} vs {}",
                p.threads, p.hit_permille, p.sim_ns, base.sim_ns
            ));
        }
        if p.hit_permille == 500 {
            saw_miss_heavy = true;
            if p.ops_per_sec < base.ops_per_sec {
                failures.push(format!(
                    "miss-heavy sweep: sharded loses to baseline at {} thread(s) \
                     ({:.0} vs {:.0} ops/s, ratio {:.3} < 1.0)",
                    p.threads,
                    p.ops_per_sec,
                    base.ops_per_sec,
                    p.ops_per_sec / base.ops_per_sec
                ));
            }
        }
    }
    if !saw_miss_heavy {
        failures.push("report lacks the miss-heavy (hit_permille=500) sweep".into());
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_impls_charge_identical_simulated_costs() {
        // The cost-model parity that makes the wall-clock comparison fair:
        // same deterministic op stream, same simulated charge.
        let cfg = ScaleConfig {
            ops_per_thread: 2_000,
            lines_per_thread: 64,
            hit_permille: 900,
            seed: 42,
            reps: 1,
        };
        let sharded = run_point(&NodeCache::new(CacheConfig::default()), cfg, 2);
        let baseline = run_point(
            &BaselineCache::new(CacheConfig::default().max_lines),
            cfg,
            2,
        );
        assert_eq!(sharded.sim_ns, baseline.sim_ns);
        assert_eq!(sharded.total_ops, baseline.total_ops);
        assert!(sharded.sim_ns > 0);
    }

    #[test]
    fn summary_reports_matched_pairs() {
        let cfg = ScaleConfig {
            ops_per_thread: 500,
            lines_per_thread: 32,
            hit_permille: 950,
            seed: 7,
            reps: 1,
        };
        let points = run_sweep(cfg, &[1, 2]);
        let s = summarize(&points);
        assert!(s.sim_ns_parity, "identical workloads must charge equally");
        assert_eq!(s.top_threads, 2);
        assert!(s.single_thread_ratio > 0.0);
        let json = to_json(&[(points, s)], true, host_cpus());
        for field in [
            "\"bench\"",
            "\"results\"",
            "\"summaries\"",
            "\"ops_per_sec\"",
            "\"single_thread_ratio\"",
            "\"speedup_top\"",
            "\"min_thread_ratio\"",
            "\"sim_ns_parity\"",
            "\"host_cpus\"",
            "\"speedup_target_armed\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    /// Build a minimal synthetic report through the real writer so the
    /// parser/checker tests cover the actual on-disk shape.
    fn synthetic_report(quick: bool, miss_heavy_sharded_ops: f64) -> String {
        let mk = |cache_impl: &'static str, threads, hit_permille, ops| ScalePoint {
            cache_impl,
            threads,
            hit_permille,
            total_ops: 1000,
            elapsed_ns: 1_000_000,
            ops_per_sec: ops,
            sim_ns: 5_000,
        };
        let sweep500 = vec![
            mk("sharded", 1, 500, miss_heavy_sharded_ops),
            mk("baseline", 1, 500, 1_000.0),
        ];
        let sweep950 = vec![
            mk("sharded", 1, 950, 2_000.0),
            mk("baseline", 1, 950, 1_500.0),
        ];
        let s950 = summarize(&sweep950);
        let s500 = summarize(&sweep500);
        to_json(&[(sweep950, s950), (sweep500, s500)], quick, 1)
    }

    #[test]
    fn parse_report_roundtrips_the_writer() {
        let json = synthetic_report(false, 1_100.0);
        let parsed = parse_report(&json).expect("writer output parses");
        assert!(!parsed.quick);
        assert_eq!(parsed.points.len(), 4);
        let p = &parsed.points[2];
        assert_eq!(p.cache_impl, "sharded");
        assert_eq!(p.hit_permille, 500);
        assert_eq!(p.sim_ns, 5_000);
        assert!((p.ops_per_sec - 1_100.0).abs() < 0.5);
    }

    #[test]
    fn check_report_accepts_winning_full_run() {
        let parsed = parse_report(&synthetic_report(false, 1_100.0)).unwrap();
        assert_eq!(check_report(&parsed), Vec::<String>::new());
    }

    #[test]
    fn check_report_rejects_miss_heavy_loss_and_quick_runs() {
        let losing = parse_report(&synthetic_report(false, 900.0)).unwrap();
        let failures = check_report(&losing);
        assert!(
            failures.iter().any(|f| f.contains("loses to baseline")),
            "expected a miss-heavy loss failure, got {failures:?}"
        );

        let quick = parse_report(&synthetic_report(true, 1_100.0)).unwrap();
        assert!(check_report(&quick).iter().any(|f| f.contains("full run")));

        let mut no_miss_heavy = parse_report(&synthetic_report(false, 1_100.0)).unwrap();
        no_miss_heavy.points.retain(|p| p.hit_permille != 500);
        assert!(check_report(&no_miss_heavy)
            .iter()
            .any(|f| f.contains("miss-heavy")));
    }
}
