//! Ablation A1 — synchronization methods on non-coherent shared memory.
//!
//! Compares the baseline global spinlock (with the mandatory
//! flush/invalidate discipline) against the paper's three lock-free
//! families on a shared counter object, across read ratios and node
//! counts. The expected shape: locking pays fabric atomics *plus* cache
//! maintenance on every operation; replication makes reads local;
//! delegation makes the owner's operations local; RCU makes reads
//! wait-free at publish-cost writes.

use flacdk::alloc::GlobalAllocator;
use flacdk::sync::delegation::{call_stepped, DelegationClient, DelegationServer};
use flacdk::sync::rcu::{EpochManager, VersionedCell};
use flacdk::sync::reclaim::RetireList;
use flacdk::sync::replicated::{Replica, ReplicatedHandle, ReplicatedLog};
use flacdk::sync::spinlock::GlobalSpinLock;
use rack_sim::{NodeId, Rack, RackConfig};

/// Methods under comparison.
pub const METHODS: [&str; 4] = ["spinlock", "replication", "delegation", "rcu"];

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncRow {
    /// Synchronization method.
    pub method: &'static str,
    /// Nodes participating.
    pub nodes: usize,
    /// Percent of operations that are reads.
    pub read_pct: u32,
    /// Mean per-operation latency in simulated ns.
    pub mean_op_ns: u64,
}

#[derive(Debug, Default)]
struct CounterReplica {
    value: u64,
}

impl Replica for CounterReplica {
    fn apply(&mut self, op: &[u8]) {
        self.value += u64::from_le_bytes(op.try_into().unwrap_or([0; 8]));
    }
}

fn is_read(i: usize, read_pct: u32) -> bool {
    (i as u32 % 100) < read_pct
}

/// Run one (method, nodes, read_pct) cell with `ops` operations spread
/// round-robin across nodes.
///
/// Contention model: nodes issue operations in closed-loop rounds. Each
/// method's *serial section* is tracked in virtual time — an operation
/// cannot enter it before the previous one left. For the lock that is
/// the whole critical section; for the lock-free methods it is a single
/// fabric atomic (log-tail claim / pointer CAS); delegation serializes
/// naturally at the owner. This is what makes the paper's point
/// measurable: locks serialize *work*, the lock-free families serialize
/// only one atomic.
pub fn run_cell(method: &'static str, nodes: usize, read_pct: u32, ops: usize) -> SyncRow {
    run_cell_on(
        &Rack::new(RackConfig::n_node(nodes)),
        method,
        nodes,
        read_pct,
        ops,
    )
}

fn run_cell_on(
    rack: &Rack,
    method: &'static str,
    nodes: usize,
    read_pct: u32,
    ops: usize,
) -> SyncRow {
    let mut total_ns = 0u64;
    // Virtual-time point at which the method's serial section frees up.
    let mut serial_free_at = 0u64;

    match method {
        "spinlock" => {
            let lock = GlobalSpinLock::alloc(rack.global()).expect("lock");
            let data = rack.global().alloc(8, 8).expect("data");
            for i in 0..ops {
                let node = rack.node(i % nodes);
                let t0 = node.clock().now();
                // Queue behind the previous holder.
                node.clock().advance_to(serial_free_at);
                let guard = lock.lock(&node).expect("lock");
                if is_read(i, read_pct) {
                    let mut buf = [0u8; 8];
                    guard.read_sync(data, &mut buf).expect("read");
                } else {
                    let mut buf = [0u8; 8];
                    guard.read_sync(data, &mut buf).expect("read");
                    let v = u64::from_le_bytes(buf) + 1;
                    guard.write_sync(data, &v.to_le_bytes()).expect("write");
                }
                drop(guard);
                // The WHOLE critical section was serial.
                serial_free_at = node.clock().now();
                total_ns += node.clock().now() - t0;
            }
        }
        "replication" => {
            let shared = ReplicatedLog::alloc(rack.global(), nodes, 4096, 64).expect("log");
            let mut handles: Vec<ReplicatedHandle<CounterReplica>> = (0..nodes)
                .map(|i| {
                    ReplicatedHandle::new(shared.clone(), rack.node(i), CounterReplica::default())
                })
                .collect();
            for i in 0..ops {
                let h = &mut handles[i % nodes];
                let node = h.node().clone();
                let t0 = node.clock().now();
                if is_read(i, read_pct) {
                    h.read(|c| c.value).expect("read");
                } else {
                    // Only the log-tail claim (one fabric atomic) is serial.
                    node.clock().advance_to(serial_free_at);
                    let claim_start = node.clock().now();
                    h.execute(&1u64.to_le_bytes()).expect("execute");
                    serial_free_at = claim_start + node.latency().global_atomic_ns;
                }
                total_ns += node.clock().now() - t0;
                // Keep the bounded log drained, as a deployment would.
                if i % 512 == 511 {
                    for h in handles.iter_mut() {
                        h.sync().expect("sync");
                    }
                    shared.gc(&rack.node(0)).expect("gc");
                }
            }
        }
        "delegation" => {
            let mut server = DelegationServer::new(rack.node(0), 500, {
                let mut value = 0u64;
                move |req: &[u8]| {
                    if req == b"r" {
                        value.to_le_bytes().to_vec()
                    } else {
                        value += 1;
                        vec![1]
                    }
                }
            });
            let clients: Vec<DelegationClient> = (1..nodes)
                .map(|i| DelegationClient::new(rack.node(i), NodeId(0), 500, 600 + i as u16))
                .collect();
            for i in 0..ops {
                let from = i % nodes;
                let req: &[u8] = if is_read(i, read_pct) { b"r" } else { b"w" };
                if from == 0 {
                    let node = rack.node(0);
                    let t0 = node.clock().now();
                    server.execute_local(req);
                    total_ns += node.clock().now() - t0;
                } else {
                    let client = &clients[from - 1];
                    let node = client.node().clone();
                    let t0 = node.clock().now();
                    call_stepped(client, &mut server, req).expect("call");
                    // Response causality: the reply arrives no earlier
                    // than the server finished.
                    node.clock().advance_to(server.node().clock().now());
                    total_ns += node.clock().now() - t0;
                }
            }
        }
        "rcu" => {
            let alloc = GlobalAllocator::new(rack.global().clone());
            let mgr = EpochManager::alloc(rack.global(), nodes).expect("epochs");
            let retired = RetireList::new();
            let cell = VersionedCell::alloc(rack.global()).expect("cell");
            cell.write(&rack.node(0), &alloc, &mgr, &retired, &0u64.to_le_bytes())
                .expect("init");
            for i in 0..ops {
                let node = rack.node(i % nodes);
                let t0 = node.clock().now();
                if is_read(i, read_pct) {
                    let guard = mgr.handle(node.clone()).read_lock().expect("lock");
                    cell.read(&node, &guard).expect("read");
                } else {
                    let guard = mgr.handle(node.clone()).read_lock().expect("lock");
                    let cur = cell
                        .read(&node, &guard)
                        .expect("read")
                        .map(|b| u64::from_le_bytes(b.try_into().unwrap_or([0; 8])))
                        .unwrap_or(0);
                    drop(guard);
                    // Only the publish CAS is serial.
                    node.clock().advance_to(serial_free_at);
                    let cas_start = node.clock().now();
                    cell.write(&node, &alloc, &mgr, &retired, &(cur + 1).to_le_bytes())
                        .expect("write");
                    serial_free_at = cas_start + node.latency().global_atomic_ns;
                    retired.reclaim(&node, &mgr, &alloc).expect("reclaim");
                }
                total_ns += node.clock().now() - t0;
            }
        }
        other => panic!("unknown method {other}"),
    }

    SyncRow {
        method,
        nodes,
        read_pct,
        mean_op_ns: total_ns / ops as u64,
    }
}

/// Rack-wide metrics behind one representative cell (RCU, 2 nodes,
/// 50% reads): operation counts, latency histograms, subsystem counters.
pub fn metrics(ops: usize) -> rack_sim::RackReport {
    let rack = Rack::new(RackConfig::n_node(2));
    rack.enable_tracing();
    run_cell_on(&rack, "rcu", 2, 50, ops);
    rack.metrics_report()
}

/// Run the full sweep: every method × node counts × read ratios.
pub fn run(ops: usize) -> Vec<SyncRow> {
    let mut rows = Vec::new();
    for method in METHODS {
        for nodes in [2usize, 4, 8] {
            for read_pct in [0u32, 50, 90, 100] {
                rows.push(run_cell(method, nodes, read_pct, ops));
            }
        }
    }
    rows
}

/// Render the sweep.
pub fn report(rows: &[SyncRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.method.to_string(),
                r.nodes.to_string(),
                format!("{}%", r.read_pct),
                crate::table::fmt_ns(r.mean_op_ns),
            ]
        })
        .collect();
    format!(
        "Ablation A1: synchronization methods under incoherence (mean op latency)\n\n{}",
        crate::table::render(&["method", "nodes", "reads", "mean latency"], &table_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_mostly_replication_beats_lock() {
        let lock = run_cell("spinlock", 2, 90, 100);
        let repl = run_cell("replication", 2, 90, 100);
        assert!(
            repl.mean_op_ns < lock.mean_op_ns,
            "replication ({}) must beat locking ({}) at 90% reads",
            repl.mean_op_ns,
            lock.mean_op_ns
        );
    }

    #[test]
    fn rcu_reads_are_cheap() {
        let reads = run_cell("rcu", 2, 100, 100);
        let writes = run_cell("rcu", 2, 0, 100);
        assert!(reads.mean_op_ns < writes.mean_op_ns);
    }

    #[test]
    fn all_methods_produce_rows() {
        for m in METHODS {
            let row = run_cell(m, 2, 50, 60);
            assert!(row.mean_op_ns > 0, "{m} measured nothing");
        }
    }

    #[test]
    fn report_covers_methods() {
        let rows: Vec<SyncRow> = METHODS.iter().map(|m| run_cell(m, 2, 50, 40)).collect();
        let text = report(&rows);
        for m in METHODS {
            assert!(text.contains(m));
        }
    }
}
