//! Figure 4 — Redis request latency: FlacOS IPC vs. networking.
//!
//! Reproduces the paper's headline experiment: redis-mini server on node
//! 0, client on node 1 of a two-node HCCS rack; SET and GET at two
//! request sizes over (a) FlacOS zero-copy IPC and (b) the TCP/IP
//! baseline. The paper reports a 1.75–2.4× latency reduction; the
//! `speedup` column of [`run`]'s rows reproduces the shape.

use flacdk::alloc::GlobalAllocator;
use flacos_ipc::channel::FlacChannel;
use flacos_ipc::netstack::{NetConfig, NetPair};
use rack_sim::{Rack, RackConfig};
use redis_mini::client::{request_stepped, RedisClient};
use redis_mini::resp::Command;
use redis_mini::server::RedisServer;
use redis_mini::transport::Transport;

/// The request sizes Figure 4 evaluates (small and large values).
pub const SIZES: [usize; 2] = [16, 4096];

/// One measured cell of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// "SET" or "GET".
    pub op: &'static str,
    /// Value size in bytes.
    pub size: usize,
    /// Mean latency over FlacOS IPC (simulated ns).
    pub flacos_ns: u64,
    /// Mean latency over TCP/IP (simulated ns).
    pub networking_ns: u64,
}

impl Fig4Row {
    /// Networking latency divided by FlacOS latency — the paper's
    /// reported reduction factor.
    pub fn speedup(&self) -> f64 {
        self.networking_ns as f64 / self.flacos_ns.max(1) as f64
    }
}

fn measure<T: Transport>(
    client: &mut RedisClient<T>,
    server: &mut RedisServer<T>,
    op: &'static str,
    size: usize,
    requests: usize,
) -> u64 {
    let key = b"bench-key".to_vec();
    // Ensure GETs hit.
    let (_, _) = request_stepped(
        client,
        server,
        &Command::Set {
            key: key.clone(),
            value: vec![0xAB; size],
        },
    )
    .expect("warmup set");
    let mut total = 0u64;
    for i in 0..requests {
        let cmd = match op {
            "SET" => Command::Set {
                key: key.clone(),
                value: vec![(i % 251) as u8; size],
            },
            _ => Command::Get { key: key.clone() },
        };
        let (_, latency) = request_stepped(client, server, &cmd).expect("request");
        total += latency;
    }
    total / requests as u64
}

/// Run Figure 4 with `requests` requests per cell.
pub fn run(requests: usize) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for &size in &SIZES {
        for op in ["SET", "GET"] {
            // Fresh racks per cell keep clocks and caches independent.
            let rack = Rack::new(RackConfig::two_node_hccs());
            let alloc = GlobalAllocator::new(rack.global().clone());
            let (sep, cep) = FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1))
                .expect("channel");
            let mut fserver = RedisServer::new(rack.node(0), sep);
            let mut fclient = RedisClient::new(rack.node(1), cep);
            let flacos_ns = measure(&mut fclient, &mut fserver, op, size, requests);

            let rack = Rack::new(RackConfig::two_node_hccs());
            let (sep, cep) = NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 0);
            let mut nserver = RedisServer::new(rack.node(0), sep);
            let mut nclient = RedisClient::new(rack.node(1), cep);
            let networking_ns = measure(&mut nclient, &mut nserver, op, size, requests);

            rows.push(Fig4Row {
                op,
                size,
                flacos_ns,
                networking_ns,
            });
        }
    }
    rows
}

/// Rack-wide metrics behind one representative Figure 4 cell (FlacOS
/// IPC, SET, 4 KiB values): operation counts, latency histograms, and
/// the `ipc` message counters.
pub fn metrics(requests: usize) -> rack_sim::RackReport {
    let rack = Rack::new(RackConfig::two_node_hccs());
    rack.enable_tracing();
    let alloc = GlobalAllocator::new(rack.global().clone());
    let (sep, cep) =
        FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).expect("channel");
    let mut server = RedisServer::new(rack.node(0), sep);
    let mut client = RedisClient::new(rack.node(1), cep);
    measure(&mut client, &mut server, "SET", 4096, requests);
    rack.metrics_report()
}

/// Render the figure as a table, with the networking-side overhead
/// decomposition the paper's §4.2 discussion rests on ("the majority of
/// the overhead in the networking method comes from software overhead,
/// including buffer allocations, data copies, and stack processing").
pub fn report(rows: &[Fig4Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.op.to_string(),
                crate::table::fmt_bytes(r.size as u64),
                crate::table::fmt_ns(r.flacos_ns),
                crate::table::fmt_ns(r.networking_ns),
                format!("{:.2}x", r.speedup()),
            ]
        })
        .collect();
    format!(
        "Figure 4: Redis request latency, FlacOS IPC vs networking\n\n{}\n{}",
        crate::table::render(
            &["op", "size", "FlacOS", "networking", "reduction"],
            &table_rows
        ),
        breakdown_report()
    )
}

/// Analytic per-direction decomposition of the TCP path for one small
/// request, from the cost model in force — where the networking method's
/// time goes.
pub fn breakdown_report() -> String {
    let cfg = NetConfig::ten_gbe();
    let rows = vec![
        vec![
            "syscalls (tx + rx)".to_string(),
            crate::table::fmt_ns(2 * cfg.syscall_ns),
        ],
        vec![
            "buffer allocation".to_string(),
            crate::table::fmt_ns(cfg.buf_alloc_ns),
        ],
        vec![
            "TCP processing (tx + rx)".to_string(),
            crate::table::fmt_ns(2 * cfg.tcp_ns),
        ],
        vec![
            "IP + driver (tx + rx)".to_string(),
            crate::table::fmt_ns(2 * (cfg.ip_ns + cfg.driver_ns)),
        ],
        vec![
            "interrupt/softirq".to_string(),
            crate::table::fmt_ns(cfg.irq_ns),
        ],
        vec![
            "wire (propagation + switch)".to_string(),
            crate::table::fmt_ns(cfg.wire_ns),
        ],
    ];
    format!(
        "networking one-way software overhead, one small segment (paper: \"buffer\nallocations, data copies, and stack processing\" dominate):\n\n{}",
        crate::table::render(&["component", "cost"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shape_holds() {
        let rows = run(50);
        assert_eq!(rows.len(), 4, "2 ops x 2 sizes");
        for row in &rows {
            assert!(
                row.speedup() > 1.6,
                "{} @{}B: FlacOS must clearly win (got {:.2}x)",
                row.op,
                row.size,
                row.speedup()
            );
            assert!(
                row.speedup() < 2.7,
                "{} @{}B: reduction must stay near the paper's 1.75-2.4x band (got {:.2}x)",
                row.op,
                row.size,
                row.speedup()
            );
        }
    }

    #[test]
    fn report_renders_all_rows() {
        let rows = run(5);
        let text = report(&rows);
        assert!(text.contains("SET"));
        assert!(text.contains("GET"));
        assert!(text.contains("4.0 KiB"));
    }
}
