//! `bench::serve_scale` — the `flac-loadgen` heavy-traffic serving
//! benchmark (ROADMAP item 1).
//!
//! An **open-loop**, multi-node load generator: it simulates `clients`
//! concurrent users (100 k – 1 M in the committed sweep) whose aggregate
//! request stream is a Poisson arrival process at `clients ×
//! per_client_rps` requests per simulated second, multiplexed over
//! `connections` transport connections from distinct client nodes onto
//! one redis-mini server node. Key popularity is zipfian
//! ([`rack_sim::Zipf`]), the op blend mixes GET/SET/INCR/APPEND, and
//! values come in two sizes (the Figure 4 pair). Requests are scheduled
//! by *wall (simulated) time regardless of completions* — the defining
//! property of open-loop load — so queueing delay shows up in the
//! latency distribution instead of silently throttling the offered rate.
//!
//! Each (transport, client-scale) point reports client-observed
//! p50/p99/p999/max latency in simulated nanoseconds, achieved
//! throughput, and a separately measured **saturation throughput** (a
//! closed firehose of deeply pipelined batches, completed requests per
//! simulated second). Every point is measured twice from the same seed;
//! the run is only `parity = true` if both runs produce bit-identical
//! latency streams — the simulated-time determinism gate.
//!
//! The `flac-loadgen` binary writes `BENCH_serve.json`;
//! `scripts/verify.sh` runs `--quick --gate` as a smoke test and
//! `--check BENCH_serve.json` against the committed report.

use flacdk::alloc::GlobalAllocator;
use flacos_ipc::channel::FlacChannel;
use flacos_ipc::netstack::{NetConfig, NetPair};
use rack_sim::{Rack, RackConfig, SimError, SplitMix64, Zipf};
use redis_mini::client::RedisClient;
use redis_mini::resp::{Command, Reply};
use redis_mini::server::RedisServer;
use redis_mini::transport::Transport;
use std::collections::VecDeque;

/// Commands per pipelined message in the saturation firehose.
const SATURATION_BATCH: usize = 64;

/// Safety valve: abort a run whose event loop stops making progress
/// (e.g. a reply stream wedged by a bug) after this many idle ticks.
const MAX_IDLE_TICKS: u64 = 100_000;

/// Op mix in permille of arrivals (must sum to 1000).
#[derive(Debug, Clone, Copy)]
pub struct OpBlend {
    /// GET share (reads of the shared `user:` keyspace).
    pub get: u64,
    /// SET share (writes of the shared `user:` keyspace).
    pub set: u64,
    /// INCR share (counter keyspace `ctr:`).
    pub incr: u64,
    /// APPEND share (log keyspace `log:`).
    pub append: u64,
}

impl OpBlend {
    /// The default serving blend: read-mostly with a write tail.
    pub fn mixed() -> Self {
        OpBlend {
            get: 700,
            set: 200,
            incr: 50,
            append: 50,
        }
    }
}

/// Parameters of one (transport, scale) measurement.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Simulated concurrent clients (drives the aggregate arrival rate
    /// and the keyspace size).
    pub clients: u64,
    /// Transport connections (one per client node) multiplexing them.
    pub connections: usize,
    /// Distinct keys; popularity is zipfian over this domain.
    pub keys: usize,
    /// Zipf skew for key popularity (0.99 = classic web workload).
    pub zipf_skew: f64,
    /// Per-client request rate (requests per simulated second).
    pub per_client_rps: f64,
    /// Requests measured in the open-loop window.
    pub requests: u64,
    /// Event-loop tick (simulated ns): arrivals within one tick are
    /// pipelined into one message per connection.
    pub tick_ns: u64,
    /// Small value size (bytes).
    pub small_value: usize,
    /// Large value size (bytes).
    pub large_value: usize,
    /// Permille of value-bearing ops using the large size.
    pub large_permille: u64,
    /// Op mix.
    pub blend: OpBlend,
    /// Requests driven through the closed saturation firehose.
    pub saturation_requests: u64,
    /// RNG seed (arrivals, keys, ops, sizes all derive from it).
    pub seed: u64,
}

impl ServeConfig {
    /// Full-run parameters at one client scale (committed report).
    pub fn full(clients: u64) -> Self {
        ServeConfig {
            clients,
            connections: 8,
            keys: clients.min(65_536) as usize,
            zipf_skew: 0.99,
            per_client_rps: 0.2,
            requests: 20_000,
            tick_ns: 5_000,
            small_value: 16,
            large_value: 4096,
            large_permille: 100,
            blend: OpBlend::mixed(),
            saturation_requests: 16_000,
            seed: 0x0005_E21E_F1AC ^ clients,
        }
    }

    /// Quick parameters for the ~1 s CI smoke run.
    pub fn quick(clients: u64) -> Self {
        ServeConfig {
            connections: 4,
            requests: 1_500,
            saturation_requests: 1_500,
            ..Self::full(clients)
        }
    }

    /// Client scales swept by a run. The committed report must carry at
    /// least three scales (enforced by [`check_report`]).
    pub fn scales(quick: bool) -> &'static [u64] {
        if quick {
            &[2_000, 10_000, 50_000]
        } else {
            &[100_000, 300_000, 1_000_000]
        }
    }

    /// Aggregate offered load, requests per simulated second.
    pub fn offered_rps(&self) -> f64 {
        self.clients as f64 * self.per_client_rps
    }
}

/// One measured (transport, scale) point.
#[derive(Debug, Clone)]
pub struct ServePoint {
    /// Transport label (`"flacos-ipc"` / `"tcp/ip"`).
    pub transport: &'static str,
    /// Simulated clients.
    pub clients: u64,
    /// Transport connections used.
    pub connections: usize,
    /// Open-loop requests completed.
    pub requests: u64,
    /// Replies that were RESP errors (must be 0).
    pub errors: u64,
    /// Offered open-loop rate (requests per simulated second).
    pub offered_rps: f64,
    /// Completed / elapsed simulated time in the open-loop window.
    pub achieved_rps: f64,
    /// Client-observed latency percentiles, simulated ns.
    pub p50_ns: u64,
    /// 99th percentile latency.
    pub p99_ns: u64,
    /// 99.9th percentile latency.
    pub p999_ns: u64,
    /// Maximum observed latency.
    pub max_ns: u64,
    /// Closed-firehose saturation throughput (requests per sim second).
    pub saturation_rps: f64,
    /// Transport-backpressure events observed (send `WouldBlock`).
    pub backpressure: u64,
    /// Order-sensitive checksum over the latency stream; two runs from
    /// the same seed must agree bit-for-bit.
    pub fingerprint: u64,
    /// Whether the duplicate seeded run reproduced `fingerprint`,
    /// the percentiles, and the saturation throughput exactly.
    pub parity: bool,
}

/// A freshly built measurement rack: the server, its load-generator
/// connections, and the `Rack` that keeps the simulated nodes alive.
type BuiltRack<T> = (Rack, RedisServer<T>, Vec<LoadConn<T>>);

/// One connection of the load generator.
struct LoadConn<T: Transport> {
    client: RedisClient<T>,
    /// Arrival timestamps of sent-but-unanswered requests, FIFO.
    inflight: VecDeque<u64>,
    /// Commands staged for the next send (this tick's arrivals, plus
    /// any the transport pushed back).
    staged_cmds: Vec<Command>,
    /// Arrival timestamps matching `staged_cmds`.
    staged_arrivals: Vec<u64>,
}

/// Raw output of one open-loop + saturation measurement.
struct RawPoint {
    latencies: Vec<u64>,
    errors: u64,
    backpressure: u64,
    achieved_rps: f64,
    saturation_rps: f64,
}

/// Exact percentile over a sorted latency sample.
fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Deterministic workload generator shared by both phases.
struct WorkloadGen {
    rng: SplitMix64,
    zipf: Zipf,
    cfg: ServeConfig,
}

impl WorkloadGen {
    fn new(cfg: &ServeConfig, stream: u64) -> Self {
        WorkloadGen {
            rng: SplitMix64::new(cfg.seed ^ stream),
            zipf: Zipf::new(cfg.keys, cfg.zipf_skew),
            cfg: *cfg,
        }
    }

    /// Exponential interarrival gap for the aggregate Poisson process.
    fn next_gap_ns(&mut self) -> u64 {
        let lambda_per_ns = self.cfg.offered_rps() / 1e9;
        let u = (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // Inverse-CDF sample, clamped to >= 1 ns so time always moves.
        ((-(1.0 - u).ln()) / lambda_per_ns).round().max(1.0) as u64
    }

    /// Which connection the next arrival's simulated client maps to.
    fn next_conn(&mut self) -> usize {
        (self.rng.next_below(self.cfg.clients) % self.cfg.connections as u64) as usize
    }

    fn value(&mut self) -> Vec<u8> {
        let size = if self.rng.next_below(1000) < self.cfg.large_permille {
            self.cfg.large_value
        } else {
            self.cfg.small_value
        };
        vec![0xAB; size]
    }

    /// One command drawn from the blend with a zipfian key.
    fn next_command(&mut self) -> Command {
        let rank = self.zipf.sample(&mut self.rng);
        let r = self.rng.next_below(1000);
        let b = self.cfg.blend;
        if r < b.get {
            Command::Get {
                key: format!("user:{rank:07}").into_bytes(),
            }
        } else if r < b.get + b.set {
            Command::Set {
                key: format!("user:{rank:07}").into_bytes(),
                value: self.value(),
            }
        } else if r < b.get + b.set + b.incr {
            // Counter keys live in their own namespace so INCR never
            // collides with a binary SET value (which would be a RESP
            // error and trip the errors==0 gate).
            Command::Incr {
                key: format!("ctr:{rank:07}").into_bytes(),
            }
        } else {
            Command::Append {
                key: format!("log:{rank:07}").into_bytes(),
                value: b"entry;".to_vec(),
            }
        }
    }
}

/// Drive the open-loop window: Poisson arrivals pipelined per tick,
/// latency = reply delivery (sim clock) minus scheduled arrival.
fn run_open_loop<T: Transport>(
    server: &mut RedisServer<T>,
    conns: &mut [LoadConn<T>],
    cfg: &ServeConfig,
) -> Result<(Vec<u64>, u64, u64, f64), SimError> {
    let mut wl = WorkloadGen::new(cfg, 0x09E9);
    let mut latencies = Vec::with_capacity(cfg.requests as usize);
    let mut errors = 0u64;
    let mut backpressure = 0u64;

    let t0 = conns
        .iter()
        .map(|c| c.client.node().clock().now())
        .chain(std::iter::once(server.node().clock().now()))
        .max()
        .unwrap_or(0);
    let mut next_arrival = t0 + wl.next_gap_ns();
    let mut sent = 0u64;
    let mut now_tick = t0;
    let mut idle_ticks = 0u64;

    while (latencies.len() as u64) < cfg.requests {
        // Fast-forward across dead air when nothing is in flight.
        let quiescent = conns
            .iter()
            .all(|c| c.inflight.is_empty() && c.staged_cmds.is_empty());
        if quiescent && sent < cfg.requests && next_arrival > now_tick + cfg.tick_ns {
            now_tick = next_arrival - (next_arrival - now_tick) % cfg.tick_ns;
        }
        let tick_end = now_tick + cfg.tick_ns;

        // Schedule this tick's arrivals onto their connections.
        while sent < cfg.requests && next_arrival < tick_end {
            let conn = &mut conns[wl.next_conn()];
            conn.staged_cmds.push(wl.next_command());
            conn.staged_arrivals.push(next_arrival);
            sent += 1;
            next_arrival += wl.next_gap_ns();
        }

        // Send each connection's pipelined batch.
        for conn in conns.iter_mut() {
            conn.client.node().clock().advance_to(tick_end);
            if conn.staged_cmds.is_empty() {
                continue;
            }
            match conn.client.send_pipelined(&conn.staged_cmds) {
                Ok(()) => {
                    conn.inflight.extend(conn.staged_arrivals.drain(..));
                    conn.staged_cmds.clear();
                }
                Err(SimError::WouldBlock) => backpressure += 1, // retry next tick
                Err(e) => return Err(e),
            }
        }

        // No explicit clock coupling: ring publish timestamps and fabric
        // arrival times already forbid consuming a message before it was
        // sent, so client nodes stay parallel and only the single-threaded
        // server serializes (its clock advances as it consumes and
        // charges per command).
        let served = server.poll()?;

        let mut progressed = served > 0;
        for conn in conns.iter_mut() {
            loop {
                match conn.client.recv_reply() {
                    Ok(reply) => {
                        let arrival = conn
                            .inflight
                            .pop_front()
                            .ok_or_else(|| SimError::Protocol("reply without request".into()))?;
                        latencies.push(conn.client.node().clock().now() - arrival);
                        if matches!(reply, Reply::Error(_)) {
                            errors += 1;
                        }
                        progressed = true;
                    }
                    Err(SimError::WouldBlock) => break,
                    Err(e) => return Err(e),
                }
            }
        }

        now_tick = tick_end;
        idle_ticks = if progressed { 0 } else { idle_ticks + 1 };
        if idle_ticks > MAX_IDLE_TICKS {
            return Err(SimError::Timeout {
                waited_ns: idle_ticks * cfg.tick_ns,
            });
        }
    }

    let end = conns
        .iter()
        .map(|c| c.client.node().clock().now())
        .max()
        .unwrap_or(now_tick);
    let achieved_rps = latencies.len() as f64 / ((end - t0).max(1) as f64 / 1e9);
    Ok((latencies, errors, backpressure, achieved_rps))
}

/// Closed firehose: keep every connection's pipeline full of
/// [`SATURATION_BATCH`]-deep batches and measure completions per
/// simulated second — the ceiling the open-loop sweep is compared to.
fn run_saturation<T: Transport>(
    server: &mut RedisServer<T>,
    conns: &mut [LoadConn<T>],
    cfg: &ServeConfig,
) -> Result<(f64, u64, u64), SimError> {
    let mut wl = WorkloadGen::new(cfg, 0x5A7);
    let total = cfg.saturation_requests;
    let mut remaining: Vec<u64> = vec![total / conns.len() as u64; conns.len()];
    remaining[0] += total % conns.len() as u64;
    let mut errors = 0u64;
    let mut backpressure = 0u64;

    let t0 = conns
        .iter()
        .map(|c| c.client.node().clock().now())
        .chain(std::iter::once(server.node().clock().now()))
        .max()
        .unwrap_or(0);
    for conn in conns.iter_mut() {
        conn.client.node().clock().advance_to(t0);
    }
    server.node().clock().advance_to(t0);

    let mut completed = 0u64;
    let mut idle_rounds = 0u64;
    while completed < total {
        let mut progressed = false;
        for (i, conn) in conns.iter_mut().enumerate() {
            if remaining[i] == 0 || !conn.inflight.is_empty() {
                continue;
            }
            let batch_len = (remaining[i] as usize).min(SATURATION_BATCH);
            if conn.staged_cmds.len() < batch_len {
                while conn.staged_cmds.len() < batch_len {
                    conn.staged_cmds.push(wl.next_command());
                }
            }
            match conn.client.send_pipelined(&conn.staged_cmds) {
                Ok(()) => {
                    let now = conn.client.node().clock().now();
                    for _ in 0..conn.staged_cmds.len() {
                        conn.inflight.push_back(now);
                    }
                    remaining[i] -= conn.staged_cmds.len() as u64;
                    conn.staged_cmds.clear();
                    progressed = true;
                }
                Err(SimError::WouldBlock) => backpressure += 1,
                Err(e) => return Err(e),
            }
        }

        server.poll()?;

        for conn in conns.iter_mut() {
            loop {
                match conn.client.recv_reply() {
                    Ok(reply) => {
                        conn.inflight.pop_front();
                        completed += 1;
                        if matches!(reply, Reply::Error(_)) {
                            errors += 1;
                        }
                        progressed = true;
                    }
                    Err(SimError::WouldBlock) => break,
                    Err(e) => return Err(e),
                }
            }
        }

        idle_rounds = if progressed { 0 } else { idle_rounds + 1 };
        if idle_rounds > MAX_IDLE_TICKS {
            return Err(SimError::Timeout {
                waited_ns: idle_rounds,
            });
        }
    }

    let end = conns
        .iter()
        .map(|c| c.client.node().clock().now())
        .max()
        .unwrap_or(t0);
    let rps = total as f64 / ((end - t0).max(1) as f64 / 1e9);
    Ok((rps, errors, backpressure))
}

/// A fresh server + connections over FlacOS IPC.
fn build_flac(cfg: &ServeConfig) -> Result<BuiltRack<flacos_ipc::channel::FlacEndpoint>, SimError> {
    let rack = Rack::new(RackConfig::n_node(cfg.connections + 1).with_global_mem(128 << 20));
    let alloc = GlobalAllocator::new(rack.global().clone());
    let mut server_eps = Vec::new();
    let mut conns = Vec::new();
    for i in 0..cfg.connections {
        let (sep, cep) =
            FlacChannel::create(rack.global(), alloc.clone(), rack.node(0), rack.node(i + 1))?;
        server_eps.push(sep);
        conns.push(LoadConn {
            client: RedisClient::new(rack.node(i + 1), cep),
            inflight: VecDeque::new(),
            staged_cmds: Vec::new(),
            staged_arrivals: Vec::new(),
        });
    }
    let server = RedisServer::with_connections(rack.node(0), server_eps);
    Ok((rack, server, conns))
}

/// A fresh server + connections over the TCP/IP baseline.
fn build_net(cfg: &ServeConfig) -> BuiltRack<flacos_ipc::netstack::NetEndpoint> {
    let rack = Rack::new(RackConfig::n_node(cfg.connections + 1).with_global_mem(128 << 20));
    let mut server_eps = Vec::new();
    let mut conns = Vec::new();
    for i in 0..cfg.connections {
        let (sep, cep) = NetPair::connect(
            rack.node(0),
            rack.node(i + 1),
            NetConfig::ten_gbe(),
            i as u16,
        );
        server_eps.push(sep);
        conns.push(LoadConn {
            client: RedisClient::new(rack.node(i + 1), cep),
            inflight: VecDeque::new(),
            staged_cmds: Vec::new(),
            staged_arrivals: Vec::new(),
        });
    }
    let server = RedisServer::with_connections(rack.node(0), server_eps);
    (rack, server, conns)
}

/// Order-sensitive checksum over the latency stream plus the derived
/// rates — the quantity two seeded runs must reproduce exactly.
fn fingerprint(raw: &RawPoint) -> u64 {
    let mut fp = 0x9E3779B97F4A7C15u64;
    for &l in &raw.latencies {
        fp = fp.rotate_left(7) ^ l.wrapping_mul(0xFF51AFD7ED558CCD);
    }
    fp ^= raw.achieved_rps.to_bits().wrapping_mul(3);
    fp ^= raw.saturation_rps.to_bits().rotate_left(17);
    fp ^ raw.errors ^ raw.backpressure.rotate_left(32)
}

fn measure_once<T: Transport>(
    builds: &dyn Fn() -> Result<BuiltRack<T>, SimError>,
    cfg: &ServeConfig,
) -> Result<RawPoint, SimError> {
    // Open-loop window on a fresh rack...
    let (_rack, mut server, mut conns) = builds()?;
    let (latencies, errors, bp_open, achieved_rps) = run_open_loop(&mut server, &mut conns, cfg)?;
    // ...and the saturation firehose on another, so queue state from an
    // overloaded open-loop run cannot leak into the ceiling measurement.
    let (_rack2, mut server2, mut conns2) = builds()?;
    let (saturation_rps, sat_errors, bp_sat) = run_saturation(&mut server2, &mut conns2, cfg)?;
    Ok(RawPoint {
        latencies,
        errors: errors + sat_errors,
        backpressure: bp_open + bp_sat,
        achieved_rps,
        saturation_rps,
    })
}

/// Measure one (transport, scale) point: two identical seeded runs, the
/// second one only to prove simulated-time parity.
fn run_transport_point<T: Transport>(
    label: &'static str,
    builds: &dyn Fn() -> Result<BuiltRack<T>, SimError>,
    cfg: &ServeConfig,
) -> Result<ServePoint, SimError> {
    let first = measure_once(builds, cfg)?;
    let second = measure_once(builds, cfg)?;
    let parity = fingerprint(&first) == fingerprint(&second)
        && first.latencies == second.latencies
        && first.saturation_rps == second.saturation_rps;

    let mut sorted = first.latencies.clone();
    sorted.sort_unstable();
    Ok(ServePoint {
        transport: label,
        clients: cfg.clients,
        connections: cfg.connections,
        requests: first.latencies.len() as u64,
        errors: first.errors,
        offered_rps: cfg.offered_rps(),
        achieved_rps: first.achieved_rps,
        p50_ns: percentile_ns(&sorted, 50.0),
        p99_ns: percentile_ns(&sorted, 99.0),
        p999_ns: percentile_ns(&sorted, 99.9),
        max_ns: sorted.last().copied().unwrap_or(0),
        saturation_rps: first.saturation_rps,
        backpressure: first.backpressure,
        fingerprint: fingerprint(&first),
        parity,
    })
}

/// Measure both transports at one scale.
///
/// # Errors
///
/// Propagates simulator failures (a wedged reply stream is a `Timeout`).
pub fn run_scale(cfg: &ServeConfig) -> Result<Vec<ServePoint>, SimError> {
    let flac = run_transport_point("flacos-ipc", &|| build_flac(cfg), cfg)?;
    let net = run_transport_point("tcp/ip", &|| Ok(build_net(cfg)), cfg)?;
    Ok(vec![flac, net])
}

/// Render the full report as a JSON document (hand-rolled: the
/// workspace is hermetic, so no serde; one `results[]` object per line,
/// the shape [`parse_report`] re-reads).
pub fn to_json(points: &[ServePoint], quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve_scale\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(
        "  \"targets\": { \"errors_max\": 0, \"min_scales\": 3, \"parity\": true, \
         \"flac_p50_beats_net\": true, \"flac_saturation_min_ratio\": 1.0 },\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{ \"transport\": \"{}\", \"clients\": {}, \"connections\": {}, \
             \"requests\": {}, \"errors\": {}, \"offered_rps\": {:.1}, \
             \"achieved_rps\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
             \"max_ns\": {}, \"saturation_rps\": {:.1}, \"backpressure\": {}, \
             \"fingerprint\": {}, \"parity\": {} }}",
            p.transport,
            p.clients,
            p.connections,
            p.requests,
            p.errors,
            p.offered_rps,
            p.achieved_rps,
            p.p50_ns,
            p.p99_ns,
            p.p999_ns,
            p.max_ns,
            p.saturation_rps,
            p.backpressure,
            p.fingerprint,
            p.parity
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// One `results[]` entry re-read from a report on disk.
#[derive(Debug, Clone)]
pub struct ParsedServePoint {
    /// Transport label.
    pub transport: String,
    /// Simulated clients.
    pub clients: u64,
    /// Open-loop requests completed.
    pub requests: u64,
    /// RESP-error replies.
    pub errors: u64,
    /// Latency percentiles (sim ns).
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Maximum latency.
    pub max_ns: u64,
    /// Saturation throughput (requests per sim second).
    pub saturation_rps: f64,
    /// Seeded-rerun parity.
    pub parity: bool,
}

/// A `BENCH_serve.json` report re-read from disk.
#[derive(Debug, Clone)]
pub struct ParsedServeReport {
    /// Whether the report came from a `--quick` smoke run.
    pub quick: bool,
    /// Every measurement point, in report order.
    pub points: Vec<ParsedServePoint>,
}

/// Re-read a report produced by [`to_json`], via the shared
/// [`crate::report`] one-object-per-line extraction.
///
/// # Errors
///
/// Returns a description of the first malformed line or missing field.
pub fn parse_report(json: &str) -> Result<ParsedServeReport, String> {
    let quick = crate::report::parse_quick(json)?;
    let mut points = Vec::new();
    for obj in crate::report::objects_with(json, "transport") {
        points.push(ParsedServePoint {
            transport: obj.str_field("transport")?,
            clients: obj.u64_field("clients")?,
            requests: obj.u64_field("requests")?,
            errors: obj.u64_field("errors")?,
            p50_ns: obj.u64_field("p50_ns")?,
            p99_ns: obj.u64_field("p99_ns")?,
            p999_ns: obj.u64_field("p999_ns")?,
            max_ns: obj.u64_field("max_ns")?,
            saturation_rps: obj.f64_field("saturation_rps")?,
            parity: obj.bool_field("parity")?,
        });
    }
    if points.is_empty() {
        return Err("no results[] entries found".into());
    }
    Ok(ParsedServeReport { quick, points })
}

/// The strict acceptance check applied to the committed
/// `BENCH_serve.json` (the `--check` mode of `flac-loadgen`).
/// Everything here is simulated-time-derived and therefore exactly
/// reproducible, so the gates are strict:
///
/// * full (non-quick) run, both transports at ≥ 3 client scales;
/// * zero RESP errors, `parity = true` at every point;
/// * percentiles ordered (`p50 ≤ p99 ≤ p999 ≤ max`), all nonzero;
/// * FlacOS IPC p50 strictly beats TCP/IP at every scale;
/// * FlacOS saturation throughput ≥ TCP/IP saturation throughput.
///
/// Returns the list of failures (empty = pass).
pub fn check_report(report: &ParsedServeReport) -> Vec<String> {
    let mut failures = Vec::new();
    if report.quick {
        failures.push("committed report must come from a full run, not --quick".into());
    }
    let mut scales: Vec<u64> = report.points.iter().map(|p| p.clients).collect();
    scales.sort_unstable();
    scales.dedup();
    if scales.len() < 3 {
        failures.push(format!(
            "report must cover >= 3 client scales, found {scales:?}"
        ));
    }
    for p in &report.points {
        if p.errors != 0 {
            failures.push(format!(
                "{} @{} clients: {} RESP error replies (must be 0)",
                p.transport, p.clients, p.errors
            ));
        }
        if !p.parity {
            failures.push(format!(
                "{} @{} clients: seeded rerun did not reproduce the latency stream",
                p.transport, p.clients
            ));
        }
        if p.requests == 0 || p.p50_ns == 0 || p.saturation_rps <= 0.0 {
            failures.push(format!(
                "{} @{} clients: empty or degenerate measurement",
                p.transport, p.clients
            ));
        }
        if !(p.p50_ns <= p.p99_ns && p.p99_ns <= p.p999_ns && p.p999_ns <= p.max_ns) {
            failures.push(format!(
                "{} @{} clients: percentiles out of order ({} / {} / {} / {})",
                p.transport, p.clients, p.p50_ns, p.p99_ns, p.p999_ns, p.max_ns
            ));
        }
    }
    for &scale in &scales {
        let find = |t: &str| {
            report
                .points
                .iter()
                .find(|p| p.transport == t && p.clients == scale)
        };
        let (Some(flac), Some(net)) = (find("flacos-ipc"), find("tcp/ip")) else {
            failures.push(format!(
                "scale {scale}: missing a (flacos-ipc, tcp/ip) transport pair"
            ));
            continue;
        };
        if flac.p50_ns >= net.p50_ns {
            failures.push(format!(
                "scale {scale}: FlacOS IPC p50 ({} ns) must beat TCP/IP ({} ns)",
                flac.p50_ns, net.p50_ns
            ));
        }
        if flac.saturation_rps < net.saturation_rps {
            failures.push(format!(
                "scale {scale}: FlacOS saturation ({:.0} rps) below TCP/IP ({:.0} rps)",
                flac.saturation_rps, net.saturation_rps
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ServeConfig {
        ServeConfig {
            clients: 500,
            connections: 2,
            keys: 128,
            requests: 200,
            saturation_requests: 200,
            per_client_rps: 40.0,
            ..ServeConfig::quick(500)
        }
    }

    #[test]
    fn open_loop_point_is_deterministic_and_error_free() {
        let cfg = tiny_cfg();
        let points = run_scale(&cfg).expect("run");
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(
                p.requests, cfg.requests,
                "{}: all requests answered",
                p.transport
            );
            assert_eq!(p.errors, 0, "{}: no RESP errors", p.transport);
            assert!(
                p.parity,
                "{}: seeded rerun must reproduce exactly",
                p.transport
            );
            assert!(p.p50_ns > 0 && p.p50_ns <= p.p99_ns && p.p999_ns <= p.max_ns);
            assert!(p.saturation_rps > 0.0);
        }
        let (flac, net) = (&points[0], &points[1]);
        assert_eq!(flac.transport, "flacos-ipc");
        assert!(
            flac.p50_ns < net.p50_ns,
            "IPC p50 {} must beat TCP p50 {}",
            flac.p50_ns,
            net.p50_ns
        );
    }

    #[test]
    fn report_roundtrips_and_checker_accepts_a_good_full_run() {
        let cfg = tiny_cfg();
        let mut points = Vec::new();
        for clients in [500u64, 1_000, 2_000] {
            let c = ServeConfig { clients, ..cfg };
            points.extend(run_scale(&c).expect("run"));
        }
        let json = to_json(&points, false);
        let parsed = parse_report(&json).expect("writer output parses");
        assert!(!parsed.quick);
        assert_eq!(parsed.points.len(), 6);
        assert_eq!(check_report(&parsed), Vec::<String>::new());
    }

    #[test]
    fn checker_rejects_quick_errors_and_parity_violations() {
        let p = ServePoint {
            transport: "flacos-ipc",
            clients: 100,
            connections: 2,
            requests: 10,
            errors: 0,
            offered_rps: 1.0,
            achieved_rps: 1.0,
            p50_ns: 10,
            p99_ns: 20,
            p999_ns: 30,
            max_ns: 40,
            saturation_rps: 100.0,
            backpressure: 0,
            fingerprint: 1,
            parity: true,
        };
        let mk = |transport, clients, errors, parity, p50| ServePoint {
            transport,
            clients,
            errors,
            parity,
            p50_ns: p50,
            ..p.clone()
        };
        let points = vec![
            mk("flacos-ipc", 100, 0, true, 10),
            mk("tcp/ip", 100, 0, true, 50),
            mk("flacos-ipc", 200, 1, true, 10),
            mk("tcp/ip", 200, 0, false, 50),
            mk("flacos-ipc", 300, 0, true, 60),
            mk("tcp/ip", 300, 0, true, 50),
        ];
        let parsed = parse_report(&to_json(&points, true)).unwrap();
        let failures = check_report(&parsed);
        assert!(failures.iter().any(|f| f.contains("--quick")));
        assert!(failures.iter().any(|f| f.contains("RESP error")));
        assert!(failures.iter().any(|f| f.contains("did not reproduce")));
        assert!(failures.iter().any(|f| f.contains("must beat")));
    }

    #[test]
    fn pipelining_carries_many_frames_per_message() {
        // The loadgen depends on batched frames actually batching: at a
        // high per-tick arrival rate the server must see fewer messages
        // than frames.
        let cfg = ServeConfig {
            per_client_rps: 2_000.0, // ~1 arrival/µs across 500 clients
            ..tiny_cfg()
        };
        let (_rack, mut server, mut conns) = build_flac(&cfg).expect("build");
        run_open_loop(&mut server, &mut conns, &cfg).expect("run");
        let stats = server.stats();
        assert_eq!(stats.frames, cfg.requests);
        assert!(
            stats.reply_batches < stats.frames / 2,
            "replies must batch: {} batches for {} frames",
            stats.reply_batches,
            stats.frames
        );
    }
}
