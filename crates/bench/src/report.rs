//! Shared parsing helpers for the committed benchmark reports.
//!
//! Every bench writer in this crate emits the same hand-rolled JSON
//! shape (hermetic workspace — no serde): human-readable framing with
//! exactly one object per line inside the result arrays. That makes
//! line-wise key extraction exact, and all three `--check` readers
//! (`flac-cache-scale`, `flac-loadgen`, `flac-store-scale`,
//! `flac-sync-scale`) share this module instead of each carrying its
//! own copy of the same string surgery.

/// Extract the raw value token of `"key": value` from a one-line JSON
/// object fragment (quotes stripped, `,`/`}` terminated).
pub fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = obj[start..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Read the report-level `"quick"` flag (every report carries one on
/// its own line).
///
/// # Errors
///
/// Returns a description when the field is absent.
pub fn parse_quick(json: &str) -> Result<bool, String> {
    json.lines()
        .find_map(|l| field(l, "quick").filter(|_| l.trim_start().starts_with("\"quick\"")))
        .map(|v| v == "true")
        .ok_or_else(|| "missing \"quick\" field".into())
}

/// One result-array line, with typed field accessors that name the
/// offending key on failure.
#[derive(Debug, Clone, Copy)]
pub struct LineObject<'a> {
    line: &'a str,
}

impl<'a> LineObject<'a> {
    /// The raw token of `key`.
    ///
    /// # Errors
    ///
    /// Names the missing key and the line it was expected on.
    pub fn raw(&self, key: &str) -> Result<&'a str, String> {
        field(self.line, key).ok_or_else(|| format!("missing \"{key}\" in {}", self.line))
    }

    /// A string field.
    ///
    /// # Errors
    ///
    /// Propagates [`LineObject::raw`] failures.
    pub fn str_field(&self, key: &str) -> Result<String, String> {
        Ok(self.raw(key)?.to_string())
    }

    /// An unsigned integer field.
    ///
    /// # Errors
    ///
    /// Missing key or unparsable number.
    pub fn u64_field(&self, key: &str) -> Result<u64, String> {
        self.raw(key)?.parse().map_err(|e| format!("{key}: {e}"))
    }

    /// An unsigned integer field as `usize`.
    ///
    /// # Errors
    ///
    /// Missing key or unparsable number.
    pub fn usize_field(&self, key: &str) -> Result<usize, String> {
        self.raw(key)?.parse().map_err(|e| format!("{key}: {e}"))
    }

    /// A floating-point field.
    ///
    /// # Errors
    ///
    /// Missing key or unparsable number.
    pub fn f64_field(&self, key: &str) -> Result<f64, String> {
        self.raw(key)?.parse().map_err(|e| format!("{key}: {e}"))
    }

    /// A boolean field.
    ///
    /// # Errors
    ///
    /// Propagates [`LineObject::raw`] failures.
    pub fn bool_field(&self, key: &str) -> Result<bool, String> {
        Ok(self.raw(key)? == "true")
    }
}

/// Iterate the one-per-line result objects identified by a `marker`
/// key (e.g. every line containing `"impl":`).
pub fn objects_with<'a>(
    json: &'a str,
    marker: &'a str,
) -> impl Iterator<Item = LineObject<'a>> + 'a {
    let pat = format!("\"{marker}\":");
    json.lines()
        .filter(move |l| l.contains(&pat))
        .map(|line| LineObject { line })
}

/// The single line containing `marker`, for one-off objects.
///
/// # Errors
///
/// Returns a description when no line carries the marker.
pub fn object_with<'a>(json: &'a str, marker: &str) -> Result<LineObject<'a>, String> {
    let pat = format!("\"{marker}\":");
    json.lines()
        .find(|l| l.contains(&pat))
        .map(|line| LineObject { line })
        .ok_or_else(|| format!("missing \"{marker}\" object"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "sample",
  "quick": false,
  "results": [
    {"impl": "a", "threads": 4, "ratio": 1.25, "ok": true},
    {"impl": "b", "threads": 8, "ratio": 0.5, "ok": false}
  ]
}"#;

    #[test]
    fn field_extracts_quoted_and_bare_tokens() {
        let line = r#"    {"impl": "a", "threads": 4, "ratio": 1.25, "ok": true},"#;
        assert_eq!(field(line, "impl"), Some("a"));
        assert_eq!(field(line, "threads"), Some("4"));
        assert_eq!(field(line, "ratio"), Some("1.25"));
        assert_eq!(field(line, "ok"), Some("true"));
        assert_eq!(field(line, "absent"), None);
    }

    #[test]
    fn typed_accessors_roundtrip_a_report() {
        assert!(!parse_quick(SAMPLE).unwrap());
        let objs: Vec<_> = objects_with(SAMPLE, "impl").collect();
        assert_eq!(objs.len(), 2);
        assert_eq!(objs[0].str_field("impl").unwrap(), "a");
        assert_eq!(objs[0].u64_field("threads").unwrap(), 4);
        assert!((objs[0].f64_field("ratio").unwrap() - 1.25).abs() < 1e-9);
        assert!(objs[0].bool_field("ok").unwrap());
        assert_eq!(objs[1].usize_field("threads").unwrap(), 8);
        assert!(!objs[1].bool_field("ok").unwrap());
    }

    #[test]
    fn failures_name_the_key() {
        let obj = objects_with(SAMPLE, "impl").next().unwrap();
        let err = obj.u64_field("missing").unwrap_err();
        assert!(err.contains("missing \"missing\""), "{err}");
        let err = obj.u64_field("impl").unwrap_err();
        assert!(err.starts_with("impl:"), "{err}");
        assert!(parse_quick("{}").is_err());
        assert!(object_with(SAMPLE, "nope").is_err());
        assert!(object_with(SAMPLE, "bench").is_ok());
    }
}
