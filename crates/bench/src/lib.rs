//! Experiment implementations for every table and figure of the paper,
//! plus the ablations DESIGN.md commits to.
//!
//! Each experiment module returns structured rows; the `figures` binary
//! prints them as the paper-style tables, and the bench targets in
//! `benches/` (built with `--features criterion`, running on the vendored
//! [`harness`] module) wrap the same entry points so `cargo bench`
//! exercises the identical code paths.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig4`] | Figure 4 — Redis SET/GET latency, FlacOS IPC vs TCP/IP |
//! | [`startup`] | §4.2 container startup: cold / FlacOS / hot |
//! | [`sync_ab`] | Ablation A1 — the three lock-free families vs locking |
//! | [`pagecache_ab`] | Ablation A2 — shared vs per-node page caches |
//! | [`faultbox_ab`] | Ablation A3 — fault-box blast radius & recovery |
//! | [`ipc_ab`] | Ablation A4 — transport latency across message sizes |
//! | [`dedup_ab`] | Ablation A5 — page dedup effectiveness |
//! | [`fabric_ab`] | Ablation A6 — sensitivity to the interconnect generation |
//! | [`tiering_ab`] | Ablation A7 — page tiering daemon off vs on |
//! | [`adaptive_ab`] | Ablation A8 — fixed sync policies vs adaptive driver |
//! | [`cache_scale`] | §2 cache internals — sharded vs single-mutex, wall-clock |
//! | [`serve_scale`] | §4 serving at scale — `flac-loadgen` open-loop sweep |
//! | [`topo_scale`] | §2.1/§3.3 — topology depth × page size, 1 shootdown per 2 MiB |

pub mod adaptive_ab;
pub mod cache_scale;
pub mod dedup_ab;
pub mod fabric_ab;
pub mod faultbox_ab;
pub mod faultstorm;
pub mod fig4;
pub mod harness;
pub mod ipc_ab;
pub mod pagecache_ab;
pub mod report;
pub mod serve_scale;
pub mod startup;
pub mod store_scale;
pub mod sync_ab;
pub mod sync_scale;
pub mod table;
pub mod tiering_ab;
pub mod topo_scale;
