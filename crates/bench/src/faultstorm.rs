//! The `flac-faultstorm` campaign harness: seeded rack-wide fault
//! storms driven against a fully booted FlacOS stack, with
//! cross-subsystem invariant checking.
//!
//! Each campaign boots a 4-node [`FlacRack`], spreads real work across
//! the subsystems (journaled file writes, message-fabric RPCs with
//! retry, fault-boxed applications, dirty cache lines awaiting
//! writeback), and lets a [`StormCampaign`] crash nodes, sever links,
//! and poison memory underneath it. The reaction layer exercises the
//! recovery paths this PR hardens — RPC retry-with-backoff, fault-box
//! re-election, journal replay on restart — and after the storm heals,
//! [`run_campaign`] checks the invariants the paper's reliability story
//! rests on:
//!
//! 1. **No lost committed writes** — every file write acknowledged to
//!    the workload is readable with its exact content, and every dirty
//!    scratch line that was explicitly written back survives in global
//!    memory.
//! 2. **No double-delivery** — the RPC server executed every
//!    acknowledged call exactly once (duplicate suppression absorbs
//!    retries; executions never exceed issued call ids).
//! 3. **Liveness after recovery** — once healed, every node can write
//!    and read the shared file system, the RPC path answers, and every
//!    fault-boxed application's state is intact on its (possibly
//!    re-elected) home.
//!
//! Everything derives from the campaign seed, so the storm's event log
//! is byte-identical across runs — the replay property asserted in this
//! module's tests and checked by `flac-faultstorm --verify`.

use flacdk::reliability::checkpoint::CheckpointManager;
use flacos::FlacRack;
use flacos_fault::fault_box::FaultBoxBuilder;
use flacos_fault::recovery::RecoveryOrchestrator;
use flacos_fault::redundancy::{Protection, RedundancyPolicy};
use flacos_fs::memfs::MemFs;
use flacos_ipc::{MsgRpcClient, MsgRpcServer, RetryPolicy};
use flacos_mem::addr::VirtAddr;
use flacos_mem::fault::FrameAllocator;
use flacos_mem::tlb::Tlb;
use flacos_mem::{AddressSpace, PhysFrame, Pte};
use flacos_tier::{LocalFramePool, Migration};
use rack_sim::storm::{StormCampaign, StormConfig, StormCounts, StormOp};
use rack_sim::{GAddr, NodeId, RackConfig, SimError};

/// Nodes in every campaign rack.
const NODES: usize = 4;
/// The node hosting the message-fabric RPC server.
const SERVER_NODE: usize = 1;
/// RPC request port / base reply port.
const RPC_PORT: u16 = 40;
const REPLY_PORT_BASE: u16 = 50;
/// Scrub-region geometry (the storm's poison target).
const SCRUB_WORDS: usize = 64;
/// Known-good pattern word `i` of the scrub region holds.
const SCRUB_PATTERN: u64 = 0xC0DE_F1AC_0000_0000;
/// Fault-boxed applications and their initial homes.
const APP_HOMES: [usize; 2] = [2, 3];

/// Outcome of one campaign: per-subsystem survival counters, the
/// deterministic event log, and any invariant violations.
#[derive(Debug, Clone)]
pub struct SurvivalReport {
    /// The seed the campaign ran from.
    pub seed: u64,
    /// Per-class storm operation counts.
    pub counts: StormCounts,
    /// Total executed steps (heal steps included).
    pub events: usize,
    /// File writes acknowledged (journaled + page cache) / attempts that
    /// degraded gracefully.
    pub fs_commits: u64,
    /// File-system operations that failed under faults (not violations:
    /// they were never acknowledged).
    pub fs_degraded: u64,
    /// Journal replays performed on node restart.
    pub fs_replays: u64,
    /// Journal entries replayed across all restarts.
    pub fs_entries_replayed: u64,
    /// RPC calls acknowledged to the client.
    pub rpc_acked: u64,
    /// RPC calls abandoned after retry exhaustion or a down server.
    pub rpc_degraded: u64,
    /// Distinct calls the server handler actually executed.
    pub rpc_executed: u64,
    /// Retried requests answered from the server's reply cache.
    pub rpc_dup_suppressed: u64,
    /// Call ids issued by clients.
    pub rpc_issued: u64,
    /// Dirty scratch lines explicitly written back (committed).
    pub scratch_flushed: u64,
    /// Dirty scratch lines lost to a crash before writeback (expected
    /// crash semantics, not violations).
    pub scratch_lost: u64,
    /// Poisoned words scrubbed and repaired.
    pub scrubs: u64,
    /// Fault boxes re-elected onto a surviving node.
    pub reelections: u64,
    /// Invariant violations (empty on a surviving campaign).
    pub violations: Vec<String>,
    /// The byte-identical replay artifact.
    pub log_text: String,
    /// The merged rack metrics after the campaign.
    pub metrics: rack_sim::RackReport,
}

impl SurvivalReport {
    /// Whether every invariant held.
    pub fn survived(&self) -> bool {
        self.violations.is_empty()
    }

    /// One summary row for the survival table.
    pub fn row(&self) -> String {
        format!(
            "{:#018x} | {:>5} | {:>2}/{:<2} | {:>4}/{:<4} | {:>4}/{:<4} | {:>3} | {:>3} | {:>3} | {}",
            self.seed,
            self.events,
            self.counts.crashes,
            self.counts.restarts,
            self.fs_commits,
            self.fs_degraded,
            self.rpc_acked,
            self.rpc_degraded,
            self.fs_replays,
            self.reelections,
            self.scrubs,
            if self.survived() {
                "ok".to_string()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }

    /// Header matching [`SurvivalReport::row`].
    pub fn header() -> &'static str {
        "seed               | steps | cr/rs | fs ok/deg | rpc ok/deg | rpl | re# | scr | verdict"
    }
}

/// The storm shape used by every campaign (poison region filled in per
/// rack at run time).
fn storm_config(steps: u32, poison_region: (GAddr, usize)) -> StormConfig {
    StormConfig {
        steps,
        min_live_nodes: 2,
        poison_region: Some(poison_region),
        ..StormConfig::default()
    }
}

/// Run one seeded campaign end to end and check every invariant.
///
/// Fully deterministic: the same `(seed, steps)` produces a
/// byte-identical [`SurvivalReport::log_text`].
///
/// # Panics
///
/// Panics if the rack cannot boot (global memory exhausted) — a harness
/// bug, not a campaign outcome.
#[allow(clippy::too_many_lines)]
pub fn run_campaign(seed: u64, steps: u32) -> SurvivalReport {
    let flac = FlacRack::boot(RackConfig::n_node(NODES).with_seed(seed ^ 0xF1AC)).expect("boot");
    let rack = flac.sim().clone();
    let n = rack.node_count();

    // --- File system: one mount per node, a shared campaign directory.
    let mut fs: Vec<MemFs> = (0..n)
        .map(|i| MemFs::mount(flac.fs_shared().clone(), rack.node(i)))
        .collect();
    fs[0].mkdir("/storm").expect("mkdir /storm");

    // --- RPC: a server on SERVER_NODE, one persistent client per node
    // (persistent so call ids never repeat within a campaign).
    let mut server = MsgRpcServer::new(rack.node(SERVER_NODE), RPC_PORT);
    let mut clients: Vec<MsgRpcClient> = (0..n)
        .map(|i| {
            MsgRpcClient::new(
                rack.node(i),
                NodeId(SERVER_NODE),
                RPC_PORT,
                REPLY_PORT_BASE + i as u16,
            )
        })
        .collect();
    let policy = RetryPolicy::default();

    // --- Fault-boxed applications with checkpoint protection.
    let mut orch = RecoveryOrchestrator::new();
    for (app_id, &home) in APP_HOMES.iter().enumerate() {
        let home_ctx = rack.node(home);
        let fbox = FaultBoxBuilder::new(app_id as u64)
            .stack_pages(1)
            .heap_pages(2)
            .build(
                &home_ctx,
                rack.global(),
                flac.alloc().clone(),
                flac.frames(),
                flac.epochs().clone(),
            )
            .expect("fault box");
        fbox.space()
            .write(
                &home_ctx,
                fbox.heap_va(0),
                format!("app-{app_id}").as_bytes(),
            )
            .expect("seed app state");
        let protection = Protection::new(
            RedundancyPolicy::PeriodicCheckpoint { period_ns: 1 },
            CheckpointManager::new(flac.alloc().clone(), flac.epochs().clone()),
        );
        orch.register(&home_ctx, fbox, protection)
            .expect("register");
    }

    // --- Scrub region: the storm's poison target, filled with a known
    // pattern the reaction layer repairs word by word.
    let scrub_base = rack
        .global()
        .alloc(SCRUB_WORDS * 8, 64)
        .expect("scrub region");
    let expected_word = |addr: GAddr| SCRUB_PATTERN ^ ((addr.0 - scrub_base.0) / 8);
    for w in 0..SCRUB_WORDS as u64 {
        let addr = GAddr(scrub_base.0 + w * 8);
        rack.node(0)
            .store_uncached_u64(addr, expected_word(addr))
            .expect("fill scrub region");
    }

    // --- Scratch slots for delayed writebacks: one fresh cache line per
    // dirty write, so a lost (crashed-away) line can never alias a
    // committed one.
    let scratch_base = rack
        .global()
        .alloc(64 * steps as usize + 64, 64)
        .expect("scratch region");
    let mut next_slot = 0u64;

    // --- Campaign state threaded through the reaction closure.
    let mut live = vec![true; n];
    let mut committed: Vec<(String, String)> = Vec::new();
    let mut next_file = 0u64;
    let mut pending: Vec<(usize, GAddr, u64)> = Vec::new(); // dirty, unflushed
    let mut flushed: Vec<(GAddr, u64)> = Vec::new(); // written back: must survive
    let mut fs_commits = 0u64;
    let mut fs_degraded = 0u64;
    let mut fs_replays = 0u64;
    let mut fs_entries_replayed = 0u64;
    let mut rpc_acked = 0u64;
    let mut rpc_degraded = 0u64;
    let mut rpc_issued = 0u64;
    let mut scratch_lost = 0u64;
    let mut scrubs = 0u64;
    let mut reelections = 0u64;
    let mut violations: Vec<String> = Vec::new();

    let campaign = StormCampaign::new(seed, storm_config(steps, (scrub_base, SCRUB_WORDS * 8)));
    let report = campaign.run(&rack, |step, op, rack| {
        let lowest_live =
            |live: &[bool]| live.iter().position(|&a| a).expect("min_live_nodes >= 2");
        match *op {
            StormOp::Workload => {
                // Flush the oldest pending dirty line whose node is live.
                let mut note = String::new();
                if let Some(i) = pending.iter().position(|&(node, _, _)| live[node]) {
                    let (node, addr, value) = pending.remove(i);
                    rack.node(node).writeback(addr, 8);
                    flushed.push((addr, value));
                    note = format!(", flushed {addr}");
                }
                // A committed file write from the round-robin writer.
                let writer = (step as usize..step as usize + n)
                    .map(|k| k % n)
                    .find(|&k| live[k])
                    .expect("min_live_nodes >= 2");
                let path = format!("/storm/f{next_file:04}");
                let content = format!("s{seed:016x}-{step:04}");
                match fs[writer].write_file(&path, content.as_bytes()) {
                    Ok(_) => {
                        committed.push((path.clone(), content));
                        next_file += 1;
                        fs_commits += 1;
                    }
                    Err(e) => {
                        fs_degraded += 1;
                        return format!("fs write degraded on n{writer}: {e}{note}");
                    }
                }
                // An RPC from the first live non-server node.
                let caller = (0..n).find(|&k| live[k] && k != SERVER_NODE);
                if !live[SERVER_NODE] {
                    rpc_degraded += 1;
                    return format!("wrote {path} on n{writer}; rpc skipped (server down){note}");
                }
                let Some(caller) = caller else {
                    rpc_degraded += 1;
                    return format!("wrote {path} on n{writer}; rpc skipped (no caller){note}");
                };
                rpc_issued += 1;
                let args = format!("step-{step:04}");
                let server = &mut server;
                let out = clients[caller].call_with_retry(args.as_bytes(), &policy, &mut |_| {
                    let mut handler = |req: &[u8]| {
                        let mut r = b"ack:".to_vec();
                        r.extend_from_slice(req);
                        r
                    };
                    server.drain(&mut handler).map(|_| ())
                });
                match out {
                    Ok(reply) => {
                        if reply == format!("ack:{args}").into_bytes() {
                            rpc_acked += 1;
                            format!("wrote {path} on n{writer}; rpc acked from n{caller}{note}")
                        } else {
                            violations.push(format!(
                                "step {step}: rpc reply mismatch for {args}"
                            ));
                            format!("rpc reply MISMATCH on step {step}")
                        }
                    }
                    Err(e) => {
                        rpc_degraded += 1;
                        format!("wrote {path} on n{writer}; rpc degraded from n{caller}: {e}{note}")
                    }
                }
            }
            StormOp::DelayedWriteback { node } => {
                let node_idx = node.0;
                if !live[node_idx] {
                    return format!("dirty write skipped: n{node_idx} down");
                }
                let addr = GAddr(scratch_base.0 + next_slot * 64);
                next_slot += 1;
                let value = seed ^ (u64::from(step) << 32) ^ addr.0;
                match rack.node(node_idx).write_u64(addr, value) {
                    Ok(()) => {
                        pending.push((node_idx, addr, value));
                        format!("dirty write on n{node_idx} @ {addr} (unflushed)")
                    }
                    Err(e) => format!("dirty write failed on n{node_idx}: {e}"),
                }
            }
            StormOp::CrashNode { node } => {
                let node_idx = node.0;
                live[node_idx] = false;
                // Dirty, un-written-back lines on the victim die with it.
                let before = pending.len();
                pending.retain(|&(owner, _, _)| owner != node_idx);
                scratch_lost += (before - pending.len()) as u64;
                // Re-elect every fault box homed there onto a survivor.
                let rescuer = lowest_live(&live);
                match orch.handle_node_crash(&rack.node(rescuer), node) {
                    Ok(rehomed) => {
                        reelections += rehomed.len() as u64;
                        format!(
                            "crash n{node_idx}: {} dirty lines lost, re-homed {rehomed:?} onto n{rescuer}",
                            before - pending.len()
                        )
                    }
                    Err(e) => {
                        violations.push(format!("step {step}: re-election failed: {e}"));
                        format!("crash n{node_idx}: re-election FAILED: {e}")
                    }
                }
            }
            StormOp::RestartNode { node } => {
                let node_idx = node.0;
                live[node_idx] = true;
                // The restarted node's local replica is gone: rebuild the
                // mount purely from the journal.
                match fs[node_idx].recover() {
                    Ok(replayed) => {
                        fs_replays += 1;
                        fs_entries_replayed += replayed;
                        format!("restart n{node_idx}: journal replayed {replayed} entries")
                    }
                    Err(e) => {
                        violations.push(format!("step {step}: journal replay failed: {e}"));
                        format!("restart n{node_idx}: journal replay FAILED: {e}")
                    }
                }
            }
            StormOp::FailLink { from, to } => {
                format!("link n{}->n{} severed; workload continues", from.0, to.0)
            }
            StormOp::RestoreLink { from, to } => {
                format!("link n{}->n{} restored", from.0, to.0)
            }
            StormOp::PoisonWord { addr } => {
                // Scrub and repair from the known-good pattern.
                let fixer = lowest_live(&live);
                let ctx = rack.node(fixer);
                ctx.global().scrub(addr, 8);
                match ctx.store_uncached_u64(addr, expected_word(addr)) {
                    Ok(()) => {
                        scrubs += 1;
                        format!("poison @ {addr}: scrubbed and repaired by n{fixer}")
                    }
                    Err(e) => {
                        violations.push(format!("step {step}: scrub failed at {addr}: {e}"));
                        format!("poison @ {addr}: repair FAILED: {e}")
                    }
                }
            }
        }
    });

    // --- Post-heal: flush every remaining dirty line (all nodes live).
    while let Some((node, addr, value)) = pending.pop() {
        rack.node(node).writeback(addr, 8);
        flushed.push((addr, value));
    }

    // --- Invariant 1: no lost committed writes.
    for (path, content) in &committed {
        match fs[0].read_file(path) {
            Ok(data) if data == content.as_bytes() => {}
            Ok(data) => violations.push(format!(
                "committed {path} corrupted: want {:?}, got {:?}",
                content,
                String::from_utf8_lossy(&data)
            )),
            Err(e) => violations.push(format!("committed {path} unreadable: {e}")),
        }
    }
    for &(addr, value) in &flushed {
        match rack.node(0).load_uncached_u64(addr) {
            Ok(got) if got == value => {}
            Ok(got) => violations.push(format!(
                "flushed scratch {addr} lost: want {value:#x}, got {got:#x}"
            )),
            Err(e) => violations.push(format!("flushed scratch {addr} unreadable: {e}")),
        }
    }
    for w in 0..SCRUB_WORDS as u64 {
        let addr = GAddr(scrub_base.0 + w * 8);
        match rack.node(0).load_uncached_u64(addr) {
            Ok(got) if got == expected_word(addr) => {}
            Ok(got) => violations.push(format!(
                "scrub word {addr} wrong: want {:#x}, got {got:#x}",
                expected_word(addr)
            )),
            Err(e) => violations.push(format!("scrub word {addr} unreadable: {e}")),
        }
    }

    // --- Invariant 2: no double-delivery.
    if server.executed() < rpc_acked {
        violations.push(format!(
            "rpc executed {} < acked {} — an acked call was never executed",
            server.executed(),
            rpc_acked
        ));
    }
    if server.executed() > rpc_issued {
        violations.push(format!(
            "rpc executed {} > issued {} — some call id executed twice",
            server.executed(),
            rpc_issued
        ));
    }

    // --- Invariant 3: liveness after recovery.
    for (i, mount) in fs.iter_mut().enumerate() {
        if !rack.is_alive(NodeId(i)) {
            violations.push(format!("node {i} still down after heal"));
            continue;
        }
        let path = format!("/storm/liveness-n{i}");
        match mount.write_file(&path, b"alive") {
            Ok(_) => match mount.read_file(&path) {
                Ok(data) if data == b"alive" => {}
                _ => violations.push(format!("post-heal read failed on node {i}")),
            },
            Err(e) => violations.push(format!("post-heal write failed on node {i}: {e}")),
        }
    }
    {
        let caller = if SERVER_NODE == 0 { 1 } else { 0 };
        let server = &mut server;
        let out = clients[caller].call_with_retry(b"post-heal", &policy, &mut |_| {
            let mut handler = |req: &[u8]| {
                let mut r = b"ack:".to_vec();
                r.extend_from_slice(req);
                r
            };
            server.drain(&mut handler).map(|_| ())
        });
        match out {
            Ok(reply) if reply == b"ack:post-heal" => rpc_issued += 1,
            other => violations.push(format!("post-heal rpc failed: {other:?}")),
        }
    }
    for (app_id, _) in APP_HOMES.iter().enumerate() {
        let fbox = orch.fault_box(app_id as u64).expect("registered");
        let home = rack.node(fbox.home().0);
        let want = format!("app-{app_id}");
        let mut buf = vec![0u8; want.len()];
        match fbox.space().read(&home, fbox.heap_va(0), &mut buf) {
            Ok(()) if buf == want.as_bytes() => {}
            other => violations.push(format!(
                "app {app_id} state lost on n{} after storm: {other:?}",
                fbox.home().0
            )),
        }
    }

    SurvivalReport {
        seed,
        counts: report.counts,
        events: report.events.len(),
        fs_commits,
        fs_degraded,
        fs_replays,
        fs_entries_replayed,
        rpc_acked,
        rpc_degraded,
        rpc_executed: server.executed(),
        rpc_dup_suppressed: server.dup_suppressed(),
        rpc_issued,
        scratch_flushed: flushed.len() as u64,
        scratch_lost,
        scrubs,
        reelections,
        violations,
        log_text: report.log_text(),
        metrics: rack.metrics_report(),
    }
}

/// Pages in the tiering campaign's shared address space.
const TIER_PAGES: u64 = 48;
/// Local-DRAM budget of the campaign's migrating node, in pages.
const TIER_BUDGET_PAGES: usize = 8;
/// The node running promotions/demotions (and crashing mid-flight).
const TIER_NODE: usize = 0;
/// Address-space id of the campaign workload.
const TIER_ASID: u64 = 1;

/// Outcome of one tiering storm campaign.
#[derive(Debug, Clone)]
pub struct TieringSurvivalReport {
    /// The seed the campaign ran from.
    pub seed: u64,
    /// Per-class storm operation counts.
    pub counts: StormCounts,
    /// Total executed steps (heal steps included).
    pub events: usize,
    /// Page writes acknowledged to the workload.
    pub writes_committed: u64,
    /// Page writes skipped (page migrating or its home node down).
    pub writes_skipped: u64,
    /// Migrations committed global → local.
    pub promotions: u64,
    /// Migrations committed local → global.
    pub demotions: u64,
    /// Mid-flight migrations rolled back (survivor abort after a crash,
    /// plus the end-of-campaign cleanup abort if one was in flight).
    pub aborts: u64,
    /// Invariant violations (empty on a surviving campaign).
    pub violations: Vec<String>,
    /// The byte-identical replay artifact.
    pub log_text: String,
    /// The merged rack metrics after the campaign.
    pub metrics: rack_sim::RackReport,
}

impl TieringSurvivalReport {
    /// Whether every invariant held.
    pub fn survived(&self) -> bool {
        self.violations.is_empty()
    }

    /// One summary row for the survival table.
    pub fn row(&self) -> String {
        format!(
            "{:#018x} | {:>5} | {:>2}/{:<2} | {:>4}/{:<4} | {:>4} | {:>4} | {:>3} | {}",
            self.seed,
            self.events,
            self.counts.crashes,
            self.counts.restarts,
            self.writes_committed,
            self.writes_skipped,
            self.promotions,
            self.demotions,
            self.aborts,
            if self.survived() {
                "ok".to_string()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }

    /// Header matching [`TieringSurvivalReport::row`].
    pub fn header() -> &'static str {
        "seed               | steps | cr/rs | wr ok/skip | prom | demo | abt | verdict"
    }
}

/// Rack-wide shootdown that only expects the live nodes to participate
/// (dead peers have no stale TLB; acks from stragglers are not awaited).
fn shootdown_live(
    tlbs: &mut [Tlb],
    live: &[bool],
    initiator: usize,
    asid: u64,
    vpn: u64,
) -> Result<(), SimError> {
    let peers: Vec<NodeId> = tlbs.iter().map(Tlb::node_id).collect();
    let expected = tlbs[initiator].begin_shootdown(&peers, asid, vpn)?;
    for (i, tlb) in tlbs.iter_mut().enumerate() {
        if i != initiator && live[i] {
            tlb.service_shootdowns()?;
        }
    }
    let _ = tlbs[initiator].collect_acks(expected);
    Ok(())
}

/// Run one seeded tiering storm campaign: node 0 continuously promotes
/// and demotes pages of a shared address space (one migration stage per
/// workload step) while the storm crashes and restarts nodes underneath
/// it, and every node keeps writing to non-migrating pages.
///
/// Invariants checked after the heal:
///
/// 1. **No lost committed writes** — every page holds exactly the last
///    content a write acknowledged, whether the page was promoted,
///    demoted, or caught mid-migration by a crash (the old copy stays
///    authoritative until commit, so a survivor's abort loses nothing).
/// 2. **No torn mappings** — no PTE is left with the `Migrating` guard.
/// 3. **Budget accounting** — the migrating node never holds more local
///    pages than its budget.
///
/// Fully deterministic: the same `(seed, steps)` produces a
/// byte-identical [`TieringSurvivalReport::log_text`].
///
/// # Panics
///
/// Panics if the rack cannot boot — a harness bug, not an outcome.
#[allow(clippy::too_many_lines)]
pub fn run_tiering_campaign(seed: u64, steps: u32) -> TieringSurvivalReport {
    let flac = FlacRack::boot(RackConfig::n_node(NODES).with_seed(seed ^ 0xF1AC)).expect("boot");
    let rack = flac.sim().clone();
    let n = rack.node_count();
    let n0 = rack.node(TIER_NODE);

    let space = AddressSpace::alloc(
        TIER_ASID,
        rack.global(),
        flac.alloc().clone(),
        flac.epochs().clone(),
        flac.retired().clone(),
    )
    .expect("address space");
    let frames = FrameAllocator::new(rack.global().clone());
    let mut model: Vec<Vec<u8>> = Vec::new();
    for vpn in 0..TIER_PAGES {
        let f = frames.alloc(&n0).expect("frame");
        space
            .map(&n0, vpn, Pte::new(PhysFrame::Global(f), true))
            .expect("map");
        let content = format!("init-{vpn:04}").into_bytes();
        space
            .write(&n0, VirtAddr::from_vpn(vpn), &content)
            .expect("seed page");
        model.push(content);
    }
    let mut tlbs: Vec<Tlb> = (0..n).map(|i| Tlb::new(rack.node(i), 64)).collect();
    let mut pool = LocalFramePool::new();

    // --- Campaign state threaded through the reaction closure.
    let mut live = vec![true; n];
    // vpn → local frame of pages promoted onto TIER_NODE (BTreeMap so the
    // demotion victim — the smallest vpn — is deterministic).
    let mut promoted: std::collections::BTreeMap<u64, rack_sim::LAddr> =
        std::collections::BTreeMap::new();
    // One in-flight staged migration: (migration, promote?).
    let mut in_flight: Option<(Migration, bool)> = None;
    let mut mig_cursor = 0u64;
    let mut writes_committed = 0u64;
    let mut writes_skipped = 0u64;
    let mut promotions = 0u64;
    let mut demotions = 0u64;
    let mut aborts = 0u64;
    let mut violations: Vec<String> = Vec::new();

    let config = StormConfig {
        steps,
        min_live_nodes: 2,
        link_fail_weight: 0,
        link_restore_weight: 0,
        poison_weight: 0,
        delayed_writeback_weight: 0,
        poison_region: None,
        ..StormConfig::default()
    };
    let campaign = StormCampaign::new(seed, config);
    let report = campaign.run(&rack, |step, op, rack| {
        match *op {
            StormOp::Workload => {
                // --- One migration micro-step on the tiering node.
                let note;
                if live[TIER_NODE] {
                    match in_flight.take() {
                        None => {
                            // Choose the next migration: demote the
                            // smallest promoted vpn when at budget, else
                            // promote the cursor's next global page.
                            if promoted.len() >= TIER_BUDGET_PAGES {
                                let vpn = *promoted.keys().next().expect("non-empty");
                                let dst = PhysFrame::Global(frames.alloc(&n0).expect("frame"));
                                match Migration::begin(&n0, &space, vpn, dst) {
                                    Ok(m) => {
                                        in_flight = Some((m, false));
                                        note = format!(", demote of vpn {vpn} began");
                                    }
                                    Err(e) => note = format!(", demote begin failed: {e}"),
                                }
                            } else {
                                let vpn = mig_cursor % TIER_PAGES;
                                mig_cursor += 1;
                                if promoted.contains_key(&vpn) {
                                    note = format!(", vpn {vpn} already local");
                                } else {
                                    let dst = PhysFrame::Local(
                                        n0.id(),
                                        pool.alloc(&n0).expect("local frame"),
                                    );
                                    match Migration::begin(&n0, &space, vpn, dst) {
                                        Ok(m) => {
                                            in_flight = Some((m, true));
                                            note = format!(", promote of vpn {vpn} began");
                                        }
                                        Err(e) => note = format!(", promote begin failed: {e}"),
                                    }
                                }
                            }
                        }
                        Some((mut m, promote)) => {
                            let vpn = m.vpn();
                            if m.copy(&n0, &space).is_err() {
                                m.abort(&n0, &space).expect("abort");
                                match m.new_frame() {
                                    PhysFrame::Global(g) => frames.free(&n0, g),
                                    PhysFrame::Local(_, l) => pool.free(l),
                                }
                                aborts += 1;
                                note = format!(", copy of vpn {vpn} failed; aborted");
                            } else {
                                let dst = m.new_frame();
                                let old = m
                                    .commit(&n0, &space, &mut |asid, vpn| {
                                        shootdown_live(&mut tlbs, &live, TIER_NODE, asid, vpn)
                                    })
                                    .expect("commit");
                                match old.frame {
                                    PhysFrame::Global(g) => frames.free(&n0, g),
                                    PhysFrame::Local(_, l) => pool.free(l),
                                }
                                if promote {
                                    let PhysFrame::Local(_, l) = dst else {
                                        unreachable!("promotion targets a local frame")
                                    };
                                    promoted.insert(vpn, l);
                                    promotions += 1;
                                    note = format!(", promoted vpn {vpn}");
                                } else {
                                    promoted.remove(&vpn);
                                    demotions += 1;
                                    note = format!(", demoted vpn {vpn}");
                                }
                            }
                        }
                    }
                } else {
                    note = format!(", tier idle (n{TIER_NODE} down)");
                }

                // --- A committed write to a round-robin page from the
                // node that can reach its frame.
                let vpn = u64::from(step) % TIER_PAGES;
                let lowest_live = live.iter().position(|&a| a).expect("live");
                let pte = space
                    .translate(&rack.node(lowest_live), VirtAddr::from_vpn(vpn))
                    .expect("walk")
                    .expect("mapped");
                if pte.migrating {
                    writes_skipped += 1;
                    return format!("write vpn {vpn} skipped: migrating{note}");
                }
                let writer = match pte.frame {
                    PhysFrame::Local(home, _) => {
                        if !live[home.0] {
                            writes_skipped += 1;
                            return format!(
                                "write vpn {vpn} skipped: local home n{} down{note}",
                                home.0
                            );
                        }
                        home.0
                    }
                    PhysFrame::Global(_) => lowest_live,
                };
                let content = format!("s{seed:016x}-{step:04}").into_bytes();
                match space.write(&rack.node(writer), VirtAddr::from_vpn(vpn), &content) {
                    Ok(()) => {
                        model[vpn as usize] = content;
                        writes_committed += 1;
                        format!("wrote vpn {vpn} from n{writer}{note}")
                    }
                    Err(e) => {
                        writes_skipped += 1;
                        format!("write vpn {vpn} degraded on n{writer}: {e}{note}")
                    }
                }
            }
            StormOp::CrashNode { node } => {
                let node_idx = node.0;
                live[node_idx] = false;
                // The crash-consistency story: a survivor rolls back any
                // migration the dead node left mid-flight — the old copy
                // is still authoritative, so nothing is lost.
                if node_idx == TIER_NODE {
                    if let Some((m, _)) = in_flight.take() {
                        let rescuer = live.iter().position(|&a| a).expect("min_live_nodes >= 2");
                        m.abort(&rack.node(rescuer), &space)
                            .expect("survivor abort");
                        match m.new_frame() {
                            PhysFrame::Global(g) => frames.free(&rack.node(rescuer), g),
                            PhysFrame::Local(_, l) => pool.free(l),
                        }
                        aborts += 1;
                        return format!(
                            "crash n{node_idx}: survivor n{rescuer} aborted mid-flight \
                             migration of vpn {} (old copy authoritative)",
                            m.vpn()
                        );
                    }
                    return format!("crash n{node_idx}: tiering paused, no migration in flight");
                }
                format!("crash n{node_idx}: workload continues")
            }
            StormOp::RestartNode { node } => {
                let node_idx = node.0;
                live[node_idx] = true;
                // A restarted node boots with a cold TLB.
                tlbs[node_idx].flush_asid(TIER_ASID);
                format!("restart n{node_idx}: TLB cold, tiering resumes")
            }
            StormOp::DelayedWriteback { .. }
            | StormOp::FailLink { .. }
            | StormOp::RestoreLink { .. }
            | StormOp::PoisonWord { .. } => "unused op class (weight 0)".to_string(),
        }
    });

    // --- Post-heal: roll back any still-open migration window.
    if let Some((m, _)) = in_flight.take() {
        m.abort(&n0, &space).expect("cleanup abort");
        match m.new_frame() {
            PhysFrame::Global(g) => frames.free(&n0, g),
            PhysFrame::Local(_, l) => pool.free(l),
        }
        aborts += 1;
    }

    // --- Invariant 1: no lost committed writes, readable from any node.
    for vpn in 0..TIER_PAGES {
        let want = &model[vpn as usize];
        let pte = match space.translate(&n0, VirtAddr::from_vpn(vpn)) {
            Ok(Some(pte)) => pte,
            other => {
                violations.push(format!("vpn {vpn} unmapped after storm: {other:?}"));
                continue;
            }
        };
        // Invariant 2: no torn mappings.
        if pte.migrating {
            violations.push(format!("vpn {vpn} left with the Migrating guard set"));
            continue;
        }
        // Read through the frame's home so local pages are reachable.
        let reader = match pte.frame {
            PhysFrame::Local(home, _) => rack.node(home.0),
            PhysFrame::Global(_) => n0.clone(),
        };
        let mut buf = vec![0u8; want.len()];
        match space.read(&reader, VirtAddr::from_vpn(vpn), &mut buf) {
            Ok(()) if &buf == want => {}
            Ok(()) => violations.push(format!(
                "vpn {vpn} corrupted: want {:?}, got {:?}",
                String::from_utf8_lossy(want),
                String::from_utf8_lossy(&buf)
            )),
            Err(e) => violations.push(format!("vpn {vpn} unreadable: {e}")),
        }
    }

    // --- Invariant 3: budget accounting.
    if promoted.len() > TIER_BUDGET_PAGES {
        violations.push(format!(
            "local tier over budget: {} > {TIER_BUDGET_PAGES} pages",
            promoted.len()
        ));
    }

    TieringSurvivalReport {
        seed,
        counts: report.counts,
        events: report.events.len(),
        writes_committed,
        writes_skipped,
        promotions,
        demotions,
        aborts,
        violations,
        log_text: report.log_text(),
        metrics: rack.metrics_report(),
    }
}

/// The shared ledger under the sync campaign's cell: committed entries
/// in commit order (so divergence is directly visible).
#[derive(Debug, Default, Clone)]
struct SyncLedger {
    entries: Vec<(u32, u32)>,
}

impl flacdk::sync::SyncState for SyncLedger {
    fn apply(&mut self, op: &[u8]) {
        let mut d = flacdk::wire::Decoder::new(op);
        if let (Ok(node), Ok(step)) = (d.u32(), d.u32()) {
            self.entries.push((node, step));
        }
    }
}

fn sync_op(node: usize, step: u32) -> Vec<u8> {
    let mut e = flacdk::wire::Encoder::new();
    e.put_u32(node as u32).put_u32(step);
    e.into_vec()
}

/// Outcome of one sync-cell storm campaign.
#[derive(Debug, Clone)]
pub struct SyncSurvivalReport {
    /// The seed the campaign ran from.
    pub seed: u64,
    /// Per-class storm operation counts.
    pub counts: StormCounts,
    /// Total executed steps (heal steps included).
    pub events: usize,
    /// Updates acknowledged (committed to the cell's op log).
    pub ops_committed: u64,
    /// Updates skipped because no live node could issue them.
    pub ops_skipped: u64,
    /// Delegation owners re-elected after a crash.
    pub reelections: u64,
    /// Entries the post-heal log replay reconstructed.
    pub replayed: u64,
    /// Invariant violations (empty on a surviving campaign).
    pub violations: Vec<String>,
    /// The byte-identical replay artifact.
    pub log_text: String,
    /// The merged rack metrics after the campaign.
    pub metrics: rack_sim::RackReport,
}

impl SyncSurvivalReport {
    /// Whether every invariant held.
    pub fn survived(&self) -> bool {
        self.violations.is_empty()
    }

    /// One summary row for the survival table.
    pub fn row(&self) -> String {
        format!(
            "{:#018x} | {:>5} | {:>2}/{:<2} | {:>4}/{:<4} | {:>3} | {:>5} | {}",
            self.seed,
            self.events,
            self.counts.crashes,
            self.counts.restarts,
            self.ops_committed,
            self.ops_skipped,
            self.reelections,
            self.replayed,
            if self.survived() {
                "ok".to_string()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }

    /// Header matching [`SyncSurvivalReport::row`].
    pub fn header() -> &'static str {
        "seed               | steps | cr/rs | op ok/skip | re# | rplay | verdict"
    }
}

/// Run one seeded sync-cell storm campaign: every live node commits
/// updates into one **delegated** [`flacdk::sync::SyncCell`] while the
/// storm crashes and restarts nodes underneath it — including the
/// delegation owner mid-stream. Crashes route through
/// [`RecoveryOrchestrator::handle_node_crash`] with the cell attached
/// ([`RecoveryOrchestrator::attach_sync`]), the same path `FlacRack`
/// wires up, so a dead owner is re-elected and the committed op log
/// drained by a survivor.
///
/// Invariants checked after the heal:
///
/// 1. **No committed update lost** — the cell's final state holds
///    exactly the acknowledged ops, in commit (log) order, across every
///    re-election.
/// 2. **Replay-verified** — replaying the cell's op log from scratch
///    ([`flacdk::sync::SyncCell::replay`]) reconstructs the identical
///    state (the campaign never garbage-collects the log, precisely so
///    this check can cover its whole history).
/// 3. **Liveness** — after the heal every node can read the cell and
///    commit one more update through the re-elected owner.
///
/// Fully deterministic: the same `(seed, steps)` produces a
/// byte-identical [`SyncSurvivalReport::log_text`].
///
/// # Panics
///
/// Panics if the rack cannot boot — a harness bug, not an outcome.
#[allow(clippy::too_many_lines)]
pub fn run_sync_campaign(seed: u64, steps: u32) -> SyncSurvivalReport {
    use flacdk::sync::{SyncCell, SyncCellConfig, SyncPolicy};

    let rack = rack_sim::Rack::new(
        RackConfig::n_node(NODES)
            .with_global_mem(64 << 20)
            .with_seed(seed ^ 0xF1AC),
    );
    let n = rack.node_count();
    // A generously sized log and no gc() calls: the whole campaign must
    // stay replayable for invariant 2.
    let cell = SyncCell::alloc(
        rack.global(),
        "storm_ledger",
        SyncCellConfig::new(n, SyncPolicy::Delegated).with_log(4096, 48),
        SyncLedger::default(),
    )
    .expect("cell");
    let mut orch = RecoveryOrchestrator::new();
    orch.attach_sync(cell.clone());

    let mut live = vec![true; n];
    // Acknowledged ops keyed by commit index: the model the final state
    // must match exactly.
    let mut model: Vec<(u64, (u32, u32))> = Vec::new();
    let mut ops_committed = 0u64;
    let mut ops_skipped = 0u64;
    let mut reelections = 0u64;
    let mut violations: Vec<String> = Vec::new();

    let config = StormConfig {
        steps,
        min_live_nodes: 2,
        link_fail_weight: 0,
        link_restore_weight: 0,
        poison_weight: 0,
        delayed_writeback_weight: 0,
        poison_region: None,
        ..StormConfig::default()
    };
    let campaign = StormCampaign::new(seed, config);
    let report = campaign.run(&rack, |step, op, rack| match *op {
        StormOp::Workload => {
            // A round-robin live node commits one update; a second live
            // node reads and must see every previously committed op.
            let Some(writer) = (step as usize..step as usize + n)
                .map(|k| k % n)
                .find(|&k| live[k])
            else {
                ops_skipped += 1;
                return "update skipped: no live writer".to_string();
            };
            let ctx = rack.node(writer);
            match cell.update(&ctx, &sync_op(writer, step)) {
                Ok(idx) => {
                    model.push((idx, (writer as u32, step)));
                    ops_committed += 1;
                    let reader = (0..n).rev().find(|&k| live[k]).expect("live reader");
                    let seen = cell
                        .read(&rack.node(reader), |l| l.entries.len())
                        .expect("read");
                    if (seen as u64) < ops_committed {
                        violations.push(format!(
                            "step {step}: n{reader} sees {seen} < {ops_committed} committed"
                        ));
                    }
                    format!("op {idx} committed from n{writer}, n{reader} sees {seen}")
                }
                Err(e) => {
                    ops_skipped += 1;
                    format!("update degraded on n{writer}: {e}")
                }
            }
        }
        StormOp::CrashNode { node } => {
            let node_idx = node.0;
            live[node_idx] = false;
            let rescuer = live.iter().position(|&a| a).expect("min_live_nodes >= 2");
            let ctx = rack.node(rescuer);
            let owner_before = cell.owner_node(&ctx).expect("owner");
            match orch.handle_node_crash(&ctx, node) {
                Ok(_) => {
                    let owner_after = cell.owner_node(&ctx).expect("owner");
                    if owner_before == Some(node) {
                        reelections += 1;
                        format!(
                            "crash n{node_idx}: delegation owner died; n{rescuer} re-elected \
                             (owner now {owner_after:?})"
                        )
                    } else {
                        format!("crash n{node_idx}: owner {owner_before:?} unaffected")
                    }
                }
                Err(e) => {
                    violations.push(format!("step {step}: sync recovery failed: {e}"));
                    format!("crash n{node_idx}: sync recovery FAILED: {e}")
                }
            }
        }
        StormOp::RestartNode { node } => {
            live[node.0] = true;
            format!("restart n{}: rejoins as a plain client", node.0)
        }
        StormOp::DelayedWriteback { .. }
        | StormOp::FailLink { .. }
        | StormOp::RestoreLink { .. }
        | StormOp::PoisonWord { .. } => "unused op class (weight 0)".to_string(),
    });

    // --- Invariant 1: no committed update lost, in commit order.
    model.sort_unstable_by_key(|&(idx, _)| idx);
    let expected: Vec<(u32, u32)> = model.iter().map(|&(_, op)| op).collect();
    let n0 = rack.node(0);
    let final_entries = cell.read(&n0, |l| l.entries.clone()).expect("final read");
    if final_entries != expected {
        violations.push(format!(
            "committed ops lost or reordered: cell has {} entries, model {}",
            final_entries.len(),
            expected.len()
        ));
    }

    // --- Invariant 2: replaying the log from scratch reconstructs the
    // identical state.
    let (replayed_state, replayed) = cell.replay(&n0, SyncLedger::default()).expect("log replay");
    if replayed_state.entries != expected {
        violations.push(format!(
            "log replay diverged: {} replayed entries vs {} committed",
            replayed_state.entries.len(),
            expected.len()
        ));
    }

    // --- Invariant 3: liveness through the re-elected owner.
    for i in 0..n {
        if !rack.is_alive(NodeId(i)) {
            violations.push(format!("node {i} still down after heal"));
        }
    }
    match cell.update(&n0, &sync_op(0, steps)) {
        Ok(_) => {
            let len = cell.read(&n0, |l| l.entries.len()).expect("post-heal read");
            if len as u64 != ops_committed + 1 {
                violations.push(format!(
                    "post-heal update invisible: {len} entries vs {} expected",
                    ops_committed + 1
                ));
            }
        }
        Err(e) => violations.push(format!("post-heal update failed: {e}")),
    }

    SyncSurvivalReport {
        seed,
        counts: report.counts,
        events: report.events.len(),
        ops_committed,
        ops_skipped,
        reelections,
        replayed,
        violations,
        log_text: report.log_text(),
        metrics: rack.metrics_report(),
    }
}

/// Run one seeded **node-replicated** sync-cell storm campaign: the
/// flat-combining counterpart of [`run_sync_campaign`]. Live nodes
/// drive the split publication protocol
/// ([`flacdk::sync::SyncCell::nr_publish`] →
/// [`flacdk::sync::SyncCell::nr_combine`] →
/// [`flacdk::sync::SyncCell::nr_poll`]), and on a seeded schedule the
/// campaign kills a combiner **mid-batch** — in both fatal windows:
///
/// * *before the tail CAS* — the role is claimed and the slots are
///   drained, but nothing committed; re-election must commit every
///   stranded publication exactly once;
/// * *after the append* — the batch is committed but no slot was
///   consumed and the role never released; re-election must dedup
///   against the committed window and **not** double-apply.
///
/// After every recovery the stranded publishers' polls must return a
/// log index (no published op lost), and the cell must hold exactly
/// the model's ops (no double-apply). The storm's own node crashes and
/// restarts run underneath throughout. Invariants 1–3 match
/// [`run_sync_campaign`]; `reelections` counts combiner re-elections.
///
/// # Panics
///
/// Panics if the rack cannot boot — a harness bug, not an outcome.
#[allow(clippy::too_many_lines)]
pub fn run_nr_sync_campaign(seed: u64, steps: u32) -> SyncSurvivalReport {
    use flacdk::sync::{SyncCell, SyncCellConfig, SyncPolicy};

    let rack = rack_sim::Rack::new(
        RackConfig::n_node(NODES)
            .with_global_mem(64 << 20)
            .with_seed(seed ^ 0xF1AC),
    );
    let n = rack.node_count();
    let cell = SyncCell::alloc(
        rack.global(),
        "storm_nr_ledger",
        SyncCellConfig::new(n, SyncPolicy::NodeReplicated).with_log(4096, 48),
        SyncLedger::default(),
    )
    .expect("cell");
    let mut orch = RecoveryOrchestrator::new();
    orch.attach_sync(cell.clone());

    let mut live = vec![true; n];
    let mut model: Vec<(u64, (u32, u32))> = Vec::new();
    let mut ops_committed = 0u64;
    let mut ops_skipped = 0u64;
    let mut reelections = 0u64;
    let mut violations: Vec<String> = Vec::new();

    let config = StormConfig {
        steps,
        min_live_nodes: 2,
        link_fail_weight: 0,
        link_restore_weight: 0,
        poison_weight: 0,
        delayed_writeback_weight: 0,
        poison_region: None,
        ..StormConfig::default()
    };
    let campaign = StormCampaign::new(seed, config);
    let report = campaign.run(&rack, |step, op, rack| match *op {
        StormOp::Workload => {
            let live_nodes: Vec<usize> = (0..n).filter(|&k| live[k]).collect();
            // Every third workload step with enough live actors stages a
            // mid-batch combiner crash instead of a clean round.
            if step % 3 == 2 && live_nodes.len() >= 4 {
                // Two publishers strand ops, a victim claims the role
                // and dies in one of the two fatal windows.
                let publishers = [live_nodes[0], live_nodes[1]];
                let victim = *live_nodes.last().expect("nonempty");
                for &p in &publishers {
                    match cell.nr_publish(&rack.node(p), &sync_op(p, step)) {
                        Ok(_) => {}
                        Err(e) => {
                            violations.push(format!("step {step}: publish failed on n{p}: {e}"));
                            return format!("mid-batch stage failed: publish on n{p}: {e}");
                        }
                    }
                }
                let before_cas = step % 2 == 0;
                let armed = if before_cas {
                    cell.nr_combine_crash_before_append(&rack.node(victim))
                } else {
                    cell.nr_combine_crash_after_append(&rack.node(victim))
                };
                if let Err(e) = armed {
                    violations.push(format!("step {step}: combiner claim failed: {e}"));
                    return format!("mid-batch stage failed: claim on n{victim}: {e}");
                }
                rack.faults().crash_node(NodeId(victim), u64::from(step));
                live[victim] = false;
                let rescuer = live.iter().position(|&a| a).expect("min_live_nodes >= 2");
                if let Err(e) = orch.handle_node_crash(&rack.node(rescuer), NodeId(victim)) {
                    violations.push(format!("step {step}: mid-batch recovery failed: {e}"));
                    return format!("mid-batch recovery FAILED: {e}");
                }
                reelections += 1;
                // Every stranded publication must have landed exactly
                // once; the poll hands back its committed index.
                for &p in &publishers {
                    match cell.nr_poll(&rack.node(p)) {
                        Ok(Some(idx)) => {
                            model.push((idx, (p as u32, step)));
                            ops_committed += 1;
                        }
                        other => violations.push(format!(
                            "step {step}: op from n{p} lost across combiner crash: {other:?}"
                        )),
                    }
                }
                let seen = cell
                    .read(&rack.node(rescuer), |l| l.entries.len())
                    .expect("read");
                if seen != model.len() {
                    violations.push(format!(
                        "step {step}: {seen} entries vs {} committed (lost or double-applied)",
                        model.len()
                    ));
                }
                rack.faults().restart_node(NodeId(victim), u64::from(step));
                live[victim] = true;
                format!(
                    "combiner n{victim} died mid-batch ({}); n{rescuer} re-elected, \
                     {} stranded ops recovered, {seen} total",
                    if before_cas {
                        "before tail CAS"
                    } else {
                        "after append"
                    },
                    publishers.len()
                )
            } else {
                // Clean round: round-robin publisher, a different live
                // combiner drains, the publisher polls its index.
                let Some(writer) = (step as usize..step as usize + n)
                    .map(|k| k % n)
                    .find(|&k| live[k])
                else {
                    ops_skipped += 1;
                    return "publish skipped: no live writer".to_string();
                };
                if let Err(e) = cell.nr_publish(&rack.node(writer), &sync_op(writer, step)) {
                    ops_skipped += 1;
                    return format!("publish degraded on n{writer}: {e}");
                }
                let combiner = (0..n)
                    .rev()
                    .find(|&k| live[k] && k != writer)
                    .unwrap_or(writer);
                match cell.nr_combine(&rack.node(combiner)) {
                    Ok(combined) => match cell.nr_poll(&rack.node(writer)) {
                        Ok(Some(idx)) => {
                            model.push((idx, (writer as u32, step)));
                            ops_committed += 1;
                            format!(
                                "op {idx} published from n{writer}, combined ({combined}) by \
                                 n{combiner}"
                            )
                        }
                        other => {
                            violations.push(format!(
                                "step {step}: publication from n{writer} unacknowledged: {other:?}"
                            ));
                            format!("publication from n{writer} UNACKNOWLEDGED")
                        }
                    },
                    Err(e) => {
                        violations.push(format!("step {step}: combine failed on n{combiner}: {e}"));
                        format!("combine FAILED on n{combiner}: {e}")
                    }
                }
            }
        }
        StormOp::CrashNode { node } => {
            let node_idx = node.0;
            live[node_idx] = false;
            let rescuer = live.iter().position(|&a| a).expect("min_live_nodes >= 2");
            match orch.handle_node_crash(&rack.node(rescuer), node) {
                Ok(_) => format!("crash n{node_idx}: slots drained by n{rescuer}"),
                Err(e) => {
                    violations.push(format!("step {step}: sync recovery failed: {e}"));
                    format!("crash n{node_idx}: sync recovery FAILED: {e}")
                }
            }
        }
        StormOp::RestartNode { node } => {
            live[node.0] = true;
            format!("restart n{}: rejoins with a cold replica", node.0)
        }
        StormOp::DelayedWriteback { .. }
        | StormOp::FailLink { .. }
        | StormOp::RestoreLink { .. }
        | StormOp::PoisonWord { .. } => "unused op class (weight 0)".to_string(),
    });

    // --- Invariant 1: no committed update lost or double-applied, in
    // commit order.
    model.sort_unstable_by_key(|&(idx, _)| idx);
    let expected: Vec<(u32, u32)> = model.iter().map(|&(_, op)| op).collect();
    let n0 = rack.node(0);
    let final_entries = cell.read(&n0, |l| l.entries.clone()).expect("final read");
    if final_entries != expected {
        violations.push(format!(
            "committed ops lost, duplicated, or reordered: cell has {} entries, model {}",
            final_entries.len(),
            expected.len()
        ));
    }

    // --- Invariant 2: replaying the log from scratch reconstructs the
    // identical state.
    let (replayed_state, replayed) = cell.replay(&n0, SyncLedger::default()).expect("log replay");
    if replayed_state.entries != expected {
        violations.push(format!(
            "log replay diverged: {} replayed entries vs {} committed",
            replayed_state.entries.len(),
            expected.len()
        ));
    }

    // --- Invariant 3: liveness through the healed combiner path.
    for i in 0..n {
        if !rack.is_alive(NodeId(i)) {
            violations.push(format!("node {i} still down after heal"));
        }
    }
    match cell.update(&n0, &sync_op(0, steps)) {
        Ok(_) => {
            let len = cell.read(&n0, |l| l.entries.len()).expect("post-heal read");
            if len as u64 != ops_committed + 1 {
                violations.push(format!(
                    "post-heal update invisible: {len} entries vs {} expected",
                    ops_committed + 1
                ));
            }
        }
        Err(e) => violations.push(format!("post-heal update failed: {e}")),
    }

    SyncSurvivalReport {
        seed,
        counts: report.counts,
        events: report.events.len(),
        ops_committed,
        ops_skipped,
        reelections,
        replayed,
        violations,
        log_text: report.log_text(),
        metrics: rack.metrics_report(),
    }
}

/// Images in the chunk-store campaign's catalogue.
const STORE_IMAGES: usize = 3;
/// Pages per campaign image.
const STORE_IMAGE_PAGES: u64 = 64;
/// Layers per campaign image (adjacent images share half by content).
const STORE_IMAGE_LAYERS: usize = 4;
/// Max missing hashes one claim step grabs.
const STORE_CLAIM_LIMIT: usize = 24;

/// Outcome of one chunk-store storm campaign.
#[derive(Debug, Clone)]
pub struct StoreSurvivalReport {
    /// The seed the campaign ran from.
    pub seed: u64,
    /// Per-class storm operation counts.
    pub counts: StormCounts,
    /// Total executed steps (heal steps included).
    pub events: usize,
    /// Fetch claims won across the campaign.
    pub claims_won: u64,
    /// Chunks downloaded and committed present.
    pub committed: u64,
    /// In-flight claims aborted by crash recovery.
    pub aborted: u64,
    /// Chunks found already resident by claim steps.
    pub rack_hits: u64,
    /// Workload steps skipped (writer down, nothing to do).
    pub skipped: u64,
    /// Invariant violations (empty on a surviving campaign).
    pub violations: Vec<String>,
    /// The byte-identical replay artifact.
    pub log_text: String,
    /// The merged rack metrics after the campaign.
    pub metrics: rack_sim::RackReport,
}

impl StoreSurvivalReport {
    /// Whether every invariant held.
    pub fn survived(&self) -> bool {
        self.violations.is_empty()
    }

    /// One summary row for the survival table.
    pub fn row(&self) -> String {
        format!(
            "{:#018x} | {:>5} | {:>2}/{:<2} | {:>4}/{:<4} | {:>3} | {:>4} | {:>4} | {}",
            self.seed,
            self.events,
            self.counts.crashes,
            self.counts.restarts,
            self.claims_won,
            self.committed,
            self.aborted,
            self.rack_hits,
            self.skipped,
            if self.survived() {
                "ok".to_string()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }

    /// Header matching [`StoreSurvivalReport::row`].
    pub fn header() -> &'static str {
        "seed               | steps | cr/rs | clm/cmt | abt | hits | skip | verdict"
    }
}

/// Run one seeded chunk-store storm campaign: live nodes cold-start
/// overlapping container images through the content-addressed store's
/// two-phase `claim`/`complete` protocol while the storm crashes and
/// restarts nodes underneath them — including fetchers *between* claim
/// and commit, the mid-fetch window. Crashes route through
/// [`RecoveryOrchestrator::handle_node_crash`] with the store attached
/// as a [`flacdk::sync::SyncRecover`], so a dead fetcher's in-flight
/// claims are aborted by an `ABORT` op in the shared log and survivors
/// re-claim the work.
///
/// Invariants checked after the heal:
///
/// 1. **No duplicate downloads** — every chunk that ended up resident
///    was shipped by its backend shard exactly once, rack-wide, no
///    matter how many claims were aborted and re-taken.
/// 2. **Index consistent** — no `Fetching` entry survives the heal,
///    every catalogue chunk is present, and the deduper holds exactly
///    one frame per unique chunk.
/// 3. **Replay-verified** — replaying the index's committed op log from
///    scratch reproduces the identical present map (the campaign never
///    calls `gc()` so the whole history stays replayable).
///
/// Fully deterministic: the same `(seed, steps)` produces a
/// byte-identical [`StoreSurvivalReport::log_text`].
///
/// # Panics
///
/// Panics if the rack cannot boot — a harness bug, not an outcome.
#[allow(clippy::too_many_lines)]
pub fn run_store_campaign(seed: u64, steps: u32) -> StoreSurvivalReport {
    use flac_store::{BackendConfig, ChunkStore, ShardedBackends, StoreConfig};
    use flacos_mem::dedup::PageDeduper;
    use serverless::image::ContainerImage;
    use std::collections::HashSet;
    use std::sync::Arc;

    let rack = rack_sim::Rack::new(
        RackConfig::n_node(NODES)
            .with_global_mem(64 << 20)
            .with_seed(seed ^ 0xF1AC),
    );
    let n = rack.node_count();

    // Overlapping catalogue: image k's layer seeds are 100+2k .. 100+2k+4,
    // so adjacent images share two of four layers by content.
    let images: Vec<ContainerImage> = (0..STORE_IMAGES)
        .map(|k| {
            ContainerImage::synthetic(
                &format!("img-{k}"),
                STORE_IMAGE_PAGES,
                STORE_IMAGE_LAYERS,
                100 + 2 * k as u64,
            )
        })
        .collect();
    let backends = Arc::new(ShardedBackends::uniform(
        4,
        BackendConfig {
            bandwidth_bytes_per_sec: 500_000_000,
            per_request_ns: 100_000,
            per_chunk_ns: 100,
        },
    ));
    let mut catalogue: HashSet<u64> = HashSet::new();
    for img in &images {
        img.publish(&backends);
        catalogue.extend(img.chunk_hashes());
    }
    let dedup = Arc::new(PageDeduper::new(FrameAllocator::new(rack.global().clone())));
    // A generously sized log and no gc() calls: the whole campaign must
    // stay replayable for invariant 3.
    let store = ChunkStore::alloc(
        rack.global(),
        backends,
        dedup,
        StoreConfig::new(n)
            .with_log(2048, 1024)
            .with_claim_batch(STORE_CLAIM_LIMIT),
    )
    .expect("store");
    let mut orch = RecoveryOrchestrator::new();
    orch.attach_sync(store.clone());

    let mut live = vec![true; n];
    // Claims won but not yet completed: (node, won hashes). The window
    // between the two phases is exactly where a crash hurts.
    let mut pending: Vec<(usize, Vec<u64>)> = Vec::new();
    let mut claims_won = 0u64;
    let mut committed = 0u64;
    let mut rack_hits = 0u64;
    let mut skipped = 0u64;
    let mut violations: Vec<String> = Vec::new();

    let config = StormConfig {
        steps,
        min_live_nodes: 2,
        link_fail_weight: 0,
        link_restore_weight: 0,
        poison_weight: 0,
        delayed_writeback_weight: 0,
        poison_region: None,
        ..StormConfig::default()
    };
    let campaign = StormCampaign::new(seed, config);
    let report = campaign.run(&rack, |step, op, rack| match *op {
        StormOp::Workload => {
            let Some(worker) = (step as usize..step as usize + n)
                .map(|k| k % n)
                .find(|&k| live[k])
            else {
                skipped += 1;
                return "store step skipped: no live worker".to_string();
            };
            let ctx = rack.node(worker);
            // Finish this node's oldest pending fetch first (the
            // single-flight discipline: one node never claims more
            // while sitting on won-but-unfetched work).
            if let Some(i) = pending.iter().position(|&(node, _)| node == worker) {
                let (_, won) = pending.remove(i);
                return match store.complete(&ctx, &won) {
                    Ok(done) => {
                        committed += done.committed;
                        if done.lost.is_empty() {
                            format!("n{worker} completed {} chunk(s)", done.committed)
                        } else {
                            format!(
                                "n{worker} completed {} chunk(s), lost {} to recovery",
                                done.committed,
                                done.lost.len()
                            )
                        }
                    }
                    Err(e) => {
                        violations.push(format!("step {step}: complete failed on n{worker}: {e}"));
                        format!("n{worker} complete FAILED: {e}")
                    }
                };
            }
            // Otherwise claim a slice of the step's image. Hashes other
            // nodes hold in `Fetching` stay theirs (single-flight);
            // this node only takes what is absent.
            let img = &images[step as usize % STORE_IMAGES];
            let all = img.chunk_hashes();
            let off = (step as usize * STORE_CLAIM_LIMIT) % all.len().max(1);
            let hashes: Vec<u64> = all
                .iter()
                .cycle()
                .skip(off)
                .take(STORE_CLAIM_LIMIT)
                .copied()
                .collect();
            match store.claim(&ctx, &hashes) {
                Ok(outcome) => {
                    claims_won += outcome.won.len() as u64;
                    rack_hits += outcome.present.len() as u64;
                    let msg = format!(
                        "n{worker} claim on img-{}: won {}, present {}, in-flight {}",
                        step as usize % STORE_IMAGES,
                        outcome.won.len(),
                        outcome.present.len(),
                        outcome.in_flight.len()
                    );
                    if !outcome.won.is_empty() {
                        pending.push((worker, outcome.won));
                    }
                    msg
                }
                Err(e) => {
                    violations.push(format!("step {step}: claim failed on n{worker}: {e}"));
                    format!("n{worker} claim FAILED: {e}")
                }
            }
        }
        StormOp::CrashNode { node } => {
            let node_idx = node.0;
            live[node_idx] = false;
            // The dead fetcher's won-but-unfetched work dies with it;
            // recovery aborts its index claims so survivors re-claim.
            let before = pending.len();
            pending.retain(|&(owner, _)| owner != node_idx);
            let dropped = before - pending.len();
            let rescuer = live.iter().position(|&a| a).expect("min_live_nodes >= 2");
            match orch.handle_node_crash(&rack.node(rescuer), node) {
                Ok(_) => format!(
                    "crash n{node_idx} mid-fetch: {dropped} pending batch(es) dropped, \
                     claims aborted by n{rescuer}"
                ),
                Err(e) => {
                    violations.push(format!("step {step}: store recovery failed: {e}"));
                    format!("crash n{node_idx}: store recovery FAILED: {e}")
                }
            }
        }
        StormOp::RestartNode { node } => {
            live[node.0] = true;
            format!("restart n{}: rejoins with no claims", node.0)
        }
        StormOp::DelayedWriteback { .. }
        | StormOp::FailLink { .. }
        | StormOp::RestoreLink { .. }
        | StormOp::PoisonWord { .. } => "unused op class (weight 0)".to_string(),
    });

    // --- Post-heal: resolve every still-pending claim, then a survivor
    // finishes all the starts (every claim is now either completed or
    // owned by a live node that just completed it, so ensure cannot
    // block on a dead fetcher).
    let n0 = rack.node(0);
    while let Some((node, won)) = pending.pop() {
        match store.complete(&rack.node(node), &won) {
            Ok(done) => committed += done.committed,
            Err(e) => violations.push(format!("post-heal complete on n{node} failed: {e}")),
        }
    }
    for img in &images {
        match store.ensure(&n0, &img.chunk_hashes()) {
            Ok(rep) => committed += rep.fetched,
            Err(e) => violations.push(format!("post-heal ensure failed: {e}")),
        }
    }

    // --- Invariant 1: no duplicate downloads, rack-wide.
    for &h in &catalogue {
        let fetches = store.backends().fetch_count(h);
        if fetches != 1 {
            violations.push(format!(
                "chunk {h:#018x} shipped {fetches} times — single-flight broken"
            ));
        }
    }

    // --- Invariant 2: index consistent after the heal.
    let (fetching, present) = store.peek_index(|s| (s.fetching_count(), s.present_count()));
    if fetching != 0 {
        violations.push(format!("{fetching} Fetching entries survived the heal"));
    }
    if present != catalogue.len() {
        violations.push(format!(
            "index holds {present} present chunks, catalogue has {}",
            catalogue.len()
        ));
    }
    let unique_frames = store.dedup().stats().unique_frames;
    if unique_frames != catalogue.len() as u64 {
        violations.push(format!(
            "deduper holds {unique_frames} frames for {} unique chunks",
            catalogue.len()
        ));
    }

    // --- Invariant 3: log replay reproduces the identical present map.
    match store.replay_matches(&n0) {
        Ok(true) => {}
        Ok(false) => violations.push("log replay diverged from the live index".into()),
        Err(e) => violations.push(format!("log replay failed: {e}")),
    }

    let stats = store.stats();
    StoreSurvivalReport {
        seed,
        counts: report.counts,
        events: report.events.len(),
        claims_won,
        committed,
        aborted: stats.claims_aborted,
        rack_hits,
        skipped,
        violations,
        log_text: report.log_text(),
        metrics: rack.metrics_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_survives() {
        let r = run_campaign(0xF1AC_5708, 60);
        assert!(r.survived(), "violations: {:?}", r.violations);
        assert!(r.fs_commits > 0, "workload actually committed writes");
        assert!(r.counts.crashes > 0, "storm actually crashed nodes");
    }

    #[test]
    fn replay_is_byte_identical() {
        let a = run_campaign(42, 60);
        let b = run_campaign(42, 60);
        assert_eq!(a.log_text, b.log_text, "same seed, same bytes");
        assert_ne!(
            a.log_text,
            run_campaign(43, 60).log_text,
            "different seeds diverge"
        );
    }

    #[test]
    fn acked_rpcs_execute_exactly_once() {
        let r = run_campaign(0xD15EA5E, 80);
        assert!(r.survived(), "violations: {:?}", r.violations);
        assert!(r.rpc_executed >= r.rpc_acked);
        assert!(r.rpc_executed <= r.rpc_issued);
    }

    #[test]
    fn tiering_campaign_survives_and_migrates() {
        let r = run_tiering_campaign(0xF1AC_71E4, 60);
        assert!(r.survived(), "violations: {:?}", r.violations);
        assert!(r.promotions > 0, "migrations actually committed");
        assert!(r.writes_committed > 0, "workload actually wrote pages");
        assert!(r.counts.crashes > 0, "storm actually crashed nodes");
    }

    #[test]
    fn tiering_replay_is_byte_identical() {
        let a = run_tiering_campaign(7, 60);
        let b = run_tiering_campaign(7, 60);
        assert_eq!(a.log_text, b.log_text, "same seed, same bytes");
        assert_ne!(
            a.log_text,
            run_tiering_campaign(8, 60).log_text,
            "different seeds diverge"
        );
    }

    #[test]
    fn sync_campaign_survives_and_replays() {
        let r = run_sync_campaign(0xF1AC_5C11, 60);
        assert!(r.survived(), "violations: {:?}", r.violations);
        assert!(r.ops_committed > 0, "workload actually committed updates");
        assert_eq!(r.replayed, r.ops_committed, "log covers every commit");
        assert!(r.counts.crashes > 0, "storm actually crashed nodes");
    }

    #[test]
    fn sync_replay_is_byte_identical() {
        let a = run_sync_campaign(11, 60);
        let b = run_sync_campaign(11, 60);
        assert_eq!(a.log_text, b.log_text, "same seed, same bytes");
        assert_ne!(
            a.log_text,
            run_sync_campaign(12, 60).log_text,
            "different seeds diverge"
        );
    }

    #[test]
    fn some_seed_kills_the_delegation_owner_mid_storm() {
        // The headline invariant — owner crash mid-delegation loses no
        // committed op — must actually fire across a small seed sweep.
        let mut reelections = 0u64;
        for seed in 1..=6 {
            let r = run_sync_campaign(seed, 60);
            assert!(r.survived(), "seed {seed} violations: {:?}", r.violations);
            reelections += r.reelections;
        }
        assert!(reelections > 0, "no campaign crashed the delegation owner");
    }

    #[test]
    fn nr_sync_campaign_survives_combiner_deaths_mid_batch() {
        let r = run_nr_sync_campaign(0xF1AC_5C11, 60);
        assert!(r.survived(), "violations: {:?}", r.violations);
        assert!(r.ops_committed > 0, "workload actually committed updates");
        assert_eq!(r.replayed, r.ops_committed, "log covers every commit");
        assert!(
            r.reelections > 0,
            "no combiner was killed mid-batch; the campaign must exercise both fatal windows"
        );
    }

    #[test]
    fn nr_sync_replay_is_byte_identical() {
        let a = run_nr_sync_campaign(31, 60);
        let b = run_nr_sync_campaign(31, 60);
        assert_eq!(a.log_text, b.log_text, "same seed, same bytes");
        assert_ne!(
            a.log_text,
            run_nr_sync_campaign(32, 60).log_text,
            "different seeds diverge"
        );
    }

    #[test]
    fn nr_seed_sweep_kills_combiners_in_both_windows() {
        // Both fatal windows — before the tail CAS and after the append
        // — must fire across a small seed sweep, and no published op
        // may be lost or double-applied in either.
        let mut mid_batch = 0u64;
        for seed in 1..=6 {
            let r = run_nr_sync_campaign(seed, 60);
            assert!(r.survived(), "seed {seed} violations: {:?}", r.violations);
            mid_batch += r.reelections;
        }
        assert!(mid_batch >= 2, "mid-batch combiner deaths barely fired");
    }

    #[test]
    fn some_seed_crashes_the_migrating_node_mid_flight() {
        // The crash-consistency path (survivor abort, old copy
        // authoritative) must actually fire across a small seed sweep.
        let mut aborts = 0u64;
        for seed in 1..=6 {
            let r = run_tiering_campaign(seed, 60);
            assert!(r.survived(), "seed {seed} violations: {:?}", r.violations);
            aborts += r.aborts;
        }
        assert!(aborts > 0, "no campaign crashed n0 mid-migration");
    }

    #[test]
    fn store_campaign_survives_without_duplicate_downloads() {
        let r = run_store_campaign(0xF1AC_5704, 60);
        assert!(r.survived(), "violations: {:?}", r.violations);
        assert!(r.claims_won > 0, "workload actually claimed chunks");
        assert!(r.committed > 0, "workload actually committed chunks");
        assert!(r.counts.crashes > 0, "storm actually crashed nodes");
    }

    #[test]
    fn store_replay_is_byte_identical() {
        let a = run_store_campaign(21, 60);
        let b = run_store_campaign(21, 60);
        assert_eq!(a.log_text, b.log_text, "same seed, same bytes");
        assert_ne!(
            a.log_text,
            run_store_campaign(22, 60).log_text,
            "different seeds diverge"
        );
    }

    #[test]
    fn some_seed_crashes_a_claim_holder_mid_fetch() {
        // The headline invariant — a fetcher crash between claim and
        // commit triggers recovery aborts, yet no chunk is ever shipped
        // twice — must actually fire across a small seed sweep.
        let mut aborted = 0u64;
        for seed in 1..=6 {
            let r = run_store_campaign(seed, 60);
            assert!(r.survived(), "seed {seed} violations: {:?}", r.violations);
            aborted += r.aborted;
        }
        assert!(aborted > 0, "no campaign crashed a claim holder mid-fetch");
    }
}
