//! `flac-sync-scale` — writer-scaling gate for the node-replicated
//! `SyncCell` tier (ablation A10).
//!
//! §3.2's coordination story ends with a write-side question: once
//! writers spread across nodes, does the flat-combined node-replicated
//! log actually beat per-op delegation? This bench sweeps writer count
//! × read ratio over one shared cell under both backends and measures
//! simulated nanoseconds per operation.
//!
//! The write round models concurrent arrival, which a serial driver
//! cannot produce through `update()` alone: each writer publishes its
//! pending ops as **one** batch publication
//! ([`SyncCell::nr_publish_batch`] — one flush plus one fabric atomic
//! for [`OPS_PER_PUB`] ops), the round's combiner drains every slot and
//! commits the whole round with one log-tail CAS
//! ([`SyncCell::nr_combine`]), and the publishers poll their slots for
//! the acknowledgement ([`SyncCell::nr_poll`]). The delegated arm
//! issues the same ops through `update()` one at a time — delegation
//! has no batching story; every remote op pays its own request/reply
//! messages and log append.
//!
//! Reads follow each backend's natural idiom for a round of reads
//! against the same snapshot: the node-replicated reader catches its
//! replica up **once** ([`SyncCell::sync_replica`]) and serves the
//! round's reads from it ([`SyncCell::read_local`]); delegation has no
//! per-node replica, so every read pays the fabric
//! ([`SyncCell::read`]).
//!
//! A separate probe pins the read story: after an explicit
//! [`SyncCell::sync_replica`], node-local reads
//! ([`SyncCell::read_local`]) must perform **zero** fabric operations —
//! verified against the rack's hardware counters, not the cost model.
//!
//! Everything is simulated time on a seedless deterministic driver, so
//! every point is re-run and must reproduce exactly (`parity`).

use flacdk::sync::{SyncCell, SyncCellConfig, SyncPolicy, SyncState};
use flacdk::wire::{Decoder, Encoder};
use rack_sim::{Rack, RackConfig};
use std::sync::Arc;

/// Nodes in the simulated rack.
pub const NODES: usize = 8;
/// Writer counts swept (1 is reference only; the gate binds at ≥ 2).
pub const WRITER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Read percentages swept.
pub const READ_PCTS: [u32; 3] = [0, 50, 90];
/// The writer counts where the gate demands strict wins (§gate).
pub const MULTI_WRITER: [usize; 3] = [2, 4, 8];
/// Ops each writer batches into one publication per round (sized to
/// the 48-byte log entries' publication slots).
pub const OPS_PER_PUB: usize = 2;

/// Sweep dimensions and sizes.
#[derive(Debug, Clone, Copy)]
pub struct SyncScaleConfig {
    /// Write rounds per point (each round = one [`OPS_PER_PUB`]-op
    /// publication per writer, plus the ratio's reads).
    pub rounds: usize,
    /// Marks the report as a smoke run.
    pub quick: bool,
}

impl SyncScaleConfig {
    /// CI smoke: enough rounds to exercise every path, ~seconds.
    pub fn quick() -> Self {
        SyncScaleConfig {
            rounds: 40,
            quick: true,
        }
    }

    /// The committed-report configuration.
    pub fn full() -> Self {
        SyncScaleConfig {
            rounds: 400,
            quick: false,
        }
    }
}

/// The shared state under test: per-node op tallies.
#[derive(Debug, Default, Clone)]
struct Tally {
    counts: Vec<u64>,
    total: u64,
}

impl SyncState for Tally {
    fn apply(&mut self, op: &[u8]) {
        let mut d = Decoder::new(op);
        let (Ok(node), Ok(amount)) = (d.u32(), d.u64()) else {
            return;
        };
        if let Some(slot) = self.counts.get_mut(node as usize) {
            *slot += amount;
            self.total += amount;
        }
    }
}

fn tally_op(node: usize, amount: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u32(node as u32).put_u64(amount);
    e.into_vec()
}

/// One measured cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncPoint {
    /// `"delegated"` or `"node_replicated"`.
    pub policy: String,
    /// Concurrent writers this point models.
    pub writers: usize,
    /// Percentage of operations that are reads.
    pub read_pct: u32,
    /// Total operations measured (writes + reads).
    pub ops: u64,
    /// Simulated nanoseconds across all operations.
    pub total_ns: u64,
    /// The same workload re-run from scratch (must equal `total_ns`).
    pub total_ns_rerun: u64,
    /// `total_ns / ops`.
    pub avg_ns_per_op: u64,
}

impl SyncPoint {
    /// Seeded-rerun reproducibility.
    pub fn parity(&self) -> bool {
        self.total_ns == self.total_ns_rerun
    }
}

fn alloc_cell(rack: &Rack, policy: SyncPolicy) -> Arc<SyncCell<Tally>> {
    SyncCell::alloc(
        rack.global(),
        "sync_scale",
        SyncCellConfig::new(NODES, policy).with_log(8192, 48),
        Tally {
            counts: vec![0; NODES],
            total: 0,
        },
    )
    .expect("cell alloc")
}

/// Reads interleaved per round for a given per-round write count and
/// read ratio.
fn reads_per_round(write_ops: usize, read_pct: u32) -> usize {
    if read_pct >= 100 {
        return write_ops * 16;
    }
    (write_ops * read_pct as usize) / (100 - read_pct as usize)
}

/// Drive one (policy, writers, read_pct) point and return
/// `(ops, total simulated ns)`.
fn run_point(policy: SyncPolicy, writers: usize, read_pct: u32, rounds: usize) -> (u64, u64) {
    let rack = Rack::new(RackConfig::n_node(NODES));
    let cell = alloc_cell(&rack, policy);
    let mut ops = 0u64;
    let mut total_ns = 0u64;
    let write_ops = writers * OPS_PER_PUB;
    let reads = reads_per_round(write_ops, read_pct);
    for round in 0..rounds {
        if policy == SyncPolicy::NodeReplicated {
            // Concurrent arrival: every writer publishes its round's
            // ops as one batch publication, node 0 combines the lot
            // with one log-tail CAS, and the publishers poll their
            // acknowledgement. Publish + poll are charged to the
            // publisher.
            for w in 0..writers {
                let node = rack.node(w);
                let t0 = node.clock().now();
                let batch = [tally_op(w, 1), tally_op(w, 1)];
                let refs: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();
                cell.nr_publish_batch(&node, &refs).expect("publish");
                ops += OPS_PER_PUB as u64;
                total_ns += node.clock().now() - t0;
            }
            let combiner = rack.node(0);
            let t0 = combiner.clock().now();
            let combined = cell.nr_combine(&combiner).expect("combine");
            assert_eq!(combined, write_ops as u64, "one combine drains the round");
            total_ns += combiner.clock().now() - t0;
            for w in 0..writers {
                let node = rack.node(w);
                let t0 = node.clock().now();
                let landed = cell.nr_poll(&node).expect("poll");
                assert!(landed.is_some(), "combiner consumed every publication");
                total_ns += node.clock().now() - t0;
            }
        } else {
            for w in 0..writers {
                let node = rack.node(w);
                for _ in 0..OPS_PER_PUB {
                    let t0 = node.clock().now();
                    cell.update(&node, &tally_op(w, 1)).expect("update");
                    ops += 1;
                    total_ns += node.clock().now() - t0;
                }
            }
        }
        // The round's reads all land on one reader node and see the
        // round's committed writes.
        let expect = ((round + 1) * write_ops) as u64;
        let reader = rack.node(NODES - 1);
        if policy == SyncPolicy::NodeReplicated && reads > 0 {
            let t0 = reader.clock().now();
            cell.sync_replica(&reader).expect("sync replica");
            for _ in 0..reads {
                let got = cell.read_local(&reader, |t| t.total).expect("read");
                assert_eq!(got, expect, "synced replica serves the round's reads");
                ops += 1;
            }
            total_ns += reader.clock().now() - t0;
        } else {
            for _ in 0..reads {
                let t0 = reader.clock().now();
                let got = cell.read(&reader, |t| t.total).expect("read");
                assert_eq!(got, expect, "linearizable read");
                ops += 1;
                total_ns += reader.clock().now() - t0;
            }
        }
    }
    // Both arms must agree on the final state — same committed history.
    let expect = (rounds * write_ops) as u64;
    assert_eq!(
        cell.read(&rack.node(0), |t| t.total).expect("final read"),
        expect,
        "all writes committed"
    );
    (ops, total_ns)
}

/// Run the full sweep; every point is driven twice for parity.
pub fn run_sweep(cfg: SyncScaleConfig) -> Vec<SyncPoint> {
    let mut out = Vec::new();
    for &writers in &WRITER_COUNTS {
        for &read_pct in &READ_PCTS {
            for (policy, label) in [
                (SyncPolicy::Delegated, "delegated"),
                (SyncPolicy::NodeReplicated, "node_replicated"),
            ] {
                let (ops, total_ns) = run_point(policy, writers, read_pct, cfg.rounds);
                let (_, total_ns_rerun) = run_point(policy, writers, read_pct, cfg.rounds);
                out.push(SyncPoint {
                    policy: label.to_string(),
                    writers,
                    read_pct,
                    ops,
                    total_ns,
                    total_ns_rerun,
                    avg_ns_per_op: total_ns / ops.max(1),
                });
            }
        }
    }
    out
}

/// The zero-fabric-read probe: warm a node-replicated cell, catch one
/// node's replica up, then count the **hardware** fabric operations a
/// burst of [`SyncCell::read_local`] calls performs. Returns that count
/// (the gate requires 0).
pub fn run_replica_probe() -> u64 {
    let rack = Rack::new(RackConfig::n_node(NODES));
    let cell = alloc_cell(&rack, SyncPolicy::NodeReplicated);
    for i in 0..24usize {
        cell.update(&rack.node(i % 4), &tally_op(i % 4, 1))
            .expect("warm write");
    }
    let reader = rack.node(NODES - 1);
    cell.sync_replica(&reader).expect("sync replica");
    // First read_local materializes nothing further; measure a burst.
    cell.read_local(&reader, |t| t.total).expect("warm read");
    let before = reader.stats().snapshot();
    for _ in 0..64 {
        let total = cell.read_local(&reader, |t| t.total).expect("read");
        assert_eq!(total, 24);
    }
    let after = reader.stats().snapshot();
    (after.global_reads - before.global_reads)
        + (after.global_writes - before.global_writes)
        + (after.global_atomics - before.global_atomics)
        + (after.messages_sent - before.messages_sent)
}

/// NUMA combiner-placement probe: the same round-robin write workload
/// on a flat rack versus a two-rack pod with an interleaved memory
/// home. Returns `(flat, pod)` totals of the
/// `sync/nr_combiner_remote_claims` counter — the flat rack has no
/// distance classes (every claim is "near", so always 0), while the
/// pod counts each combine won by a node away from the op log's home
/// leaf, the traffic the claim tie-break steers toward the home.
pub fn run_numa_probe(rounds: usize) -> (u64, u64) {
    let mut out = [0u64; 2];
    for (slot, rack) in [
        Rack::new(RackConfig::n_node(NODES)),
        Rack::new(RackConfig::pod(NODES / 2, 2)),
    ]
    .into_iter()
    .enumerate()
    {
        let cell = alloc_cell(&rack, SyncPolicy::NodeReplicated);
        for _ in 0..rounds {
            for w in 0..NODES {
                cell.update(&rack.node(w), &tally_op(w, 1)).expect("update");
            }
        }
        out[slot] = (0..NODES)
            .map(|n| {
                rack.node(n)
                    .stats()
                    .snapshot()
                    .subsystems
                    .iter()
                    .find(|c| c.subsystem == "sync" && c.name == "nr_combiner_remote_claims")
                    .map_or(0, |c| c.value)
            })
            .sum::<u64>();
    }
    (out[0], out[1])
}

/// Deterministic invariants enforced by `--gate` and re-enforced by
/// `--check` on the committed report:
///
/// * rerun parity at every point;
/// * node-replicated ≤ delegated ns/op at **every** multi-writer point
///   (writers ≥ 2, all read ratios);
/// * node-replicated strictly faster on the pure-write sweep at ≥ 2 of
///   the {2, 4, 8}-writer points;
/// * the replica-hit read path performed exactly 0 fabric operations.
pub fn gate_failures(points: &[SyncPoint], replica_hit_fabric_ops: u64) -> Vec<String> {
    let mut failures = Vec::new();
    for p in points {
        if !p.parity() {
            failures.push(format!(
                "rerun divergence at ({}, writers={}, reads={}%): {} vs {} ns",
                p.policy, p.writers, p.read_pct, p.total_ns, p.total_ns_rerun
            ));
        }
    }
    let find = |policy: &str, writers: usize, read_pct: u32| {
        points
            .iter()
            .find(|p| p.policy == policy && p.writers == writers && p.read_pct == read_pct)
    };
    let mut strict_wins = 0;
    for &writers in &MULTI_WRITER {
        for &read_pct in &READ_PCTS {
            let (Some(nr), Some(del)) = (
                find("node_replicated", writers, read_pct),
                find("delegated", writers, read_pct),
            ) else {
                failures.push(format!(
                    "missing (writers={writers}, reads={read_pct}%) pair"
                ));
                continue;
            };
            if nr.avg_ns_per_op > del.avg_ns_per_op {
                failures.push(format!(
                    "node_replicated loses at writers={writers}, reads={read_pct}%: \
                     {} vs {} ns/op",
                    nr.avg_ns_per_op, del.avg_ns_per_op
                ));
            }
            if read_pct == 0 && nr.avg_ns_per_op < del.avg_ns_per_op {
                strict_wins += 1;
            }
        }
    }
    if strict_wins < 2 {
        failures.push(format!(
            "node_replicated must strictly win ≥ 2 of the pure-write \
             {{2,4,8}}-writer points; won {strict_wins}"
        ));
    }
    if replica_hit_fabric_ops != 0 {
        failures.push(format!(
            "replica-hit reads performed {replica_hit_fabric_ops} fabric ops; must be 0"
        ));
    }
    failures
}

/// Render the committed JSON report (one `results[]` object per line —
/// the shape [`crate::report`] re-reads exactly).
pub fn to_json(cfg: SyncScaleConfig, points: &[SyncPoint], replica_hit_fabric_ops: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"sync-scale\",\n");
    out.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    out.push_str(&format!("  \"nodes\": {NODES},\n"));
    out.push_str(&format!("  \"rounds\": {},\n", cfg.rounds));
    out.push_str(&format!(
        "  \"replica_hit_fabric_ops\": {replica_hit_fabric_ops},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"writers\": {}, \"read_pct\": {}, \"ops\": {}, \
             \"total_ns\": {}, \"total_ns_rerun\": {}, \"avg_ns_per_op\": {}}}{}\n",
            p.policy,
            p.writers,
            p.read_pct,
            p.ops,
            p.total_ns,
            p.total_ns_rerun,
            p.avg_ns_per_op,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// A `BENCH_sync.json` report re-read from disk.
#[derive(Debug, Clone)]
pub struct ParsedSyncReport {
    /// Whether the report came from a `--quick` smoke run.
    pub quick: bool,
    /// The committed replica-hit fabric-op count.
    pub replica_hit_fabric_ops: u64,
    /// Every measurement point, in report order.
    pub points: Vec<SyncPoint>,
}

/// Re-read a report produced by [`to_json`], via the shared
/// [`crate::report`] one-object-per-line extraction.
///
/// # Errors
///
/// Returns a description of the first malformed line or missing field.
pub fn parse_report(json: &str) -> Result<ParsedSyncReport, String> {
    let quick = crate::report::parse_quick(json)?;
    let replica_hit_fabric_ops = crate::report::object_with(json, "replica_hit_fabric_ops")?
        .u64_field("replica_hit_fabric_ops")?;
    let mut points = Vec::new();
    for obj in crate::report::objects_with(json, "policy") {
        points.push(SyncPoint {
            policy: obj.str_field("policy")?,
            writers: obj.usize_field("writers")?,
            read_pct: obj.u64_field("read_pct")? as u32,
            ops: obj.u64_field("ops")?,
            total_ns: obj.u64_field("total_ns")?,
            total_ns_rerun: obj.u64_field("total_ns_rerun")?,
            avg_ns_per_op: obj.u64_field("avg_ns_per_op")?,
        });
    }
    if points.is_empty() {
        return Err("no results[] entries found".into());
    }
    Ok(ParsedSyncReport {
        quick,
        replica_hit_fabric_ops,
        points,
    })
}

/// The strict acceptance check applied to the committed
/// `BENCH_sync.json` (the `--check` mode of `flac-sync-scale`):
/// full run, full sweep coverage, and every gate invariant.
pub fn check_report(report: &ParsedSyncReport) -> Vec<String> {
    let mut failures = Vec::new();
    if report.quick {
        failures.push("committed report must come from a full run, not --quick".into());
    }
    for &writers in &WRITER_COUNTS {
        for &read_pct in &READ_PCTS {
            for policy in ["delegated", "node_replicated"] {
                if !report
                    .points
                    .iter()
                    .any(|p| p.policy == policy && p.writers == writers && p.read_pct == read_pct)
                {
                    failures.push(format!(
                        "missing point ({policy}, writers={writers}, reads={read_pct}%)"
                    ));
                }
            }
        }
    }
    failures.extend(gate_failures(&report.points, report.replica_hit_fabric_ops));
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_passes_its_own_gate() {
        let cfg = SyncScaleConfig::quick();
        let points = run_sweep(cfg);
        let probe = run_replica_probe();
        let failures = gate_failures(&points, probe);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn report_roundtrips_and_checks() {
        let cfg = SyncScaleConfig::quick();
        let points = run_sweep(cfg);
        let probe = run_replica_probe();
        let json = to_json(cfg, &points, probe);
        let parsed = parse_report(&json).expect("parse");
        assert_eq!(parsed.points.len(), points.len());
        assert_eq!(parsed.replica_hit_fabric_ops, probe);
        for (a, b) in parsed.points.iter().zip(points.iter()) {
            assert_eq!(a, b);
        }
        // A quick report fails the committed-report check on exactly
        // the quick flag.
        let failures = check_report(&parsed);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("--quick"));
    }

    #[test]
    fn replica_probe_counts_zero_fabric_ops() {
        assert_eq!(run_replica_probe(), 0);
    }

    #[test]
    fn numa_probe_counts_remote_claims_only_on_the_pod() {
        let (flat, pod) = run_numa_probe(4);
        assert_eq!(flat, 0, "uniform home: no node is remote from the log");
        assert!(pod > 0, "interleaved pod: off-home combines are counted");
    }

    #[test]
    fn sweep_is_deterministic() {
        let (ops_a, ns_a) = super::run_point(SyncPolicy::NodeReplicated, 4, 50, 10);
        let (ops_b, ns_b) = super::run_point(SyncPolicy::NodeReplicated, 4, 50, 10);
        assert_eq!((ops_a, ns_a), (ops_b, ns_b));
    }
}
