//! Plain-text table rendering for experiment reports.

/// Render rows as an aligned monospace table with a header rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize]| -> String {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        s.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&line(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Format nanoseconds human-readably (µs below 1 ms, ms below 1 s, s above).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Format a byte count human-readably.
pub fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b} B")
    } else if b < 1024 * 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else if b < 1024 * 1024 * 1024 {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", b as f64 / (1024.0 * 1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = render(
            &["op", "latency"],
            &[
                vec!["SET".into(), "12 us".into()],
                vec!["GETLONG".into(), "9 us".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("op"));
        assert!(lines[2].starts_with("SET"));
        assert!(lines[3].starts_with("GETLONG"));
    }

    #[test]
    fn ns_formatting_bands() {
        assert_eq!(fmt_ns(900), "900 ns");
        assert_eq!(fmt_ns(12_340), "12.34 us");
        assert_eq!(fmt_ns(5_500_000), "5.500 ms");
        assert_eq!(fmt_ns(21_067_000_000), "21.067 s");
    }

    #[test]
    fn byte_formatting_bands() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(4096), "4.0 KiB");
        assert_eq!(fmt_bytes(64 << 20), "64.0 MiB");
        assert_eq!(fmt_bytes(4 << 30), "4.00 GiB");
    }
}
