//! A small wall-clock micro-benchmark harness.
//!
//! The bench targets in `benches/` used to wrap the external `criterion`
//! crate; the hermetic (offline, std-only) build replaces it with this
//! module. It keeps the parts the experiments actually used — named
//! groups, per-input benchmark ids, configurable sample counts, byte
//! throughput — and prints one summary line per benchmark:
//!
//! ```text
//! redis_latency/flacos_ipc_set/4096  med 12.41 µs  mean 12.63 µs  min 12.02 µs  (20 samples × 805 iters)
//! ```
//!
//! Measurement model: a warm-up phase estimates the per-iteration cost,
//! iterations are batched so each sample lasts ~[`TARGET_SAMPLE`], and
//! the median over samples is the headline number (robust to scheduler
//! noise, unlike the mean).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Warm-up budget before any sample is recorded.
const WARMUP: Duration = Duration::from_millis(100);
/// Wall-clock target for a single sample (batch of iterations).
const TARGET_SAMPLE: Duration = Duration::from_millis(10);
/// Default number of recorded samples per benchmark.
const DEFAULT_SAMPLES: usize = 20;

/// Top-level harness; hands out named [`Group`]s.
#[derive(Debug, Default)]
pub struct Harness {
    _priv: (),
}

impl Harness {
    pub fn new() -> Self {
        Harness { _priv: () }
    }

    /// Start a named benchmark group. Results print as `group/bench`.
    pub fn group(&mut self, name: &str) -> Group {
        Group {
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            throughput_bytes: None,
        }
    }
}

/// A named group of benchmarks sharing sample-count / throughput config.
#[derive(Debug)]
pub struct Group {
    name: String,
    samples: usize,
    throughput_bytes: Option<u64>,
}

impl Group {
    /// Number of recorded samples per benchmark (default 20).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Report throughput as `bytes` processed per iteration.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Run one benchmark. `f` receives a [`Bencher`]; setup done before
    /// `b.iter(..)` is excluded from the measurement.
    pub fn bench<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut b = Bencher {
            samples: self.samples,
            result: None,
        };
        f(&mut b);
        let m = b.result.expect("benchmark closure must call Bencher::iter");
        println!("{}/{}  {}", self.name, id, m.summary(self.throughput_bytes));
    }

    /// Explicit end-of-group marker (parity with the old criterion API).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs the measurement.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measure `f`, batching iterations into `self.samples` samples.
    /// The return value is passed through [`black_box`] so the optimizer
    /// cannot delete the work.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
        let batch = ((TARGET_SAMPLE.as_nanos() / per_iter.max(1)) as u64).clamp(1, 1 << 20);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        let mut total_iters: u64 = 0;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
            total_iters += batch;
        }
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(Measurement {
            sample_ns,
            batch,
            total_iters,
        });
    }
}

/// Collected samples for one benchmark, sorted ascending (ns/iter).
#[derive(Debug)]
struct Measurement {
    sample_ns: Vec<f64>,
    batch: u64,
    total_iters: u64,
}

impl Measurement {
    fn median(&self) -> f64 {
        let n = self.sample_ns.len();
        if n % 2 == 1 {
            self.sample_ns[n / 2]
        } else {
            (self.sample_ns[n / 2 - 1] + self.sample_ns[n / 2]) / 2.0
        }
    }

    fn summary(&self, throughput_bytes: Option<u64>) -> String {
        let med = self.median();
        let mean = self.sample_ns.iter().sum::<f64>() / self.sample_ns.len() as f64;
        let min = self.sample_ns[0];
        let mut s = format!(
            "med {}  mean {}  min {}  ({} samples × {} iters)",
            fmt_ns(med),
            fmt_ns(mean),
            fmt_ns(min),
            self.sample_ns.len(),
            self.batch
        );
        if let Some(bytes) = throughput_bytes {
            let gibps = bytes as f64 / med / 1.073_741_824; // bytes/ns → GiB/s
            s.push_str(&format!("  {gibps:.3} GiB/s"));
        }
        let _ = self.total_iters;
        s
    }
}

/// Render nanoseconds with an auto-scaled unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut b = Bencher {
            samples: 3,
            result: None,
        };
        b.iter(|| std::hint::black_box(1u64 + 1));
        let m = b.result.unwrap();
        assert_eq!(m.sample_ns.len(), 3);
        assert!(m.median() > 0.0);
        assert!(m.batch >= 1);
    }

    #[test]
    fn group_runs_and_prints() {
        let mut h = Harness::new();
        let mut g = h.group("unit");
        g.sample_size(2).throughput_bytes(64);
        g.bench("noop", |b| b.iter(|| 0u8));
        g.finish();
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.000 s");
    }
}
