//! `flac-topo-scale` — topology depth × page size on the zipf tiering
//! workload.
//!
//! The tentpole claim (paper §2.1/§3.3, hierarchical memory
//! interconnects): page-granular tiering pays one rack-wide TLB
//! shootdown *per 4 KiB page*, so promoting a hot 2 MiB region costs
//! 512 broadcast/ack rounds. Region-granular tiering coalesces the same
//! region into one huge local mapping with ONE ranged shootdown, and the
//! huge TLB entry covers all 512 base pages with a single slot (TLB
//! reach). This bench runs the same zipf read stream under the same
//! local-DRAM budget on a flat switched rack and on a two-level pod, in
//! two arms:
//!
//! * `base` — 4 KiB-only tiering (region coalescing disabled)
//! * `huge` — region-granular tiering (4 KiB promotions score-gated off,
//!   the budget spent on one 2 MiB coalesce)
//!
//! and reports p50/p99 access latency, shootdown rounds, and a
//! fixed-seed rerun fingerprint. A separate deterministic probe pins the
//! headline number exactly: promoting one fully-hot 2 MiB region takes
//! 512 shootdown rounds page-wise and 1 round region-wise.

use flacdk::alloc::GlobalAllocator;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use flacos_mem::addr::VirtAddr;
use flacos_mem::fault::FrameAllocator;
use flacos_mem::tlb::{shootdown_stepped_range, Tlb};
use flacos_mem::{
    huge_base, AddressSpace, PageSize, PhysFrame, Pte, HUGE_PAGE_SIZE, PAGES_PER_HUGE, PAGE_SIZE,
};
use flacos_tier::{TierBudget, TierConfig, TierDaemon};
use rack_sim::{GAddr, LAddr, Rack, RackConfig, SplitMix64, Zipf};

use crate::report::{object_with, objects_with, parse_quick};

/// Address-space id used by the workload.
const ASID: u64 = 1;
/// Deterministic workload seed.
const SEED: u64 = 0x0F1A_70B0;
/// Working-set pages: exactly two 2 MiB regions.
const PAGES: usize = 2 * PAGES_PER_HUGE as usize;
/// Zipf skew of the access stream.
const SKEW: f64 = 0.99;
/// Daemon tick period, in accesses.
const TICK_EVERY: usize = 250;
/// TLB slots per node — small enough that 4 KiB entries thrash on a
/// 1024-page working set while one huge entry covers half of it.
const TLB_CAPACITY: usize = 16;
/// Local-DRAM budget per node: exactly one 2 MiB region, enforced on
/// BOTH arms through the shared [`TierBudget`] ledger.
const BUDGET_BYTES: u64 = HUGE_PAGE_SIZE as u64;
/// Desired-set pages a region needs before the huge arm coalesces it.
const REGION_MIN_HOT: usize = 48;

/// Sweep sizing.
#[derive(Debug, Clone, Copy)]
pub struct TopoScaleConfig {
    /// Quick (CI smoke) or full (committed report) mode.
    pub quick: bool,
    /// Accesses before measurement starts (the daemon learns and
    /// migrates; the huge arm coalesces on its first tick).
    pub warmup: usize,
    /// Measured accesses per arm.
    pub measured: usize,
}

impl TopoScaleConfig {
    /// CI smoke sizing (~seconds).
    pub fn quick() -> Self {
        TopoScaleConfig {
            quick: true,
            warmup: 1000,
            measured: 2000,
        }
    }

    /// Committed-report sizing.
    pub fn full() -> Self {
        TopoScaleConfig {
            quick: false,
            warmup: 3000,
            measured: 5000,
        }
    }
}

/// One (topology, page-size mode) cell, run twice for the parity
/// fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoRow {
    /// `"flat"` (2-node switched) or `"pod"` (2 racks × 2 nodes).
    pub topo: String,
    /// `"base"` (4 KiB-only) or `"huge"` (region-granular).
    pub mode: String,
    /// Median access latency, ns.
    pub p50_ns: u64,
    /// Tail access latency, ns.
    pub p99_ns: u64,
    /// 4 KiB pages promoted into local DRAM.
    pub promoted: u64,
    /// 4 KiB pages demoted back to the global pool.
    pub demoted: u64,
    /// 2 MiB regions coalesced into huge local mappings.
    pub region_promotions: u64,
    /// TLB shootdown rounds the initiator issued (one per 4 KiB
    /// migration; one per 2 MiB region regardless of its 512 pages).
    pub shootdown_rounds: u64,
    /// Sum of measured latencies — the deterministic run fingerprint.
    pub total_ns: u64,
    /// The same fingerprint from an independent same-seed rerun.
    pub total_ns_rerun: u64,
}

impl TopoRow {
    /// Whether the fixed-seed rerun reproduced the run byte-identically.
    pub fn parity(&self) -> bool {
        self.total_ns == self.total_ns_rerun
    }
}

/// Exact percentile over raw latency samples.
fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// `frame` advanced `bytes` into its allocation.
fn frame_fwd(frame: PhysFrame, bytes: u64) -> PhysFrame {
    match frame {
        PhysFrame::Global(a) => PhysFrame::Global(a.offset(bytes)),
        PhysFrame::Local(n, a) => PhysFrame::Local(n, LAddr(a.0 + bytes as usize)),
    }
}

/// `frame` rewound `bytes` — recovers a region-head frame from the
/// per-vpn view [`AddressSpace::translate`] synthesizes.
fn frame_back(frame: PhysFrame, bytes: u64) -> PhysFrame {
    match frame {
        PhysFrame::Global(a) => PhysFrame::Global(GAddr(a.0 - bytes)),
        PhysFrame::Local(n, a) => PhysFrame::Local(n, LAddr(a.0 - bytes as usize)),
    }
}

/// Huge-page-aware TLB front end: per-vpn entries first, then the
/// region-head entry (one slot covers all 512 base pages); a miss walks
/// the shared page table and caches a huge translation at its head.
fn tlb_frame(
    tlb: &mut Tlb,
    space: &AddressSpace,
    n0: &std::sync::Arc<rack_sim::NodeCtx>,
    vpn: u64,
) -> PhysFrame {
    if let Some(p) = tlb.lookup(ASID, vpn) {
        return p.frame;
    }
    let head = huge_base(vpn);
    if head != vpn {
        if let Some(h) = tlb.lookup(ASID, head) {
            if h.page_size == PageSize::Huge {
                return frame_fwd(h.frame, (vpn - head) * PAGE_SIZE as u64);
            }
        }
    }
    let p = space
        .translate(n0, VirtAddr::from_vpn(vpn))
        .expect("walk")
        .expect("mapped");
    if p.page_size == PageSize::Huge {
        let off = (vpn - head) * PAGE_SIZE as u64;
        let mut head_pte = p;
        head_pte.frame = frame_back(p.frame, off);
        tlb.fill(ASID, head, head_pte);
    } else {
        tlb.fill(ASID, vpn, p);
    }
    p.frame
}

/// The rack under test for one topology label.
fn build_rack(topo: &str) -> Rack {
    match topo {
        "flat" => Rack::new(RackConfig::n_node(2)),
        _ => Rack::new(RackConfig::pod(2, 2)),
    }
}

struct ArmResult {
    p50_ns: u64,
    p99_ns: u64,
    promoted: u64,
    demoted: u64,
    region_promotions: u64,
    shootdown_rounds: u64,
    total_ns: u64,
}

/// The daemon policy for one arm: same budget ledger, different
/// migration granularity.
fn arm_config(huge: bool) -> TierConfig {
    TierConfig {
        local_budget_bytes: BUDGET_BYTES,
        // huge arm: coalesce hot regions, score-gate 4 KiB promotions
        // off (normalized scores never exceed 1.0) so the whole budget
        // goes to one region migration with one ranged shootdown.
        huge_region_min_hot_pages: if huge { REGION_MIN_HOT } else { 0 },
        min_promote_score: if huge { 1.1 } else { 0.0 },
        ..TierConfig::default()
    }
}

/// One arm: the zipf read stream, TLB-fronted, with the tiering daemon
/// closing the loop from sampled accesses to migrations.
fn run_arm(cfg: TopoScaleConfig, topo: &str, huge: bool) -> ArmResult {
    let rack = build_rack(topo);
    let nodes = rack.node_count();
    let n0 = rack.node(0);
    let alloc = GlobalAllocator::new(rack.global().clone());
    let epochs = EpochManager::alloc(rack.global(), nodes).expect("epochs");
    let space = AddressSpace::alloc(ASID, rack.global(), alloc, epochs, RetireList::new())
        .expect("address space");
    let frames = FrameAllocator::new(rack.global().clone());
    for vpn in 0..PAGES as u64 {
        let f = frames.alloc(&n0).expect("frame");
        space
            .map(&n0, vpn, Pte::new(PhysFrame::Global(f), true))
            .expect("map");
    }

    let mut tlbs: Vec<Tlb> = (0..nodes)
        .map(|i| Tlb::new(rack.node(i), TLB_CAPACITY))
        .collect();
    let budget = TierBudget::alloc(rack.global(), nodes, BUDGET_BYTES).expect("budget");
    let mut daemon = TierDaemon::new(n0.clone(), arm_config(huge)).with_budget(budget);

    let mut rng = SplitMix64::new(SEED);
    let zipf = Zipf::new(PAGES, SKEW);
    let mut latencies = Vec::with_capacity(cfg.measured);
    let mut promoted = 0u64;
    let mut demoted = 0u64;
    let mut region_promotions = 0u64;
    let mut buf = [0u8; 64];

    for i in 0..cfg.warmup + cfg.measured {
        let vpn = zipf.sample(&mut rng) as u64;
        let t0 = n0.clock().now();
        let frame = tlb_frame(&mut tlbs[0], &space, &n0, vpn);
        space.read_frame(&n0, frame, &mut buf).expect("read");
        let lat = n0.clock().now() - t0;
        if i >= cfg.warmup {
            latencies.push(lat);
        }

        daemon.note_access(n0.id(), ASID, vpn);
        if (i + 1) % TICK_EVERY == 0 {
            let report = daemon
                .tick(&space, &frames, &mut |asid, vpn, span| {
                    shootdown_stepped_range(&mut tlbs, 0, asid, vpn, span)
                })
                .expect("tier tick");
            promoted += report.promoted;
            demoted += report.demoted;
            region_promotions += report.region_promotions;
        }
    }

    let total_ns = latencies.iter().sum();
    latencies.sort_unstable();
    ArmResult {
        p50_ns: percentile_ns(&latencies, 50.0),
        p99_ns: percentile_ns(&latencies, 99.0),
        promoted,
        demoted,
        region_promotions,
        shootdown_rounds: tlbs[0].stats().shootdown_rounds,
        total_ns,
    }
}

/// One sweep cell: run the arm twice on fresh racks for the fixed-seed
/// parity fingerprint.
fn run_cell(cfg: TopoScaleConfig, topo: &str, huge: bool) -> TopoRow {
    let a = run_arm(cfg, topo, huge);
    let b = run_arm(cfg, topo, huge);
    TopoRow {
        topo: topo.to_string(),
        mode: if huge { "huge" } else { "base" }.to_string(),
        p50_ns: a.p50_ns,
        p99_ns: a.p99_ns,
        promoted: a.promoted,
        demoted: a.demoted,
        region_promotions: a.region_promotions,
        shootdown_rounds: a.shootdown_rounds,
        total_ns: a.total_ns,
        total_ns_rerun: b.total_ns,
    }
}

/// Run the topology × page-size sweep.
pub fn run_sweep(cfg: TopoScaleConfig) -> Vec<TopoRow> {
    let mut rows = Vec::with_capacity(4);
    for topo in ["flat", "pod"] {
        for huge in [false, true] {
            rows.push(run_cell(cfg, topo, huge));
        }
    }
    rows
}

/// Deterministic headline probe: promote ONE fully-hot 2 MiB region on a
/// two-node rack, page-wise then region-wise, and count the shootdown
/// rounds the initiator issued. Returns `(base_rounds, huge_rounds)` —
/// the acceptance target is exactly `(512, 1)`.
pub fn region_probe() -> (u64, u64) {
    let mut rounds = [0u64; 2];
    for (slot, huge) in [(0usize, false), (1usize, true)] {
        let rack = Rack::new(RackConfig::n_node(2));
        let nodes = rack.node_count();
        let n0 = rack.node(0);
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), nodes).expect("epochs");
        let space = AddressSpace::alloc(ASID, rack.global(), alloc, epochs, RetireList::new())
            .expect("address space");
        let frames = FrameAllocator::new(rack.global().clone());
        for vpn in 0..PAGES_PER_HUGE {
            let f = frames.alloc(&n0).expect("frame");
            space
                .map(&n0, vpn, Pte::new(PhysFrame::Global(f), true))
                .expect("map");
        }
        let mut tlbs: Vec<Tlb> = (0..nodes)
            .map(|i| Tlb::new(rack.node(i), TLB_CAPACITY))
            .collect();
        let budget = TierBudget::alloc(rack.global(), nodes, BUDGET_BYTES).expect("budget");
        let mut daemon = TierDaemon::new(
            n0.clone(),
            TierConfig {
                max_migrations_per_tick: PAGES_PER_HUGE as usize,
                ..arm_config(huge)
            },
        )
        .with_budget(budget);
        for vpn in 0..PAGES_PER_HUGE {
            daemon.note_access(n0.id(), ASID, vpn);
        }
        let report = daemon
            .tick(&space, &frames, &mut |asid, vpn, span| {
                shootdown_stepped_range(&mut tlbs, 0, asid, vpn, span)
            })
            .expect("tier tick");
        assert_eq!(
            report.promoted + report.region_promotions * PAGES_PER_HUGE,
            PAGES_PER_HUGE,
            "probe must migrate the whole region in one tick"
        );
        rounds[slot] = tlbs[0].stats().shootdown_rounds;
    }
    (rounds[0], rounds[1])
}

/// Deterministic acceptance gate over one sweep.
pub fn gate_failures(rows: &[TopoRow], probe: (u64, u64)) -> Vec<String> {
    let mut failures = Vec::new();
    if probe != (PAGES_PER_HUGE, 1) {
        failures.push(format!(
            "region probe: expected ({PAGES_PER_HUGE}, 1) shootdown rounds \
             (page-wise, region-wise), got ({}, {})",
            probe.0, probe.1
        ));
    }
    for row in rows {
        if !row.parity() {
            failures.push(format!(
                "{}/{}: fixed-seed rerun diverged ({} ns vs {} ns)",
                row.topo, row.mode, row.total_ns, row.total_ns_rerun
            ));
        }
    }
    for topo in ["flat", "pod"] {
        let base = rows.iter().find(|r| r.topo == topo && r.mode == "base");
        let huge = rows.iter().find(|r| r.topo == topo && r.mode == "huge");
        let (Some(base), Some(huge)) = (base, huge) else {
            failures.push(format!("{topo}: missing base/huge cell"));
            continue;
        };
        if huge.region_promotions < 1 {
            failures.push(format!("{topo}: huge arm coalesced no region"));
        }
        if base.region_promotions != 0 {
            failures.push(format!("{topo}: base arm must not coalesce regions"));
        }
        if huge.p50_ns >= base.p50_ns {
            failures.push(format!(
                "{topo}: huge p50 {} ns is not below base p50 {} ns at the same budget",
                huge.p50_ns, base.p50_ns
            ));
        }
        if huge.shootdown_rounds >= base.shootdown_rounds {
            failures.push(format!(
                "{topo}: huge arm issued {} shootdown rounds, base {} — \
                 region coalescing must cut rounds",
                huge.shootdown_rounds, base.shootdown_rounds
            ));
        }
    }
    failures
}

/// Render the committed JSON report (line-wise, no serde).
pub fn to_json(cfg: TopoScaleConfig, rows: &[TopoRow], probe: (u64, u64)) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"topo-scale\",\n");
    s.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    s.push_str(&format!("  \"pages\": {PAGES},\n"));
    s.push_str(&format!("  \"zipf_skew\": {SKEW},\n"));
    s.push_str(&format!("  \"budget_bytes\": {BUDGET_BYTES},\n"));
    s.push_str(&format!(
        "  \"probe\": {{\"base_rounds\": {}, \"huge_rounds\": {}}},\n",
        probe.0, probe.1
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"topo\": \"{}\", \"mode\": \"{}\", \"p50_ns\": {}, \"p99_ns\": {}, \
             \"promoted\": {}, \"demoted\": {}, \"region_promotions\": {}, \
             \"shootdown_rounds\": {}, \"total_ns\": {}, \"total_ns_rerun\": {}}}{}\n",
            r.topo,
            r.mode,
            r.p50_ns,
            r.p99_ns,
            r.promoted,
            r.demoted,
            r.region_promotions,
            r.shootdown_rounds,
            r.total_ns,
            r.total_ns_rerun,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// A parsed committed report.
#[derive(Debug)]
pub struct TopoReport {
    /// Whether the report came from a `--quick` run.
    pub quick: bool,
    /// The sweep rows.
    pub rows: Vec<TopoRow>,
    /// `(base_rounds, huge_rounds)` from the region probe.
    pub probe: (u64, u64),
}

/// Parse a report produced by [`to_json`].
///
/// # Errors
///
/// Names the missing or malformed field.
pub fn parse_report(json: &str) -> Result<TopoReport, String> {
    let quick = parse_quick(json)?;
    let probe_obj = object_with(json, "base_rounds")?;
    let probe = (
        probe_obj.u64_field("base_rounds")?,
        probe_obj.u64_field("huge_rounds")?,
    );
    let mut rows = Vec::new();
    for obj in objects_with(json, "topo") {
        rows.push(TopoRow {
            topo: obj.str_field("topo")?,
            mode: obj.str_field("mode")?,
            p50_ns: obj.u64_field("p50_ns")?,
            p99_ns: obj.u64_field("p99_ns")?,
            promoted: obj.u64_field("promoted")?,
            demoted: obj.u64_field("demoted")?,
            region_promotions: obj.u64_field("region_promotions")?,
            shootdown_rounds: obj.u64_field("shootdown_rounds")?,
            total_ns: obj.u64_field("total_ns")?,
            total_ns_rerun: obj.u64_field("total_ns_rerun")?,
        });
    }
    if rows.is_empty() {
        return Err("no result rows".into());
    }
    Ok(TopoReport { quick, rows, probe })
}

/// Strict `--check` validation of a committed report: full run, full
/// sweep coverage, every gate invariant.
pub fn check_report(report: &TopoReport) -> Vec<String> {
    let mut failures = Vec::new();
    if report.quick {
        failures.push("committed report must come from a full run, not --quick".into());
    }
    for (topo, mode) in [
        ("flat", "base"),
        ("flat", "huge"),
        ("pod", "base"),
        ("pod", "huge"),
    ] {
        if !report.rows.iter().any(|r| r.topo == topo && r.mode == mode) {
            failures.push(format!("missing sweep cell {topo}/{mode}"));
        }
    }
    failures.extend(gate_failures(&report.rows, report.probe));
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_probe_pins_512_to_1() {
        assert_eq!(region_probe(), (PAGES_PER_HUGE, 1));
    }

    #[test]
    fn quick_sweep_passes_the_gate_and_roundtrips() {
        let cfg = TopoScaleConfig::quick();
        let rows = run_sweep(cfg);
        let probe = region_probe();
        let failures = gate_failures(&rows, probe);
        assert!(failures.is_empty(), "{failures:?}");

        let json = to_json(cfg, &rows, probe);
        let report = parse_report(&json).expect("parse");
        assert!(report.quick);
        assert_eq!(report.rows, rows);
        assert_eq!(report.probe, probe);
        // A quick report must be rejected as a committed artifact...
        assert!(check_report(&report).iter().any(|f| f.contains("--quick")));
        // ...while the same rows from a full run pass.
        let full = TopoReport {
            quick: false,
            rows,
            probe,
        };
        assert!(check_report(&full).is_empty());
    }

    #[test]
    fn check_rejects_missing_cells_and_bad_probe() {
        let row = TopoRow {
            topo: "flat".into(),
            mode: "base".into(),
            p50_ns: 500,
            p99_ns: 900,
            promoted: 10,
            demoted: 2,
            region_promotions: 0,
            shootdown_rounds: 12,
            total_ns: 1,
            total_ns_rerun: 1,
        };
        let report = TopoReport {
            quick: false,
            rows: vec![row],
            probe: (512, 2),
        };
        let failures = check_report(&report);
        assert!(failures.iter().any(|f| f.contains("missing sweep cell")));
        assert!(failures.iter().any(|f| f.contains("region probe")));
    }
}
