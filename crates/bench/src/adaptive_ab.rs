//! Ablation A8 — fixed sync policies vs the adaptive driver.
//!
//! §3.2's point is that no single coordination primitive wins
//! everywhere: replication amortizes reads but taxes every writer with
//! replay, delegation makes writes one message but ships every remote
//! read to the owner. We sweep the read ratio of a multi-node workload
//! on one [`SyncCell`] across the replication/delegation break-even and
//! compare every fixed backend against the adaptive driver, which must
//! track the best fixed policy at both ends of the sweep without
//! thrashing in the middle.

use flacdk::sync::{AdaptiveConfig, SyncCell, SyncCellConfig, SyncPolicy, SyncState};
use flacdk::wire::{Decoder, Encoder};
use rack_sim::{Rack, RackConfig, SplitMix64};

/// Nodes issuing operations (round-robin).
const NODES: usize = 8;
/// Deterministic workload seed.
const SEED: u64 = 0x0F1A_C0A8;
/// Ops before measurement starts (lets the adaptive driver settle).
const WARMUP_OPS: usize = 200;
/// Measured ops per cell.
const MEASURED_OPS: usize = 1600;
/// Read percentages swept, crossing the break-even from both sides.
pub const READ_PCTS: [u32; 7] = [0, 10, 25, 50, 75, 90, 100];

/// The shared state under test: per-node op tallies (16-byte footprint
/// per node, applied from 12-byte committed ops).
#[derive(Debug, Default, Clone)]
struct Tally {
    counts: Vec<u64>,
    total: u64,
}

impl SyncState for Tally {
    fn apply(&mut self, op: &[u8]) {
        let mut d = Decoder::new(op);
        let (Ok(node), Ok(amount)) = (d.u32(), d.u64()) else {
            return;
        };
        if let Some(slot) = self.counts.get_mut(node as usize) {
            *slot += amount;
            self.total += amount;
        }
    }
}

fn tally_op(node: usize, amount: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u32(node as u32).put_u64(amount);
    e.into_vec()
}

/// One arm of the sweep: `label` is "adaptive" or a fixed policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveArm {
    /// Display name of the backend.
    pub label: &'static str,
    /// Median per-op latency, ns.
    pub p50_ns: u64,
    /// Tail per-op latency, ns.
    pub p99_ns: u64,
    /// Policy switches the arm performed (0 for fixed backends).
    pub switches: u64,
    /// Backend in force when the arm finished.
    pub final_policy: SyncPolicy,
}

/// All arms of one read-ratio cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveRow {
    /// Percentage of ops that are reads.
    pub read_pct: u32,
    /// Measured ops per arm.
    pub ops: usize,
    /// One entry per fixed policy, plus the adaptive driver.
    pub arms: Vec<AdaptiveArm>,
}

impl AdaptiveRow {
    /// The named arm.
    pub fn arm(&self, label: &str) -> &AdaptiveArm {
        self.arms
            .iter()
            .find(|a| a.label == label)
            .expect("known arm")
    }

    /// Lowest fixed-policy median in this cell.
    pub fn best_fixed_p50(&self) -> u64 {
        self.arms
            .iter()
            .filter(|a| a.label != "adaptive")
            .map(|a| a.p50_ns)
            .min()
            .expect("fixed arms")
    }

    /// Highest fixed-policy median in this cell.
    pub fn worst_fixed_p50(&self) -> u64 {
        self.arms
            .iter()
            .filter(|a| a.label != "adaptive")
            .map(|a| a.p50_ns)
            .max()
            .expect("fixed arms")
    }
}

fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run one arm: a deterministic read/update mix issued round-robin from
/// every node against a single cell on `rack` (fresh per arm).
fn run_arm(
    rack: &Rack,
    label: &'static str,
    read_pct: u32,
    policy: Option<SyncPolicy>,
) -> AdaptiveArm {
    let mut cfg =
        SyncCellConfig::new(NODES, policy.unwrap_or(SyncPolicy::Replicated)).with_log(8192, 48);
    if policy.is_none() {
        cfg = cfg.with_adaptive(AdaptiveConfig::default());
    }
    let cell = SyncCell::alloc(
        rack.global(),
        "adaptive_ab",
        cfg,
        Tally {
            counts: vec![0; NODES],
            total: 0,
        },
    )
    .expect("cell");

    let mut rng = SplitMix64::new(SEED ^ read_pct as u64);
    let mut latencies = Vec::with_capacity(MEASURED_OPS);
    for i in 0..WARMUP_OPS + MEASURED_OPS {
        let node = rack.node(i % NODES);
        let is_read = (rng.next_u64() % 100) < read_pct as u64;
        let t0 = node.clock().now();
        if is_read {
            cell.read(&node, |t| t.total).expect("read");
        } else {
            cell.update(&node, &tally_op(i % NODES, 1)).expect("update");
        }
        if i >= WARMUP_OPS {
            latencies.push(node.clock().now() - t0);
        }
    }
    latencies.sort_unstable();
    AdaptiveArm {
        label,
        p50_ns: percentile_ns(&latencies, 50.0),
        p99_ns: percentile_ns(&latencies, 99.0),
        switches: cell.switch_epoch(&rack.node(0)).expect("epoch"),
        final_policy: cell.policy(),
    }
}

fn fresh_rack() -> Rack {
    Rack::new(RackConfig::n_node(NODES).with_global_mem(64 << 20))
}

/// Run every arm of one read-ratio cell, each on a fresh rack.
pub fn run_cell(read_pct: u32) -> AdaptiveRow {
    let arms = vec![
        run_arm(&fresh_rack(), "lock", read_pct, Some(SyncPolicy::Lock)),
        run_arm(
            &fresh_rack(),
            "replicated",
            read_pct,
            Some(SyncPolicy::Replicated),
        ),
        run_arm(
            &fresh_rack(),
            "delegated",
            read_pct,
            Some(SyncPolicy::Delegated),
        ),
        run_arm(&fresh_rack(), "rcu", read_pct, Some(SyncPolicy::Rcu)),
        run_arm(
            &fresh_rack(),
            "node_replicated",
            read_pct,
            Some(SyncPolicy::NodeReplicated),
        ),
        run_arm(&fresh_rack(), "adaptive", read_pct, None),
    ];
    AdaptiveRow {
        read_pct,
        ops: MEASURED_OPS,
        arms,
    }
}

/// Rack-wide metrics behind a representative adaptive arm (25% reads):
/// the `sync` per-policy op counters and the policy-switch events.
pub fn metrics() -> rack_sim::RackReport {
    let rack = fresh_rack();
    rack.enable_tracing();
    run_arm(&rack, "adaptive", 25, None);
    rack.metrics_report()
}

/// Run the full read-ratio sweep.
pub fn run() -> Vec<AdaptiveRow> {
    READ_PCTS.iter().map(|&p| run_cell(p)).collect()
}

/// Render the sweep as a p50 table, one column per backend.
pub fn report(rows: &[AdaptiveRow]) -> String {
    let labels = [
        "lock",
        "replicated",
        "delegated",
        "rcu",
        "node_replicated",
        "adaptive",
    ];
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![format!("{}%", r.read_pct)];
            for l in labels {
                cells.push(crate::table::fmt_ns(r.arm(l).p50_ns));
            }
            let ad = r.arm("adaptive");
            cells.push(format!("{} ({})", ad.switches, ad.final_policy));
            cells
        })
        .collect();
    format!(
        "Ablation A8: fixed sync policies vs adaptive driver \
         ({} nodes, {} ops/arm, p50 per op)\n\n{}",
        NODES,
        rows.first().map_or(0, |r| r.ops),
        crate::table::render(
            &[
                "reads",
                "lock p50",
                "replicated p50",
                "delegated p50",
                "rcu p50",
                "node_repl p50",
                "adaptive p50",
                "switches (final)"
            ],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar: within 10% of the best fixed backend at both
    /// ends of the sweep, and ≥2× better than the worst fixed backend at
    /// its bad end.
    #[test]
    fn adaptive_tracks_best_fixed_at_both_ends() {
        for read_pct in [0u32, 100] {
            let row = run_cell(read_pct);
            let adaptive = row.arm("adaptive").p50_ns;
            let best = row.best_fixed_p50();
            let worst = row.worst_fixed_p50();
            assert!(
                adaptive as f64 <= best as f64 * 1.1,
                "{read_pct}% reads: adaptive {adaptive} ns vs best fixed {best} ns"
            );
            assert!(
                worst as f64 >= adaptive as f64 * 2.0,
                "{read_pct}% reads: worst fixed {worst} ns vs adaptive {adaptive} ns"
            );
        }
    }

    #[test]
    fn adaptive_lands_on_the_right_backend() {
        let writes = run_cell(0);
        // Round-robin writers from every node: the write tier for a
        // multi-writer window is the flat-combined node-replicated log.
        assert_eq!(
            writes.arm("adaptive").final_policy,
            SyncPolicy::NodeReplicated
        );
        assert!(writes.arm("adaptive").switches >= 1);
        let reads = run_cell(100);
        assert_eq!(reads.arm("adaptive").final_policy, SyncPolicy::Replicated);
        assert_eq!(reads.arm("adaptive").switches, 0, "already right");
    }

    #[test]
    fn break_even_crosses_inside_the_sweep() {
        // Replication must win the read-heavy end, delegation the
        // write-heavy end — otherwise the sweep brackets nothing.
        let writes = run_cell(0);
        assert!(
            writes.arm("delegated").p50_ns < writes.arm("replicated").p50_ns,
            "delegated {} vs replicated {}",
            writes.arm("delegated").p50_ns,
            writes.arm("replicated").p50_ns
        );
        let reads = run_cell(100);
        assert!(
            reads.arm("replicated").p50_ns < reads.arm("delegated").p50_ns,
            "replicated {} vs delegated {}",
            reads.arm("replicated").p50_ns,
            reads.arm("delegated").p50_ns
        );
    }
}
