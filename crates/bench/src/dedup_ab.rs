//! Ablation A5 — page dedup effectiveness on container image pages.
//!
//! §3.4 motivates the shared page cache with cross-node duplication of
//! container images. Here, multiple images share base layers (as real
//! images share distro layers); interning every page through the
//! deduper shows how much memory the single-copy property saves.

use flacos_mem::dedup::PageDeduper;
use flacos_mem::fault::FrameAllocator;
use flacos_mem::PAGE_SIZE;
use rack_sim::{Rack, RackConfig};
use serverless::image::ContainerImage;

/// One measured configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupRow {
    /// Images interned.
    pub images: usize,
    /// Shared base layers per image.
    pub shared_layers: usize,
    /// Total pages interned.
    pub pages_interned: u64,
    /// Distinct frames actually stored.
    pub unique_frames: u64,
    /// Bytes saved by deduplication.
    pub bytes_saved: u64,
}

impl DedupRow {
    /// Effective compression ratio.
    pub fn ratio(&self) -> f64 {
        self.pages_interned as f64 / self.unique_frames.max(1) as f64
    }
}

/// Intern `images` images of `pages_each` pages; all images share their
/// first `shared_layers` (of 4) layers.
pub fn run_cell(images: usize, pages_each: u64, shared_layers: usize) -> DedupRow {
    run_cell_on(
        &Rack::new(RackConfig::small_test().with_global_mem(256 << 20)),
        images,
        pages_each,
        shared_layers,
    )
}

fn run_cell_on(rack: &Rack, images: usize, pages_each: u64, shared_layers: usize) -> DedupRow {
    let dedup = PageDeduper::new(FrameAllocator::new(rack.global().clone()));
    let n0 = rack.node(0);

    for img_idx in 0..images {
        // Shared base layers use the common seed space; unique layers
        // are regenerated from per-image seeds (their content-derived
        // ids differ automatically).
        let image = ContainerImage::synthetic(&format!("img{img_idx}"), pages_each, 4, 0);
        for (layer_idx, layer) in image.layers.iter().enumerate() {
            let effective = if layer_idx < shared_layers {
                layer.clone() // shared seed space: identical content
            } else {
                serverless::image::Layer::generate(
                    10_000 + (img_idx * 10 + layer_idx) as u64,
                    layer.pages,
                )
            };
            for p in 0..effective.pages {
                dedup
                    .intern(&n0, &effective.page_content(p))
                    .expect("intern");
            }
        }
    }

    let stats = dedup.stats();
    DedupRow {
        images,
        shared_layers,
        pages_interned: stats.interned,
        unique_frames: stats.unique_frames,
        bytes_saved: stats.bytes_saved,
    }
}

/// Run the sweep over sharing degrees.
pub fn run() -> Vec<DedupRow> {
    [0usize, 2, 4].iter().map(|&s| run_cell(4, 64, s)).collect()
}

/// Rack-wide metrics behind one representative cell (4 images, fully
/// shared layers): operation counts and latency histograms.
pub fn metrics() -> rack_sim::RackReport {
    let rack = Rack::new(RackConfig::small_test().with_global_mem(256 << 20));
    rack.enable_tracing();
    run_cell_on(&rack, 4, 64, 4);
    rack.metrics_report()
}

/// Render the sweep.
pub fn report(rows: &[DedupRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.images.to_string(),
                format!("{}/4", r.shared_layers),
                r.pages_interned.to_string(),
                r.unique_frames.to_string(),
                crate::table::fmt_bytes(r.bytes_saved),
                format!("{:.2}x", r.ratio()),
            ]
        })
        .collect();
    format!(
        "Ablation A5: page dedup on container images ({} B pages)\n\n{}",
        PAGE_SIZE,
        crate::table::render(
            &[
                "images",
                "shared layers",
                "pages",
                "unique frames",
                "saved",
                "ratio"
            ],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_shared_images_store_once() {
        let row = run_cell(4, 32, 4);
        // 4 identical images: only one image's worth of frames.
        assert_eq!(row.pages_interned, 4 * 32);
        assert_eq!(row.unique_frames, 32);
        assert!((row.ratio() - 4.0).abs() < 1e-9);
        assert_eq!(row.bytes_saved, 3 * 32 * PAGE_SIZE as u64);
    }

    #[test]
    fn unshared_images_store_everything() {
        let row = run_cell(3, 32, 0);
        assert_eq!(row.unique_frames, 3 * 32);
        assert_eq!(row.bytes_saved, 0);
    }

    #[test]
    fn savings_scale_with_shared_fraction() {
        let none = run_cell(4, 64, 0);
        let half = run_cell(4, 64, 2);
        let all = run_cell(4, 64, 4);
        assert!(none.bytes_saved < half.bytes_saved);
        assert!(half.bytes_saved < all.bytes_saved);
    }
}
