//! §4.2 container-startup experiment: cold vs. FlacOS vs. hot.
//!
//! The paper starts a 4 GB PyTorch container: node 1 cold-starts
//! (21.067 s), then node 2 starts the same image and is served by the
//! shared page cache (5.526 s); a hot start takes 3.02 s. We reproduce
//! the progression with a size-scaled synthetic image: the image is
//! 64 MiB of *real* pages chunked by content hash, and the aggregate
//! backend bandwidth is scaled by the same 64× factor, so the simulated
//! times land in the paper's regime while host memory stays bounded.
//! The cold path is the `flac-store` pipeline — claim the missing
//! chunks in the rack-wide index, fetch them in parallel slices across
//! [`SHARDS`] backend shards, intern into shared deduped frames — and
//! the shared path is pure chunk reads from global memory.

use flac_store::{BackendConfig, ChunkStore, ShardedBackends, StoreConfig};
use flacdk::alloc::GlobalAllocator;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use flacos_fs::block::BlockDevice;
use flacos_fs::memfs::{FsShared, MemFs};
use flacos_mem::dedup::PageDeduper;
use flacos_mem::fault::FrameAllocator;
use rack_sim::{Rack, RackConfig};
use serverless::image::ContainerImage;
use serverless::registry::{ImageRegistry, RegistryConfig};
use serverless::runtime::{ContainerRuntime, StartupReport};
use std::sync::Arc;

/// Real pages in the scaled image (64 MiB).
pub const IMAGE_PAGES: u64 = 16 * 1024;
/// Scale factor from the paper's 4 GiB image to our 64 MiB one.
pub const SCALE: u64 = 64;
/// Backend shards serving the cold fetch (aggregate bandwidth is held
/// at the paper's single-registry rate regardless of the count).
pub const SHARDS: usize = 4;

/// The three startup measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartupRows {
    /// Node 0's cold start.
    pub cold: StartupReport,
    /// Node 1's shared-store start.
    pub shared: StartupReport,
    /// Node 1's hot start.
    pub hot: StartupReport,
}

impl StartupRows {
    /// The paper's headline: cold / shared improvement factor.
    pub fn improvement(&self) -> f64 {
        self.cold.total_ns as f64 / self.shared.total_ns.max(1) as f64
    }
}

/// Run the experiment with the default scaled image.
pub fn run() -> StartupRows {
    run_with_pages(IMAGE_PAGES, SCALE)
}

/// Run with an explicit image size and bandwidth scale.
pub fn run_with_pages(image_pages: u64, scale: u64) -> StartupRows {
    run_on_rack(&Rack::new(RackConfig::two_node_hccs()), image_pages, scale)
}

fn run_on_rack(rack: &Rack, image_pages: u64, scale: u64) -> StartupRows {
    let alloc = GlobalAllocator::new(rack.global().clone());
    let epochs = EpochManager::alloc(rack.global(), rack.node_count()).expect("epochs");
    let fs = FsShared::alloc(
        rack.global(),
        rack.node_count(),
        alloc,
        epochs,
        RetireList::new(),
        Arc::new(BlockDevice::nvme(rack.global(), rack.node_count()).expect("device")),
    )
    .expect("fs");

    let registry = Arc::new(ImageRegistry::new(RegistryConfig::paper_calibrated()));
    let image = ContainerImage::synthetic("pytorch", image_pages, 8, 7000);
    // Per-shard bandwidth = paper rate / (scale · shards): the shards'
    // aggregate matches the old single registry, so the paper's cold
    // decomposition is preserved — it is just served in parallel slices.
    let backends = Arc::new(ShardedBackends::uniform(
        SHARDS,
        BackendConfig::paper_calibrated(SHARDS, scale),
    ));
    image.publish(&backends);
    registry.push(image);
    let dedup = Arc::new(PageDeduper::new(FrameAllocator::new(rack.global().clone())));
    let store = ChunkStore::alloc(
        rack.global(),
        backends,
        dedup,
        StoreConfig::new(rack.node_count()),
    )
    .expect("store");

    let mut rt0 = ContainerRuntime::new(
        rack.node(0),
        MemFs::mount(fs.clone(), rack.node(0)),
        registry.clone(),
        store.clone(),
    );
    let mut rt1 = ContainerRuntime::new(
        rack.node(1),
        MemFs::mount(fs, rack.node(1)),
        registry,
        store,
    );

    let (_, cold) = rt0.start_container("pytorch").expect("cold start");
    let (_, shared) = rt1.start_container("pytorch").expect("shared start");
    let (_, hot) = rt1.start_container("pytorch").expect("hot start");
    StartupRows { cold, shared, hot }
}

/// Rack-wide metrics behind a small-image run of the cold/shared/hot
/// progression: operation counts, latency histograms, and the
/// `sync/*` + `page_cache` counters that explain the shared-start win.
pub fn metrics() -> rack_sim::RackReport {
    let rack = Rack::new(RackConfig::two_node_hccs());
    rack.enable_tracing();
    run_on_rack(&rack, 256, 4096);
    rack.metrics_report()
}

/// Render the experiment as a table.
pub fn report(rows: &StartupRows) -> String {
    let t = |r: &StartupReport, label: &str| {
        vec![
            label.to_string(),
            crate::table::fmt_ns(r.manifest_ns),
            crate::table::fmt_ns(r.fetch_ns),
            crate::table::fmt_ns(r.init_ns),
            crate::table::fmt_ns(r.total_ns),
            format!("{}/{}", r.pages_downloaded, r.pages_from_cache),
        ]
    };
    format!(
        "Container startup (4 GiB image scaled to 64 MiB, time-preserving, {SHARDS} backend shards)\n\n{}\nFlacOS improvement over cold start: {:.1}x (paper: 3.8x)\n",
        crate::table::render(
            &[
                "path",
                "manifest",
                "image fetch",
                "init",
                "total",
                "chunks dl/cached"
            ],
            &[
                t(&rows.cold, "cold (node 0)"),
                t(&rows.shared, "FlacOS shared chunk store (node 1)"),
                t(&rows.hot, "hot (node 1)"),
            ],
        ),
        rows.improvement()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use serverless::runtime::StartupPath;

    #[test]
    fn paper_progression_reproduced() {
        // A smaller image keeps the test fast; the scale factor keeps
        // the time decomposition identical.
        let rows = run_with_pages(1024, 1024);
        assert_eq!(rows.cold.path, StartupPath::Cold);
        assert_eq!(rows.shared.path, StartupPath::SharedPageCache);
        assert_eq!(rows.hot.path, StartupPath::Hot);
        assert!(rows.hot.total_ns < rows.shared.total_ns);
        assert!(rows.shared.total_ns < rows.cold.total_ns);
        // The paper's ~3.8x cold-vs-FlacOS gap (band: 3x-5x).
        let x = rows.improvement();
        assert!(x > 3.0 && x < 5.0, "improvement {x:.2} out of band");
        // Chunk accounting: the cold start downloads every chunk, the
        // shared start none.
        assert_eq!(rows.cold.pages_downloaded, 1024);
        assert_eq!(rows.shared.pages_downloaded, 0);
        assert_eq!(rows.shared.pages_from_cache, 1024);
    }

    #[test]
    fn report_mentions_all_paths() {
        let rows = run_with_pages(256, 4096);
        let text = report(&rows);
        assert!(text.contains("cold (node 0)"));
        assert!(text.contains("FlacOS shared chunk store"));
        assert!(text.contains("hot (node 1)"));
        assert!(text.contains("chunks dl/cached"));
    }
}
