//! Ablation A7 — page tiering daemon off vs. on.
//!
//! The paper's tiering argument (§2.1/§3.3): under a skewed access
//! pattern, promoting the hot working set from the global pool
//! (~480 ns loads on HCCS) into node-local DRAM (~90 ns) should cut the
//! median access latency several-fold while the budget caps how much
//! fast memory the daemon may claim. We run the same zipf-distributed
//! TLB-fronted read workload twice — daemon off, then daemon on — and
//! compare p50/p99.

use flacdk::alloc::GlobalAllocator;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use flacos_mem::addr::VirtAddr;
use flacos_mem::fault::FrameAllocator;
use flacos_mem::tlb::{shootdown_stepped_range, Tlb};
use flacos_mem::{AddressSpace, PhysFrame, Pte, PAGE_SIZE};
use flacos_tier::{TierConfig, TierDaemon};
use rack_sim::{Rack, RackConfig, SplitMix64, Zipf};

/// Address-space id used by the workload.
const ASID: u64 = 1;
/// Deterministic workload seed.
const SEED: u64 = 0x0F1A_C0A7;
/// Accesses before measurement starts (the daemon learns and migrates).
const WARMUP_ACCESSES: usize = 2000;
/// Measured accesses per cell.
const MEASURED_ACCESSES: usize = 4000;
/// Daemon tick period, in accesses.
const TICK_EVERY: usize = 250;
/// Local-DRAM promotion budget, in pages.
const BUDGET_PAGES: usize = 64;

/// Result of one skew cell: the same workload with the daemon off/on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieringRow {
    /// Zipf skew of the access stream.
    pub skew: f64,
    /// Pages in the working set.
    pub pages: usize,
    /// Measured accesses per arm.
    pub accesses: usize,
    /// Median access latency with tiering off, ns.
    pub off_p50_ns: u64,
    /// Tail access latency with tiering off, ns.
    pub off_p99_ns: u64,
    /// Median access latency with tiering on, ns.
    pub on_p50_ns: u64,
    /// Tail access latency with tiering on, ns.
    pub on_p99_ns: u64,
    /// Pages the daemon promoted into local DRAM.
    pub promotions: u64,
    /// Pages the daemon demoted back to the global pool.
    pub demotions: u64,
}

impl TieringRow {
    /// Median-latency speedup from turning the daemon on.
    pub fn p50_speedup(&self) -> f64 {
        self.off_p50_ns as f64 / self.on_p50_ns.max(1) as f64
    }
}

/// Exact percentile over raw latency samples.
fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct ArmResult {
    p50_ns: u64,
    p99_ns: u64,
    promotions: u64,
    demotions: u64,
}

/// One arm of the A/B: the zipf read stream against `pages` global
/// pages, TLB-fronted, optionally with the tiering daemon closing the
/// loop from sampled accesses to promotions.
fn run_arm(rack: &Rack, skew: f64, pages: usize, daemon_on: bool) -> ArmResult {
    let nodes = rack.node_count();
    let n0 = rack.node(0);
    let alloc = GlobalAllocator::new(rack.global().clone());
    let epochs = EpochManager::alloc(rack.global(), nodes).expect("epochs");
    let space = AddressSpace::alloc(ASID, rack.global(), alloc, epochs, RetireList::new())
        .expect("address space");
    let frames = FrameAllocator::new(rack.global().clone());
    for vpn in 0..pages as u64 {
        let f = frames.alloc(&n0).expect("frame");
        space
            .map(&n0, vpn, Pte::new(PhysFrame::Global(f), true))
            .expect("map");
    }

    let mut tlbs: Vec<Tlb> = (0..nodes)
        .map(|i| Tlb::new(rack.node(i), pages.max(16)))
        .collect();
    let mut daemon = daemon_on.then(|| {
        TierDaemon::new(
            n0.clone(),
            TierConfig {
                local_budget_bytes: (BUDGET_PAGES * PAGE_SIZE) as u64,
                max_migrations_per_tick: 16,
                ..TierConfig::default()
            },
        )
    });

    let mut rng = SplitMix64::new(SEED);
    let zipf = Zipf::new(pages, skew);
    let mut latencies = Vec::with_capacity(MEASURED_ACCESSES);
    let mut promotions = 0u64;
    let mut demotions = 0u64;
    let mut buf = [0u8; 64];

    for i in 0..WARMUP_ACCESSES + MEASURED_ACCESSES {
        let vpn = zipf.sample(&mut rng) as u64;
        let t0 = n0.clock().now();
        // TLB-fronted access: hit → read through the cached translation;
        // miss → walk the shared page table and fill.
        let pte = match tlbs[0].lookup(ASID, vpn) {
            Some(p) => p,
            None => {
                let p = space
                    .translate(&n0, VirtAddr::from_vpn(vpn))
                    .expect("walk")
                    .expect("mapped");
                tlbs[0].fill(ASID, vpn, p);
                p
            }
        };
        space.read_frame(&n0, pte.frame, &mut buf).expect("read");
        let lat = n0.clock().now() - t0;
        if i >= WARMUP_ACCESSES {
            latencies.push(lat);
        }

        if let Some(d) = daemon.as_mut() {
            d.note_access(n0.id(), ASID, vpn);
            if (i + 1) % TICK_EVERY == 0 {
                let report = d
                    .tick(&space, &frames, &mut |asid, vpn, span| {
                        shootdown_stepped_range(&mut tlbs, 0, asid, vpn, span)
                    })
                    .expect("tier tick");
                promotions += report.promoted;
                demotions += report.demoted;
            }
        }
    }

    latencies.sort_unstable();
    ArmResult {
        p50_ns: percentile_ns(&latencies, 50.0),
        p99_ns: percentile_ns(&latencies, 99.0),
        promotions,
        demotions,
    }
}

/// Run one skew cell on a fresh two-node rack per arm (the off arm must
/// not see the on arm's migrated pages).
pub fn run_cell(skew: f64, pages: usize) -> TieringRow {
    let off = run_arm(
        &Rack::new(RackConfig::n_node(2).with_global_mem(64 << 20)),
        skew,
        pages,
        false,
    );
    let on = run_arm(
        &Rack::new(RackConfig::n_node(2).with_global_mem(64 << 20)),
        skew,
        pages,
        true,
    );
    TieringRow {
        skew,
        pages,
        accesses: MEASURED_ACCESSES,
        off_p50_ns: off.p50_ns,
        off_p99_ns: off.p99_ns,
        on_p50_ns: on.p50_ns,
        on_p99_ns: on.p99_ns,
        promotions: on.promotions,
        demotions: on.demotions,
    }
}

/// Run the skew sweep.
pub fn run() -> Vec<TieringRow> {
    [0.6, 0.99, 1.2].iter().map(|&s| run_cell(s, 512)).collect()
}

/// Rack-wide metrics behind the headline cell (zipf 0.99, daemon on):
/// per-tier byte traffic and the `tier` promotion/shootdown counters.
pub fn metrics() -> rack_sim::RackReport {
    let rack = Rack::new(RackConfig::n_node(2).with_global_mem(64 << 20));
    rack.enable_tracing();
    run_arm(&rack, 0.99, 512, true);
    rack.metrics_report()
}

/// Render the sweep.
pub fn report(rows: &[TieringRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.skew),
                r.pages.to_string(),
                crate::table::fmt_ns(r.off_p50_ns),
                crate::table::fmt_ns(r.off_p99_ns),
                crate::table::fmt_ns(r.on_p50_ns),
                crate::table::fmt_ns(r.on_p99_ns),
                format!("{:.1}x", r.p50_speedup()),
                r.promotions.to_string(),
                r.demotions.to_string(),
            ]
        })
        .collect();
    format!(
        "Ablation A7: page tiering daemon off vs on ({} reads/arm)\n\n{}",
        rows.first().map_or(0, |r| r.accesses),
        crate::table::render(
            &[
                "zipf skew",
                "pages",
                "off p50",
                "off p99",
                "on p50",
                "on p99",
                "p50 gain",
                "promoted",
                "demoted"
            ],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_workload_speeds_up_at_least_2x() {
        let row = run_cell(0.99, 512);
        assert!(
            row.p50_speedup() >= 2.0,
            "p50 {} ns off vs {} ns on",
            row.off_p50_ns,
            row.on_p50_ns
        );
        // The daemon promoted a working set but stayed within budget.
        assert!(row.promotions > 0);
        assert!((row.promotions - row.demotions) as usize <= BUDGET_PAGES);
        // Off arm reads are dominated by the ~480 ns interconnect load.
        assert!(row.off_p50_ns >= 400);
        // On arm medians land on the ~90 ns local-DRAM path.
        assert!(row.on_p50_ns <= 200, "on p50 {} ns", row.on_p50_ns);
    }

    #[test]
    fn uniform_ish_workload_gains_less_than_skewed() {
        let flat = run_cell(0.3, 256);
        let skewed = run_cell(1.2, 256);
        assert!(skewed.p50_speedup() >= flat.p50_speedup());
        // The tail may include a shared-page-table walk after a
        // shootdown invalidation, but stays bounded by a few
        // interconnect round trips.
        assert!(flat.on_p99_ns <= 5_000, "on p99 {} ns", flat.on_p99_ns);
    }
}
