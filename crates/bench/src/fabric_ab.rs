//! Ablation A6 — sensitivity to the interconnect generation.
//!
//! The paper's testbed uses HCCS; deployments will see CXL switches
//! with higher latencies. This ablation reruns the Figure 4 SET path on
//! three fabric models — HCCS-like, CXL-2.0-switched, and a hypothetical
//! fully-coherent uniform machine — against the *same* TCP baseline, to
//! show where the shared-memory advantage erodes and what an ideal
//! coherent fabric would buy.

use flacdk::alloc::GlobalAllocator;
use flacos_ipc::channel::FlacChannel;
use flacos_ipc::netstack::{NetConfig, NetPair};
use rack_sim::{LatencyModel, Rack, RackConfig};
use redis_mini::client::{request_stepped, RedisClient};
use redis_mini::resp::Command;
use redis_mini::server::RedisServer;

/// A named latency-model constructor.
pub type FabricModel = (&'static str, fn() -> LatencyModel);

/// Fabrics under comparison.
pub const FABRICS: [FabricModel; 3] = [
    ("hccs", LatencyModel::hccs),
    ("cxl-switched", LatencyModel::cxl_switched),
    ("uniform-coherent", LatencyModel::uniform_coherent),
];

/// One measured fabric point.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricRow {
    /// Fabric label.
    pub fabric: &'static str,
    /// Request value size.
    pub size: usize,
    /// Redis SET latency over FlacOS IPC on this fabric (simulated ns).
    pub flacos_ns: u64,
    /// Redis SET latency over TCP (fabric-independent baseline).
    pub networking_ns: u64,
}

impl FabricRow {
    /// Latency reduction over networking.
    pub fn speedup(&self) -> f64 {
        self.networking_ns as f64 / self.flacos_ns.max(1) as f64
    }
}

fn measure_set(rack: &Rack, over_ipc: bool, size: usize, requests: usize) -> u64 {
    let alloc = GlobalAllocator::new(rack.global().clone());
    let cmd = Command::Set {
        key: b"k".to_vec(),
        value: vec![1u8; size],
    };
    let mut total = 0u64;
    if over_ipc {
        let (sep, cep) =
            FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).expect("chan");
        let mut server = RedisServer::new(rack.node(0), sep);
        let mut client = RedisClient::new(rack.node(1), cep);
        for _ in 0..requests {
            total += request_stepped(&mut client, &mut server, &cmd)
                .expect("req")
                .1;
        }
    } else {
        let (sep, cep) = NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 0);
        let mut server = RedisServer::new(rack.node(0), sep);
        let mut client = RedisClient::new(rack.node(1), cep);
        for _ in 0..requests {
            total += request_stepped(&mut client, &mut server, &cmd)
                .expect("req")
                .1;
        }
    }
    total / requests as u64
}

/// Run the fabric sweep with `requests` SETs per cell.
pub fn run(requests: usize) -> Vec<FabricRow> {
    let mut rows = Vec::new();
    for &size in &[16usize, 4096] {
        for (fabric, model) in FABRICS {
            let rack = Rack::new(RackConfig::two_node_hccs().with_latency(model()));
            let flacos_ns = measure_set(&rack, true, size, requests);
            let rack = Rack::new(RackConfig::two_node_hccs().with_latency(model()));
            let networking_ns = measure_set(&rack, false, size, requests);
            rows.push(FabricRow {
                fabric,
                size,
                flacos_ns,
                networking_ns,
            });
        }
    }
    rows
}

/// Rack-wide metrics behind one representative cell (HCCS fabric,
/// FlacOS IPC, 4 KiB SETs): operation counts and latency histograms.
pub fn metrics(requests: usize) -> rack_sim::RackReport {
    let rack = Rack::new(RackConfig::two_node_hccs());
    rack.enable_tracing();
    measure_set(&rack, true, 4096, requests);
    rack.metrics_report()
}

/// Render the sweep.
pub fn report(rows: &[FabricRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.fabric.to_string(),
                crate::table::fmt_bytes(r.size as u64),
                crate::table::fmt_ns(r.flacos_ns),
                crate::table::fmt_ns(r.networking_ns),
                format!("{:.2}x", r.speedup()),
            ]
        })
        .collect();
    format!(
        "Ablation A6: Redis SET latency by interconnect generation\n\n{}",
        crate::table::render(
            &["fabric", "size", "FlacOS", "networking", "reduction"],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn better_fabrics_help_flacos_not_tcp() {
        let rows = run(30);
        let at = |f: &str, size: usize| {
            rows.iter()
                .find(|r| r.fabric == f && r.size == size)
                .unwrap()
                .clone()
        };
        // Coherent-uniform < HCCS < CXL-switched on the FlacOS side.
        assert!(at("uniform-coherent", 16).flacos_ns < at("hccs", 16).flacos_ns);
        assert!(at("hccs", 16).flacos_ns < at("cxl-switched", 16).flacos_ns);
        // FlacOS still wins even on the slowest fabric.
        assert!(at("cxl-switched", 16).speedup() > 1.0);
        assert!(at("cxl-switched", 4096).speedup() > 1.0);
    }

    #[test]
    fn report_lists_all_fabrics() {
        let text = report(&run(5));
        for (f, _) in FABRICS {
            assert!(text.contains(f));
        }
    }
}
