//! Ablation A4 — transport latency across message sizes.
//!
//! Echo round-trips over FlacOS IPC and the TCP/IP baseline, 64 B to
//! 1 MiB, isolating the transports from the Redis protocol layer. The
//! crossover behaviour explains Figure 4: the networking side pays
//! per-segment stack costs that grow with size, while FlacOS pays
//! near-constant control costs plus bandwidth.

use flacdk::alloc::GlobalAllocator;
use flacos_ipc::channel::FlacChannel;
use flacos_ipc::netstack::{NetConfig, NetPair};
use rack_sim::{Rack, RackConfig};

/// Message sizes swept.
pub const SIZES: [usize; 6] = [64, 256, 1024, 4096, 65536, 1 << 20];

/// One measured size point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpcRow {
    /// Message size in bytes.
    pub size: usize,
    /// Mean echo RTT over FlacOS IPC (simulated ns).
    pub flacos_rtt_ns: u64,
    /// Mean echo RTT over TCP/IP (simulated ns).
    pub tcp_rtt_ns: u64,
}

/// Run the sweep with `iters` round-trips per point.
pub fn run(iters: usize) -> Vec<IpcRow> {
    SIZES
        .iter()
        .map(|&size| {
            // FlacOS IPC.
            let rack = Rack::new(RackConfig::two_node_hccs());
            let alloc = GlobalAllocator::new(rack.global().clone());
            let (mut a, mut b) =
                FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1))
                    .expect("channel");
            let payload = vec![0x5Au8; size];
            let t0 = a.node().clock().now();
            for _ in 0..iters {
                a.send(&payload).expect("send");
                b.node().clock().advance_to(a.node().clock().now());
                let echo = b.try_recv().expect("recv");
                b.send(&echo).expect("echo");
                a.node().clock().advance_to(b.node().clock().now());
                a.try_recv().expect("reply");
            }
            let flacos_rtt_ns = (a.node().clock().now() - t0) / iters as u64;

            // TCP/IP.
            let rack = Rack::new(RackConfig::two_node_hccs());
            let (mut a, mut b) =
                NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 0);
            let t0 = a.node().clock().now();
            for _ in 0..iters {
                a.send(&payload).expect("send");
                b.node().clock().advance_to(a.node().clock().now());
                let echo = b.try_recv().expect("recv");
                b.send(&echo).expect("echo");
                a.node().clock().advance_to(b.node().clock().now());
                a.try_recv().expect("reply");
            }
            let tcp_rtt_ns = (a.node().clock().now() - t0) / iters as u64;

            IpcRow {
                size,
                flacos_rtt_ns,
                tcp_rtt_ns,
            }
        })
        .collect()
}

/// Rack-wide metrics behind one representative sweep point (FlacOS IPC
/// echo, 4 KiB messages): operation counts, latency histograms, and the
/// `ipc` message counters.
pub fn metrics(iters: usize) -> rack_sim::RackReport {
    let rack = Rack::new(RackConfig::two_node_hccs());
    rack.enable_tracing();
    let alloc = GlobalAllocator::new(rack.global().clone());
    let (mut a, mut b) =
        FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).expect("channel");
    let payload = vec![0x5Au8; 4096];
    for _ in 0..iters {
        a.send(&payload).expect("send");
        b.node().clock().advance_to(a.node().clock().now());
        let echo = b.try_recv().expect("recv");
        b.send(&echo).expect("echo");
        a.node().clock().advance_to(b.node().clock().now());
        a.try_recv().expect("reply");
    }
    rack.metrics_report()
}

/// Render the sweep.
pub fn report(rows: &[IpcRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                crate::table::fmt_bytes(r.size as u64),
                crate::table::fmt_ns(r.flacos_rtt_ns),
                crate::table::fmt_ns(r.tcp_rtt_ns),
                format!(
                    "{:.2}x",
                    r.tcp_rtt_ns as f64 / r.flacos_rtt_ns.max(1) as f64
                ),
            ]
        })
        .collect();
    format!(
        "Ablation A4: echo RTT by message size\n\n{}",
        crate::table::render(&["size", "FlacOS IPC", "TCP/IP", "reduction"], &table_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flacos_wins_across_all_sizes() {
        for row in run(10) {
            assert!(
                row.flacos_rtt_ns < row.tcp_rtt_ns,
                "{}B: FlacOS {} vs TCP {}",
                row.size,
                row.flacos_rtt_ns,
                row.tcp_rtt_ns
            );
        }
    }

    #[test]
    fn rtt_grows_with_size() {
        let rows = run(5);
        assert!(rows.last().unwrap().flacos_rtt_ns > rows[0].flacos_rtt_ns);
        assert!(rows.last().unwrap().tcp_rtt_ns > rows[0].tcp_rtt_ns);
    }
}
