//! Ablation A3 — fault-box isolation vs. whole-node recovery.
//!
//! K applications run in fault boxes; one suffers an uncorrectable
//! memory fault. With fault boxes, detection + recovery touches exactly
//! one application (blast radius 1/K). The baseline models today's
//! horizontally-aggregated state: the fault takes down the node, and
//! *every* application must be restored.

use flacdk::alloc::GlobalAllocator;
use flacdk::reliability::checkpoint::CheckpointManager;
use flacdk::sync::rcu::EpochManager;
use flacos_fault::fault_box::FaultBoxBuilder;
use flacos_fault::recovery::RecoveryOrchestrator;
use flacos_fault::redundancy::{Protection, RedundancyPolicy};
use flacos_mem::fault::FrameAllocator;
use rack_sim::{Rack, RackConfig};

/// One measured configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultBoxRow {
    /// Applications on the node.
    pub apps: usize,
    /// Applications disturbed with fault boxes (always 1).
    pub disturbed_flacos: usize,
    /// Applications disturbed by whole-node recovery (always all).
    pub disturbed_baseline: usize,
    /// Recovery time with fault boxes (simulated ns).
    pub recovery_flacos_ns: u64,
    /// Recovery time restoring every app (simulated ns).
    pub recovery_baseline_ns: u64,
}

impl FaultBoxRow {
    /// Recovery-time reduction factor.
    pub fn speedup(&self) -> f64 {
        self.recovery_baseline_ns as f64 / self.recovery_flacos_ns.max(1) as f64
    }
}

fn build_orchestrator(rack: &Rack, apps: usize, heap_pages: usize) -> RecoveryOrchestrator {
    let alloc = GlobalAllocator::new(rack.global().clone());
    let frames = FrameAllocator::new(rack.global().clone());
    let epochs = EpochManager::alloc(rack.global(), rack.node_count()).expect("epochs");
    let n0 = rack.node(0);
    let mut orch = RecoveryOrchestrator::new();
    for app in 0..apps as u64 {
        let fbox = FaultBoxBuilder::new(app)
            .stack_pages(1)
            .heap_pages(heap_pages)
            .build(&n0, rack.global(), alloc.clone(), &frames, epochs.clone())
            .expect("box");
        fbox.space()
            .write(&n0, fbox.heap_va(0), format!("state-{app}").as_bytes())
            .expect("state");
        let protection = Protection::new(
            RedundancyPolicy::PeriodicCheckpoint { period_ns: 1 },
            CheckpointManager::new(alloc.clone(), epochs.clone()),
        );
        orch.register(&n0, fbox, protection).expect("register");
    }
    orch
}

/// Run one cell: `apps` applications, fault injected into one.
pub fn run_cell(apps: usize) -> FaultBoxRow {
    // Fault-box path: targeted detection + single-app recovery.
    let rack = Rack::new(RackConfig::small_test().with_global_mem(192 << 20));
    let mut orch = build_orchestrator(&rack, apps, 2);
    let n0 = rack.node(0);
    orch.poison_app_heap(&n0, rack.faults(), (apps / 2) as u64, 64)
        .expect("inject");
    let report = orch.sweep(&n0).expect("sweep");
    assert_eq!(
        report.boxes_recovered.len(),
        1,
        "fault box bounds the radius"
    );
    let recovery_flacos_ns = report.sweep_ns;

    // Baseline path: the same single fault, but horizontally aggregated
    // state means the whole node's applications restart — modeled by
    // poisoning every app's state (the node went down with all of it)
    // and restoring all of them.
    let rack = Rack::new(RackConfig::small_test().with_global_mem(192 << 20));
    let mut orch = build_orchestrator(&rack, apps, 2);
    let n0 = rack.node(0);
    let t0 = n0.clock().now();
    for app in 0..apps as u64 {
        orch.poison_app_heap(&n0, rack.faults(), app, 64)
            .expect("inject all");
    }
    orch.sweep(&n0).expect("sweep all");
    let recovery_baseline_ns = n0.clock().now() - t0;

    FaultBoxRow {
        apps,
        disturbed_flacos: 1,
        disturbed_baseline: apps,
        recovery_flacos_ns,
        recovery_baseline_ns,
    }
}

/// Run the app-count sweep.
pub fn run() -> Vec<FaultBoxRow> {
    [4usize, 8, 16].iter().map(|&k| run_cell(k)).collect()
}

/// Rack-wide metrics behind one representative cell (8 apps, fault-box
/// path): operation counts, latency histograms, and the `fault_box`
/// build/recovery counters.
pub fn metrics() -> rack_sim::RackReport {
    let apps = 8;
    let rack = Rack::new(RackConfig::small_test().with_global_mem(192 << 20));
    rack.enable_tracing();
    let mut orch = build_orchestrator(&rack, apps, 2);
    let n0 = rack.node(0);
    orch.poison_app_heap(&n0, rack.faults(), (apps / 2) as u64, 64)
        .expect("inject");
    orch.sweep(&n0).expect("sweep");
    rack.metrics_report()
}

/// Render the sweep.
pub fn report(rows: &[FaultBoxRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.apps.to_string(),
                format!("{}/{}", r.disturbed_flacos, r.apps),
                format!("{}/{}", r.disturbed_baseline, r.apps),
                crate::table::fmt_ns(r.recovery_flacos_ns),
                crate::table::fmt_ns(r.recovery_baseline_ns),
                format!("{:.1}x", r.speedup()),
            ]
        })
        .collect();
    format!(
        "Ablation A3: fault-box blast radius and recovery time\n\n{}",
        crate::table::render(
            &[
                "apps",
                "disturbed (fault box)",
                "disturbed (node restart)",
                "recovery (fault box)",
                "recovery (node restart)",
                "speedup"
            ],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_box_bounds_radius_and_beats_restart() {
        let row = run_cell(8);
        assert_eq!(row.disturbed_flacos, 1);
        assert_eq!(row.disturbed_baseline, 8);
        assert!(
            row.recovery_flacos_ns < row.recovery_baseline_ns,
            "targeted recovery ({}) must beat whole-node restore ({})",
            row.recovery_flacos_ns,
            row.recovery_baseline_ns
        );
    }

    #[test]
    fn speedup_grows_with_density() {
        let small = run_cell(4);
        let big = run_cell(16);
        assert!(
            big.speedup() > small.speedup(),
            "more co-located apps, bigger win"
        );
    }
}
