//! `flac-store-scale` — shard-scaling and dedup gate for the chunk store.
//!
//! Two deterministic phases, both in *simulated* time (the store charges
//! every fetch/claim/intern against the rack clock, so there is no
//! wall-clock noise to tolerate — every invariant is exact):
//!
//! * **Shard sweep** — cold-start the same content-addressed image
//!   against 1, 4, and 8 backend shards of *fixed per-shard bandwidth*.
//!   Aggregate bandwidth grows with the shard count and the store
//!   fetches the shard slices in parallel (charging the max over
//!   shards), so the cold fetch time must improve monotonically
//!   1 → 4 → 8. Each point is run twice on fresh racks; both runs must
//!   charge identical simulated ns (determinism parity).
//! * **Overlap** — node 0 cold-starts image A, then node 1 starts an
//!   *overlapping* image B (two of four layers shared by content).
//!   The rack-wide index must confine node 1's downloads to the chunks
//!   the rack does not already hold: `bytes_fetched` must equal the
//!   byte size of B's unique chunks absent after A, exactly.
//!
//! The committed artifact is `BENCH_store.json`; `--check` re-reads it
//! and enforces the strict acceptance targets (see [`check_report`]).

use flac_store::{BackendConfig, ChunkStore, ShardedBackends, StoreConfig, CHUNK_SIZE};
use flacos_mem::dedup::PageDeduper;
use flacos_mem::fault::FrameAllocator;
use rack_sim::{Rack, RackConfig};
use serverless::image::ContainerImage;
use std::collections::HashSet;
use std::sync::Arc;

/// Shard counts swept by the benchmark, ascending.
pub const SHARD_SWEEP: [usize; 3] = [1, 4, 8];
/// Fixed per-shard bandwidth (bytes/s). Unlike the serverless path's
/// aggregate-preserving calibration, the sweep holds the *per-shard*
/// rate fixed so shard count buys real parallel bandwidth.
pub const PER_SHARD_BW: u64 = 200_000_000;
/// Per-request latency each shard charges per fetch batch (ns).
pub const PER_REQUEST_NS: u64 = 5_000_000;
/// Minimum cold-fetch speedup the committed full run must show at the
/// top shard count over the 1-shard serial baseline.
pub const SPEEDUP_TARGET: f64 = 2.0;

/// Workload size knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreScaleConfig {
    /// Pages (= chunks) in the synthetic image.
    pub pages: u64,
    /// Layers the image is split into.
    pub layers: usize,
    /// Content seed.
    pub seed: u64,
}

impl StoreScaleConfig {
    /// The ~1 s CI smoke configuration.
    pub fn quick() -> Self {
        StoreScaleConfig {
            pages: 64,
            layers: 4,
            seed: 9000,
        }
    }

    /// The full configuration behind the committed `BENCH_store.json`.
    pub fn full() -> Self {
        StoreScaleConfig {
            pages: 2048,
            layers: 4,
            seed: 9000,
        }
    }
}

/// One shard-sweep measurement.
#[derive(Debug, Clone, Copy)]
pub struct ShardPoint {
    /// Backend shard count.
    pub shards: usize,
    /// Unique chunks in the image.
    pub chunks: u64,
    /// Bytes those chunks occupy.
    pub bytes: u64,
    /// Simulated ns node 0 spent cold-fetching every chunk.
    pub cold_fetch_ns: u64,
    /// The same measurement re-run on a fresh rack (determinism parity).
    pub cold_fetch_ns_rerun: u64,
    /// Simulated ns node 1 spent warm-starting from the rack index.
    pub warm_fetch_ns: u64,
    /// Chunks the cold start downloaded from the backends.
    pub fetched: u64,
    /// Chunks the warm start served from the rack without downloading.
    pub warm_rack_hits: u64,
}

impl ShardPoint {
    /// Did both runs charge identical simulated time?
    pub fn parity(&self) -> bool {
        self.cold_fetch_ns == self.cold_fetch_ns_rerun
    }
}

/// Overlap-phase measurement (acceptance criterion (b)).
#[derive(Debug, Clone, Copy)]
pub struct OverlapPoint {
    /// Bytes node 0 fetched cold-starting image A.
    pub first_bytes_fetched: u64,
    /// Bytes node 1 fetched starting the overlapping image B.
    pub second_bytes_fetched: u64,
    /// Bytes of B's unique chunks the rack did not hold after A.
    pub unique_missing_bytes: u64,
    /// Chunks B shares with A by content.
    pub shared_chunks: u64,
}

impl OverlapPoint {
    /// The no-duplicate-download invariant.
    pub fn exact(&self) -> bool {
        self.second_bytes_fetched == self.unique_missing_bytes
    }
}

fn fixed_backend() -> BackendConfig {
    BackendConfig {
        bandwidth_bytes_per_sec: PER_SHARD_BW,
        per_request_ns: PER_REQUEST_NS,
        per_chunk_ns: 1_000,
    }
}

/// Build a fresh 2-node rack + store over `shards` backends, publish
/// `image`, and return (cold ns on node 0, warm ns on node 1, fetched,
/// warm rack hits).
fn run_once(shards: usize, image: &ContainerImage) -> (u64, u64, u64, u64) {
    let rack = Rack::new(RackConfig::two_node_hccs());
    let backends = Arc::new(ShardedBackends::uniform(shards, fixed_backend()));
    image.publish(&backends);
    let dedup = Arc::new(PageDeduper::new(FrameAllocator::new(rack.global().clone())));
    let store = ChunkStore::alloc(
        rack.global(),
        backends,
        dedup,
        StoreConfig::new(rack.node_count()),
    )
    .expect("store");
    let hashes = image.chunk_hashes();

    let n0 = rack.node(0);
    let t0 = n0.clock().now();
    let cold = store.ensure(&n0, &hashes).expect("cold ensure");
    let cold_ns = n0.clock().now() - t0;

    let n1 = rack.node(1);
    let t1 = n1.clock().now();
    let warm = store.ensure(&n1, &hashes).expect("warm ensure");
    let warm_ns = n1.clock().now() - t1;
    assert_eq!(warm.fetched, 0, "warm start must not download");
    (cold_ns, warm_ns, cold.fetched, warm.rack_hits)
}

/// Run the shard sweep (each point twice, on fresh racks).
pub fn run_shard_sweep(cfg: StoreScaleConfig) -> Vec<ShardPoint> {
    let image = ContainerImage::synthetic("pytorch", cfg.pages, cfg.layers, cfg.seed);
    let unique: HashSet<u64> = image.chunk_hashes().into_iter().collect();
    let chunks = unique.len() as u64;
    SHARD_SWEEP
        .iter()
        .map(|&shards| {
            let (cold_fetch_ns, warm_fetch_ns, fetched, warm_rack_hits) = run_once(shards, &image);
            let (cold_fetch_ns_rerun, _, _, _) = run_once(shards, &image);
            ShardPoint {
                shards,
                chunks,
                bytes: chunks * CHUNK_SIZE as u64,
                cold_fetch_ns,
                cold_fetch_ns_rerun,
                warm_fetch_ns,
                fetched,
                warm_rack_hits,
            }
        })
        .collect()
}

/// Run the overlap phase: image B shares its first two layers with A's
/// last two by content (layer seeds `seed+2`, `seed+3`).
pub fn run_overlap(cfg: StoreScaleConfig) -> OverlapPoint {
    let rack = Rack::new(RackConfig::two_node_hccs());
    let a = ContainerImage::synthetic("pytorch", cfg.pages, cfg.layers, cfg.seed);
    let b = ContainerImage::synthetic("jupyter", cfg.pages, cfg.layers, cfg.seed + 2);
    let backends = Arc::new(ShardedBackends::uniform(4, fixed_backend()));
    a.publish(&backends);
    b.publish(&backends);
    let dedup = Arc::new(PageDeduper::new(FrameAllocator::new(rack.global().clone())));
    let store = ChunkStore::alloc(
        rack.global(),
        backends,
        dedup,
        StoreConfig::new(rack.node_count()),
    )
    .expect("store");

    let first = store
        .ensure(&rack.node(0), &a.chunk_hashes())
        .expect("first ensure");
    let a_hashes: HashSet<u64> = a.chunk_hashes().into_iter().collect();
    let b_hashes: HashSet<u64> = b.chunk_hashes().into_iter().collect();
    let missing = b_hashes.difference(&a_hashes).count() as u64;
    let shared = b_hashes.intersection(&a_hashes).count() as u64;
    let second = store
        .ensure(&rack.node(1), &b.chunk_hashes())
        .expect("second ensure");
    OverlapPoint {
        first_bytes_fetched: first.bytes_fetched,
        second_bytes_fetched: second.bytes_fetched,
        unique_missing_bytes: missing * CHUNK_SIZE as u64,
        shared_chunks: shared,
    }
}

/// Render both phases as a JSON document. Hand-rolled: the workspace is
/// hermetic, so no serde.
pub fn to_json(points: &[ShardPoint], overlap: &OverlapPoint, quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"store_scale\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"chunk_size\": {CHUNK_SIZE},\n"));
    out.push_str(&format!("  \"per_shard_bw\": {PER_SHARD_BW},\n"));
    out.push_str(&format!(
        "  \"targets\": {{ \"monotonic_shards\": true, \"speedup_top_min\": {SPEEDUP_TARGET:.1}, \
         \"parity\": true, \"overlap_exact\": true }},\n"
    ));
    out.push_str("  \"shard_sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{ \"shards\": {}, \"chunks\": {}, \"bytes\": {}, \"cold_fetch_ns\": {}, \
             \"cold_fetch_ns_rerun\": {}, \"warm_fetch_ns\": {}, \"fetched\": {}, \
             \"warm_rack_hits\": {} }}",
            p.shards,
            p.chunks,
            p.bytes,
            p.cold_fetch_ns,
            p.cold_fetch_ns_rerun,
            p.warm_fetch_ns,
            p.fetched,
            p.warm_rack_hits
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"overlap\": {{ \"first_bytes_fetched\": {}, \"second_bytes_fetched\": {}, \
         \"unique_missing_bytes\": {}, \"shared_chunks\": {} }}\n",
        overlap.first_bytes_fetched,
        overlap.second_bytes_fetched,
        overlap.unique_missing_bytes,
        overlap.shared_chunks
    ));
    out.push_str("}\n");
    out
}

/// A `BENCH_store.json` re-read from disk (see [`parse_report`]).
#[derive(Debug, Clone)]
pub struct ParsedStoreReport {
    /// Whether the report came from a `--quick` smoke run.
    pub quick: bool,
    /// Shard-sweep points, in report order.
    pub points: Vec<ShardPoint>,
    /// The overlap phase.
    pub overlap: OverlapPoint,
}

/// Re-read a report produced by [`to_json`]. Hand-rolled like the
/// writer: each array/object entry occupies one line, so the shared
/// [`crate::report`] line-wise extraction is exact.
///
/// # Errors
///
/// Returns a description of the first malformed line or missing field.
pub fn parse_report(json: &str) -> Result<ParsedStoreReport, String> {
    let quick = crate::report::parse_quick(json)?;
    let mut points = Vec::new();
    for obj in crate::report::objects_with(json, "shards") {
        points.push(ShardPoint {
            shards: obj.usize_field("shards")?,
            chunks: obj.u64_field("chunks")?,
            bytes: obj.u64_field("bytes")?,
            cold_fetch_ns: obj.u64_field("cold_fetch_ns")?,
            cold_fetch_ns_rerun: obj.u64_field("cold_fetch_ns_rerun")?,
            warm_fetch_ns: obj.u64_field("warm_fetch_ns")?,
            fetched: obj.u64_field("fetched")?,
            warm_rack_hits: obj.u64_field("warm_rack_hits")?,
        });
    }
    if points.is_empty() {
        return Err("no shard_sweep[] entries found".into());
    }
    let obj = crate::report::object_with(json, "first_bytes_fetched")
        .map_err(|_| "missing \"overlap\" object".to_string())?;
    let overlap = OverlapPoint {
        first_bytes_fetched: obj.u64_field("first_bytes_fetched")?,
        second_bytes_fetched: obj.u64_field("second_bytes_fetched")?,
        unique_missing_bytes: obj.u64_field("unique_missing_bytes")?,
        shared_chunks: obj.u64_field("shared_chunks")?,
    };
    Ok(ParsedStoreReport {
        quick,
        points,
        overlap,
    })
}

/// The deterministic invariants both the smoke gate and the strict
/// check enforce: every quantity is simulated time or exact chunk
/// accounting, so there is no noise tolerance anywhere.
fn invariant_failures(points: &[ShardPoint], overlap: &OverlapPoint) -> Vec<String> {
    let mut failures = Vec::new();
    for need in SHARD_SWEEP {
        if !points.iter().any(|p| p.shards == need) {
            failures.push(format!("shard sweep lacks the {need}-shard point"));
        }
    }
    for pair in points.windows(2) {
        if pair[1].shards > pair[0].shards && pair[1].cold_fetch_ns >= pair[0].cold_fetch_ns {
            failures.push(format!(
                "cold fetch not monotonic: {} shards took {} ns, {} shards took {} ns",
                pair[0].shards, pair[0].cold_fetch_ns, pair[1].shards, pair[1].cold_fetch_ns
            ));
        }
    }
    for p in points {
        if !p.parity() {
            failures.push(format!(
                "{} shards: reruns disagree ({} vs {} ns) — the store is nondeterministic",
                p.shards, p.cold_fetch_ns, p.cold_fetch_ns_rerun
            ));
        }
        if p.fetched != p.chunks {
            failures.push(format!(
                "{} shards: cold start fetched {} of {} chunks",
                p.shards, p.fetched, p.chunks
            ));
        }
        if p.warm_rack_hits != p.chunks {
            failures.push(format!(
                "{} shards: warm start hit {} of {} chunks in the rack index",
                p.shards, p.warm_rack_hits, p.chunks
            ));
        }
        if p.warm_fetch_ns >= p.cold_fetch_ns {
            failures.push(format!(
                "{} shards: warm start ({} ns) not faster than cold ({} ns)",
                p.shards, p.warm_fetch_ns, p.cold_fetch_ns
            ));
        }
    }
    if !overlap.exact() {
        failures.push(format!(
            "overlap: second node fetched {} bytes but only {} bytes were rack-absent \
             — duplicate chunks were re-downloaded",
            overlap.second_bytes_fetched, overlap.unique_missing_bytes
        ));
    }
    if overlap.shared_chunks == 0 {
        failures.push("overlap: images share no chunks — the phase tests nothing".into());
    }
    if overlap.second_bytes_fetched == 0
        || overlap.second_bytes_fetched >= overlap.first_bytes_fetched
    {
        failures.push(format!(
            "overlap: second fetch ({} bytes) should be a nonzero strict subset of the \
             first ({} bytes)",
            overlap.second_bytes_fetched, overlap.first_bytes_fetched
        ));
    }
    failures
}

/// The smoke gate (`--gate`): JSON shape plus every deterministic
/// invariant. Quick runs pass; the speedup floor is reserved for the
/// committed full run, whose larger image amortizes per-request latency.
pub fn gate_failures(points: &[ShardPoint], overlap: &OverlapPoint, json: &str) -> Vec<String> {
    let mut failures = Vec::new();
    for need in [
        "\"bench\"",
        "\"targets\"",
        "\"shard_sweep\"",
        "\"cold_fetch_ns\"",
        "\"cold_fetch_ns_rerun\"",
        "\"overlap\"",
        "\"unique_missing_bytes\"",
    ] {
        if !json.contains(need) {
            failures.push(format!("report is missing the {need} field"));
        }
    }
    failures.extend(invariant_failures(points, overlap));
    failures
}

/// The strict acceptance check applied to the *committed*
/// `BENCH_store.json` (the `--check` mode of `flac-store-scale`):
///
/// * full (non-quick) run covering the 1/4/8 shard sweep;
/// * cold fetch time strictly improving 1 → 4 → 8 shards, with
///   rerun parity at every point (acceptance criterion (a));
/// * top-shard speedup over 1-shard serial ≥ [`SPEEDUP_TARGET`]
///   ("sharded parallel fetch beats 1-shard serial");
/// * overlap phase: `bytes_fetched == unique_missing_chunk_bytes`
///   exactly (acceptance criterion (b)).
///
/// Returns the list of failures (empty = pass).
pub fn check_report(report: &ParsedStoreReport) -> Vec<String> {
    let mut failures = Vec::new();
    if report.quick {
        failures.push("committed report must come from a full run, not --quick".into());
    }
    failures.extend(invariant_failures(&report.points, &report.overlap));
    let serial = report.points.iter().find(|p| p.shards == 1);
    let top = report.points.iter().max_by_key(|p| p.shards);
    if let (Some(serial), Some(top)) = (serial, top) {
        let speedup = serial.cold_fetch_ns as f64 / top.cold_fetch_ns.max(1) as f64;
        if speedup < SPEEDUP_TARGET {
            failures.push(format!(
                "parallel fetch speedup {:.2} at {} shards < {SPEEDUP_TARGET:.1} over 1-shard serial",
                speedup, top.shards
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_monotonic_deterministic_and_warm_wins() {
        let points = run_shard_sweep(StoreScaleConfig::quick());
        let overlap = run_overlap(StoreScaleConfig::quick());
        let failures = gate_failures(&points, &overlap, &to_json(&points, &overlap, true));
        assert!(failures.is_empty(), "gate failures: {failures:?}");
    }

    #[test]
    fn overlap_downloads_exactly_the_rack_absent_bytes() {
        let o = run_overlap(StoreScaleConfig::quick());
        // 4 layers of 16 pages; B shares A's last two layers.
        assert_eq!(o.shared_chunks, 32);
        assert_eq!(o.unique_missing_bytes, 32 * CHUNK_SIZE as u64);
        assert!(o.exact(), "{o:?}");
    }

    #[test]
    fn parse_report_roundtrips_the_writer() {
        let points = run_shard_sweep(StoreScaleConfig::quick());
        let overlap = run_overlap(StoreScaleConfig::quick());
        let json = to_json(&points, &overlap, true);
        let parsed = parse_report(&json).expect("parse");
        assert!(parsed.quick);
        assert_eq!(parsed.points.len(), points.len());
        for (a, b) in parsed.points.iter().zip(&points) {
            assert_eq!(a.shards, b.shards);
            assert_eq!(a.cold_fetch_ns, b.cold_fetch_ns);
            assert_eq!(a.warm_rack_hits, b.warm_rack_hits);
        }
        assert_eq!(
            parsed.overlap.second_bytes_fetched,
            overlap.second_bytes_fetched
        );
    }

    #[test]
    fn check_report_rejects_quick_runs_and_broken_monotonicity() {
        let points = run_shard_sweep(StoreScaleConfig::quick());
        let overlap = run_overlap(StoreScaleConfig::quick());
        let quick_json = to_json(&points, &overlap, true);
        let parsed = parse_report(&quick_json).expect("parse");
        assert!(check_report(&parsed).iter().any(|f| f.contains("--quick")));

        let mut broken = parsed.clone();
        broken.quick = false;
        broken.points[2].cold_fetch_ns = broken.points[0].cold_fetch_ns + 1;
        broken.points[2].cold_fetch_ns_rerun = broken.points[2].cold_fetch_ns;
        assert!(check_report(&broken)
            .iter()
            .any(|f| f.contains("monotonic")));
    }
}
