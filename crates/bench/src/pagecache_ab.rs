//! Ablation A2 — shared page cache vs. per-node page caches.
//!
//! The paper's §3.4 claim: sharing the page cache (a) removes redundant
//! copies of the same file pages across nodes, and (b) the saved memory
//! becomes extra cache capacity. We open the same file set from every
//! node and compare total cache memory and mean access latency against
//! the conventional design where each node caches privately.

use flacdk::alloc::GlobalAllocator;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use flacos_fs::block::BlockDevice;
use flacos_fs::memfs::{FsShared, MemFs};
use flacos_mem::PAGE_SIZE;
use rack_sim::{Rack, RackConfig};
use std::sync::Arc;

/// Result of one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageCacheRow {
    /// Nodes reading the file set.
    pub nodes: usize,
    /// File-set size in bytes.
    pub fileset_bytes: u64,
    /// Cache memory consumed by the shared design.
    pub shared_bytes: u64,
    /// Cache memory the per-node design would consume (nodes × set).
    pub per_node_bytes: u64,
    /// Mean warm read latency of one page through the shared cache, ns.
    pub shared_read_ns: u64,
}

impl PageCacheRow {
    /// Memory saved by sharing.
    pub fn saved_bytes(&self) -> u64 {
        self.per_node_bytes - self.shared_bytes
    }

    /// Capacity multiplier: how much more the rack can cache in the
    /// same footprint.
    pub fn capacity_gain(&self) -> f64 {
        self.per_node_bytes as f64 / self.shared_bytes.max(1) as f64
    }
}

/// Run with `nodes` nodes reading `files` files of `pages_per_file`
/// pages each.
pub fn run_cell(nodes: usize, files: usize, pages_per_file: u64) -> PageCacheRow {
    run_cell_on(
        &Rack::new(RackConfig::n_node(nodes).with_global_mem(256 << 20)),
        nodes,
        files,
        pages_per_file,
    )
}

fn run_cell_on(rack: &Rack, nodes: usize, files: usize, pages_per_file: u64) -> PageCacheRow {
    let alloc = GlobalAllocator::new(rack.global().clone());
    let epochs = EpochManager::alloc(rack.global(), nodes).expect("epochs");
    let fs = FsShared::alloc(
        rack.global(),
        nodes,
        alloc,
        epochs,
        RetireList::new(),
        Arc::new(BlockDevice::nvme(rack.global(), nodes).expect("device")),
    )
    .expect("fs");

    // Node 0 writes the file set (e.g. container images all nodes need).
    let mut fs0 = MemFs::mount(fs.clone(), rack.node(0));
    let content = vec![0xC3u8; (pages_per_file as usize) * PAGE_SIZE];
    for f in 0..files {
        fs0.write_file(&format!("/shared-{f}"), &content)
            .expect("write");
    }

    // Every node reads every file; pages are served from the single
    // shared copy.
    let mut total_read_ns = 0u64;
    let mut reads = 0u64;
    for n in 0..nodes {
        let mut fsn = MemFs::mount(fs.clone(), rack.node(n));
        for f in 0..files {
            let node = rack.node(n);
            let t0 = node.clock().now();
            let data = fsn.read_file(&format!("/shared-{f}")).expect("read");
            total_read_ns += node.clock().now() - t0;
            reads += pages_per_file;
            assert_eq!(data.len(), content.len());
        }
    }

    let fileset_bytes = (files as u64) * pages_per_file * PAGE_SIZE as u64;
    PageCacheRow {
        nodes,
        fileset_bytes,
        shared_bytes: fs.cache().memory_bytes() as u64,
        per_node_bytes: fileset_bytes * nodes as u64,
        shared_read_ns: total_read_ns / reads.max(1),
    }
}

/// Run the node-count sweep.
pub fn run() -> Vec<PageCacheRow> {
    [2usize, 4, 8].iter().map(|&n| run_cell(n, 4, 64)).collect()
}

/// Rack-wide metrics behind one representative cell (2 nodes × 2 files):
/// operation counts, latency histograms, and the `page_cache` hit/miss
/// counters that explain the capacity gain.
pub fn metrics() -> rack_sim::RackReport {
    let rack = Rack::new(RackConfig::n_node(2).with_global_mem(256 << 20));
    rack.enable_tracing();
    run_cell_on(&rack, 2, 2, 16);
    rack.metrics_report()
}

/// Render the sweep.
pub fn report(rows: &[PageCacheRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                crate::table::fmt_bytes(r.fileset_bytes),
                crate::table::fmt_bytes(r.shared_bytes),
                crate::table::fmt_bytes(r.per_node_bytes),
                format!("{:.1}x", r.capacity_gain()),
                crate::table::fmt_ns(r.shared_read_ns),
            ]
        })
        .collect();
    format!(
        "Ablation A2: shared page cache vs per-node caches\n\n{}",
        crate::table::render(
            &[
                "nodes",
                "file set",
                "shared cache",
                "per-node caches",
                "capacity gain",
                "page read"
            ],
            &table_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_saves_linear_memory() {
        let row = run_cell(4, 2, 16);
        // Shared design holds ~one copy; per-node holds four.
        assert!(row.shared_bytes <= row.fileset_bytes + (64 * PAGE_SIZE as u64));
        assert_eq!(row.per_node_bytes, row.fileset_bytes * 4);
        assert!(row.capacity_gain() > 3.0);
        assert!(row.saved_bytes() > 0);
    }

    #[test]
    fn warm_reads_are_fast() {
        let row = run_cell(2, 1, 16);
        // A warm shared-cache page read is a lookup + burst fill, well
        // under 100 µs.
        assert!(
            row.shared_read_ns < 100_000,
            "page read {} ns",
            row.shared_read_ns
        );
    }
}
