//! `cache-scale` — wall-clock scalability gate for the sharded node cache.
//!
//! ```text
//! cache-scale [--quick] [--out PATH] [--gate] [--threads-max N]
//! cache-scale --check PATH
//! ```
//!
//! * `--quick`       — short run (~1 s) for the CI smoke in `verify.sh`
//! * `--out PATH`    — where to write the JSON report (default `BENCH_cache.json`)
//! * `--gate`        — exit nonzero if the report is malformed, if the two
//!   implementations disagree on simulated cost, if the sharded cache's
//!   single-thread throughput regresses more than 20 % vs the baseline,
//!   if the miss-heavy (hit = 50 %) sweep has the sharded cache losing to
//!   the baseline by more than 10 % at any thread count, or (on hosts
//!   with ≥ 8 CPUs, where parallel speedup is physically expressible) if
//!   the 8-thread speedup falls below 4x
//! * `--threads-max N` — cap the thread sweep (default 8)
//! * `--check PATH`  — run no benchmark; re-read a *committed* report and
//!   enforce the strict acceptance targets: full run, `sim_ns` parity at
//!   every point, and sharded ≥ baseline at **every** thread count of the
//!   miss-heavy sweep (no noise tolerance — the committed artifact is
//!   best-of-reps, so a loss there is a real regression)
//!
//! The full (non-`--quick`) run is the one committed as `BENCH_cache.json`;
//! its acceptance targets (≥ 4x at the top thread count, single-thread
//! within 5 %, miss-heavy min thread ratio ≥ 1) are recorded in the
//! report's `targets` object, alongside `host_cpus` so a reader can judge
//! whether the speedup target was armed.

use bench::cache_scale::{
    check_report, host_cpus, parse_report, run_sweep, summarize, to_json, ScaleConfig,
    ScaleSummary, SPEEDUP_TARGET_MIN_CPUS, THREAD_SWEEP,
};

struct Args {
    quick: bool,
    out: String,
    gate: bool,
    threads_max: usize,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        quick: false,
        out: String::from("BENCH_cache.json"),
        gate: false,
        threads_max: 8,
        check: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--quick" => {
                parsed.quick = true;
                i += 1;
            }
            "--gate" => {
                parsed.gate = true;
                i += 1;
            }
            "--out" => {
                parsed.out = need_value(i)?.clone();
                i += 2;
            }
            "--check" => {
                parsed.check = Some(need_value(i)?.clone());
                i += 2;
            }
            "--threads-max" => {
                parsed.threads_max = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--threads-max: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if parsed.threads_max == 0 {
        return Err("--threads-max must be >= 1".into());
    }
    Ok(parsed)
}

/// `--check PATH`: validate a committed report without benchmarking.
fn run_check(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cache-scale: reading {path}: {e}");
            std::process::exit(2);
        }
    };
    let report = match parse_report(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cache-scale: CHECK FAILURE: {path}: {e}");
            std::process::exit(1);
        }
    };
    let failures = check_report(&report);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("cache-scale: CHECK FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "cache-scale: check OK — {path}: {} points, miss-heavy sweep holds sharded >= baseline",
        report.points.len()
    );
    std::process::exit(0);
}

fn gate_failures(summaries: &[ScaleSummary], json: &str, cpus: usize) -> Vec<String> {
    let mut failures = Vec::new();
    for field in [
        "\"bench\"",
        "\"targets\"",
        "\"results\"",
        "\"summaries\"",
        "\"ops_per_sec\"",
        "\"sim_ns\"",
        "\"single_thread_ratio\"",
        "\"speedup_top\"",
        "\"sim_ns_parity\"",
        "\"host_cpus\"",
    ] {
        if !json.contains(field) {
            failures.push(format!("report is missing the {field} field"));
        }
    }
    for s in summaries {
        if !s.sim_ns_parity {
            failures.push(format!(
                "hit_permille={}: sharded and baseline charged different simulated ns \
                 for the identical workload",
                s.hit_permille
            ));
        }
        // The smoke gate tolerates machine noise: fail only on a > 20 %
        // single-thread regression. The committed full run documents the
        // tighter 5 % acceptance target.
        if s.single_thread_ratio < 0.80 {
            failures.push(format!(
                "hit_permille={}: single-thread throughput ratio {:.3} < 0.80",
                s.hit_permille, s.single_thread_ratio
            ));
        }
        // Parallel wall-clock speedup needs CPUs to run on: the 4x target
        // is only physically expressible when the host grants the sweep's
        // top thread count real cores (a 1-CPU CI container time-slices
        // all 8 threads onto one core, capping aggregate throughput at
        // per-op efficiency). On capable hosts it is enforced.
        if cpus >= SPEEDUP_TARGET_MIN_CPUS && s.speedup_top < 4.0 {
            failures.push(format!(
                "hit_permille={}: speedup {:.2} at {} threads < 4.0 on a {cpus}-CPU host",
                s.hit_permille, s.speedup_top, s.top_threads
            ));
        }
        // Miss-heavy gate: per-op efficiency, not parallel speedup, so it
        // arms regardless of host CPU count. The smoke tolerance is 10 %;
        // the strict ≥ 1.0 target is enforced on the committed report by
        // `--check`.
        if s.hit_permille == 500 && s.min_thread_ratio < 0.90 {
            failures.push(format!(
                "hit_permille=500: sharded/baseline ratio {:.3} < 0.90 at some thread count \
                 — the miss path is losing to the single-mutex baseline",
                s.min_thread_ratio
            ));
        }
    }
    failures
}

fn main() {
    let args = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cache-scale: {e}");
            eprintln!(
                "usage: cache-scale [--quick] [--out PATH] [--gate] [--threads-max N] \
                 | --check PATH"
            );
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.check {
        run_check(path);
    }
    let (quick, out, gate, threads_max) = (args.quick, args.out, args.gate, args.threads_max);

    let threads: Vec<usize> = THREAD_SWEEP
        .iter()
        .copied()
        .filter(|&t| t <= threads_max)
        .collect();
    let hit_ratios: &[u64] = ScaleConfig::hit_ratios(quick);

    let cpus = host_cpus();
    println!(
        "cache-scale: {} mode, threads {threads:?}, hit ratios (permille) {hit_ratios:?}, \
         host CPUs {cpus}",
        if quick { "quick" } else { "full" }
    );

    let mut sweeps = Vec::new();
    for &hit_permille in hit_ratios {
        let cfg = if quick {
            ScaleConfig::quick(hit_permille)
        } else {
            ScaleConfig::full(hit_permille)
        };
        let points = run_sweep(cfg, &threads);
        for p in &points {
            println!(
                "  {:>8} t={} hit={:.1}% {:>12.0} ops/s (sim {} ns)",
                p.cache_impl,
                p.threads,
                p.hit_permille as f64 / 10.0,
                p.ops_per_sec,
                p.sim_ns
            );
        }
        let s = summarize(&points);
        println!(
            "  summary hit={:.1}%: single_thread_ratio={:.3} speedup@{}t={:.2} \
             min_thread_ratio={:.3} parity={}",
            s.hit_permille as f64 / 10.0,
            s.single_thread_ratio,
            s.top_threads,
            s.speedup_top,
            s.min_thread_ratio,
            s.sim_ns_parity
        );
        sweeps.push((points, s));
    }

    let summaries: Vec<ScaleSummary> = sweeps.iter().map(|(_, s)| *s).collect();
    let json = to_json(&sweeps, quick, cpus);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cache-scale: writing {out}: {e}");
        std::process::exit(2);
    }
    println!("cache-scale: wrote {out}");

    if gate {
        // Re-read what actually landed on disk so the gate catches
        // truncated or clobbered reports, not just in-memory state.
        let on_disk = match std::fs::read_to_string(&out) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cache-scale: re-reading {out}: {e}");
                std::process::exit(1);
            }
        };
        let failures = gate_failures(&summaries, &on_disk, cpus);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("cache-scale: GATE FAILURE: {f}");
            }
            std::process::exit(1);
        }
        println!("cache-scale: gate OK");
    }
}
