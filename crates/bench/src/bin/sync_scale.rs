//! `flac-sync-scale` — writer-scaling gate for node-replicated sync.
//!
//! ```text
//! flac-sync-scale [--quick] [--out PATH] [--gate]
//! flac-sync-scale --check PATH
//! ```
//!
//! * `--quick`    — small sweep (~seconds) for the CI smoke in `verify.sh`
//! * `--out PATH` — where to write the JSON report (default `BENCH_sync.json`)
//! * `--gate`     — exit nonzero unless every deterministic invariant
//!   holds: rerun parity at every point, node-replicated at least as
//!   fast as delegated at every multi-writer point (strictly faster at
//!   ≥ 2 of the pure-write {2,4,8}-writer points), and zero fabric
//!   operations on the replica-hit read path
//! * `--check PATH` — run no benchmark; re-read a *committed* report
//!   and enforce the strict acceptance targets: full run, full sweep
//!   coverage, and every gate invariant
//!
//! The full (non-`--quick`) run is the one committed as
//! `BENCH_sync.json`. Everything here is simulated time on a
//! deterministic driver, so the gate and the check carry no noise
//! tolerance at all.

use bench::sync_scale::{
    check_report, gate_failures, parse_report, run_replica_probe, run_sweep, to_json,
    SyncScaleConfig,
};

struct Args {
    quick: bool,
    out: String,
    gate: bool,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        quick: false,
        out: String::from("BENCH_sync.json"),
        gate: false,
        check: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--quick" => {
                parsed.quick = true;
                i += 1;
            }
            "--gate" => {
                parsed.gate = true;
                i += 1;
            }
            "--out" => {
                parsed.out = need_value(i)?.clone();
                i += 2;
            }
            "--check" => {
                parsed.check = Some(need_value(i)?.clone());
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(parsed)
}

/// `--check PATH`: validate a committed report without benchmarking.
fn run_check(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("flac-sync-scale: reading {path}: {e}");
            std::process::exit(2);
        }
    };
    let report = match parse_report(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flac-sync-scale: CHECK FAILURE: {path}: {e}");
            std::process::exit(1);
        }
    };
    let failures = check_report(&report);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("flac-sync-scale: CHECK FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "flac-sync-scale: check OK — {path}: node-replicated holds at every \
         multi-writer point across {} measurements, replica-hit reads = 0 fabric ops",
        report.points.len()
    );
    std::process::exit(0);
}

fn main() {
    let args = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("flac-sync-scale: {e}");
            eprintln!("usage: flac-sync-scale [--quick] [--out PATH] [--gate] | --check PATH");
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.check {
        run_check(path);
    }

    let cfg = if args.quick {
        SyncScaleConfig::quick()
    } else {
        SyncScaleConfig::full()
    };
    println!(
        "flac-sync-scale: {} mode, {} write rounds per point",
        if args.quick { "quick" } else { "full" },
        cfg.rounds
    );

    let points = run_sweep(cfg);
    for p in &points {
        println!(
            "  {:>16} writers={} reads={:>2}% ops={:>6} avg={:>6} ns/op parity={}",
            p.policy,
            p.writers,
            p.read_pct,
            p.ops,
            p.avg_ns_per_op,
            p.parity()
        );
    }
    let probe = run_replica_probe();
    println!("  replica-hit read path: {probe} fabric ops across 64 reads");

    let json = to_json(cfg, &points, probe);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("flac-sync-scale: writing {}: {e}", args.out);
        std::process::exit(2);
    }
    println!("flac-sync-scale: report written to {}", args.out);

    if args.gate {
        let failures = gate_failures(&points, probe);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("flac-sync-scale: GATE FAILURE: {f}");
            }
            std::process::exit(1);
        }
        println!("flac-sync-scale: gate OK");
    }
}
