//! `flac-loadgen` — the open-loop heavy-traffic serving benchmark.
//!
//! ```text
//! flac-loadgen [--quick] [--out PATH] [--gate] [--seed N]
//! flac-loadgen --check PATH
//! ```
//!
//! * `--quick`    — small client scales (~1 s) for the CI smoke in
//!   `verify.sh`
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_serve.json`)
//! * `--gate`     — exit nonzero if the freshly written report is
//!   malformed or violates the smoke invariants (zero RESP errors,
//!   seeded-rerun parity, ordered percentiles, FlacOS IPC p50 beating
//!   TCP/IP at every scale)
//! * `--seed N`   — xor this into every point's seed (determinism
//!   experiments; the committed report uses the default)
//! * `--check PATH` — run no benchmark; re-read a *committed* report
//!   and enforce the strict acceptance targets (full run, ≥ 3 client
//!   scales, both transports, plus everything `--gate` checks). Because
//!   every number is simulated-time-derived, the committed artifact is
//!   exactly reproducible and the check carries no noise tolerance.
//!
//! The full (non-`--quick`) run is the one committed as
//! `BENCH_serve.json`: 100 k / 300 k / 1 M simulated clients over both
//! transports, with p50/p99/p999 latency and saturation throughput per
//! point.

use bench::serve_scale::{check_report, parse_report, run_scale, to_json, ServeConfig};

struct Args {
    quick: bool,
    out: String,
    gate: bool,
    seed: u64,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        quick: false,
        out: String::from("BENCH_serve.json"),
        gate: false,
        seed: 0,
        check: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--quick" => {
                parsed.quick = true;
                i += 1;
            }
            "--gate" => {
                parsed.gate = true;
                i += 1;
            }
            "--out" => {
                parsed.out = need_value(i)?.clone();
                i += 2;
            }
            "--check" => {
                parsed.check = Some(need_value(i)?.clone());
                i += 2;
            }
            "--seed" => {
                parsed.seed = need_value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(parsed)
}

/// `--check PATH`: validate a committed report without benchmarking.
fn run_check(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("flac-loadgen: reading {path}: {e}");
            std::process::exit(2);
        }
    };
    let report = match parse_report(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flac-loadgen: CHECK FAILURE: {path}: {e}");
            std::process::exit(1);
        }
    };
    let failures = check_report(&report);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("flac-loadgen: CHECK FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "flac-loadgen: check OK — {path}: {} points, parity holds, \
         FlacOS IPC beats TCP/IP at every scale",
        report.points.len()
    );
    std::process::exit(0);
}

fn main() {
    let args = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("flac-loadgen: {e}");
            eprintln!(
                "usage: flac-loadgen [--quick] [--out PATH] [--gate] [--seed N] | --check PATH"
            );
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.check {
        run_check(path);
    }

    let scales = ServeConfig::scales(args.quick);
    println!(
        "flac-loadgen: {} mode, client scales {scales:?}, both transports, open loop + saturation",
        if args.quick { "quick" } else { "full" }
    );

    let mut points = Vec::new();
    for &clients in scales {
        let mut cfg = if args.quick {
            ServeConfig::quick(clients)
        } else {
            ServeConfig::full(clients)
        };
        cfg.seed ^= args.seed;
        let scale_points = match run_scale(&cfg) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("flac-loadgen: {clients} clients: simulation failed: {e}");
                std::process::exit(1);
            }
        };
        for p in &scale_points {
            println!(
                "  {:>10} clients={:>7} offered={:>9.0} rps achieved={:>9.0} rps \
                 p50={:>7} p99={:>8} p999={:>8} ns sat={:>10.0} rps parity={}",
                p.transport,
                p.clients,
                p.offered_rps,
                p.achieved_rps,
                p.p50_ns,
                p.p99_ns,
                p.p999_ns,
                p.saturation_rps,
                p.parity
            );
        }
        points.extend(scale_points);
    }

    let json = to_json(&points, args.quick);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("flac-loadgen: writing {}: {e}", args.out);
        std::process::exit(2);
    }
    println!("flac-loadgen: wrote {}", args.out);

    if args.gate {
        // Re-read what actually landed on disk so the gate catches
        // truncated or clobbered reports, not just in-memory state.
        let on_disk = match std::fs::read_to_string(&args.out) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("flac-loadgen: re-reading {}: {e}", args.out);
                std::process::exit(1);
            }
        };
        let report = match parse_report(&on_disk) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("flac-loadgen: GATE FAILURE: {e}");
                std::process::exit(1);
            }
        };
        // The smoke gate applies the same per-point invariants as
        // `--check` but accepts quick runs and fewer scales.
        let failures: Vec<String> = check_report(&report)
            .into_iter()
            .filter(|f| !f.contains("--quick") && !f.contains(">= 3 client scales"))
            .collect();
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("flac-loadgen: GATE FAILURE: {f}");
            }
            std::process::exit(1);
        }
        println!("flac-loadgen: gate OK");
    }
}
