//! Regenerate the paper's figures/tables and the ablations.
//!
//! ```text
//! figures [fig4|startup|sync|pagecache|ipc|faultbox|dedup|fabric|tiering|adaptive|all]
//! ```
//!
//! Every figure is followed by the rack-wide metrics decomposition of a
//! representative cell — operation counts, per-cost-class latency
//! histograms, and per-subsystem counters — so the headline numbers can
//! be traced back to the simulated operations that produced them.

use bench::{
    adaptive_ab, dedup_ab, fabric_ab, faultbox_ab, fig4, ipc_ab, pagecache_ab, startup, sync_ab,
    tiering_ab,
};
use rack_sim::RackReport;

fn print_metrics(what: &str, report: &RackReport) {
    println!("metrics — {what}:\n{report}\n");
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let mut ran = false;

    if matches!(arg.as_str(), "fig4" | "all") {
        println!("{}\n", fig4::report(&fig4::run(1000)));
        print_metrics(
            "Figure 4 representative cell (FlacOS SET, 4 KiB)",
            &fig4::metrics(200),
        );
        ran = true;
    }
    if matches!(arg.as_str(), "startup" | "all") {
        println!("{}\n", startup::report(&startup::run()));
        print_metrics("container startup (small image)", &startup::metrics());
        ran = true;
    }
    if matches!(arg.as_str(), "sync" | "all") {
        println!("{}\n", sync_ab::report(&sync_ab::run(400)));
        print_metrics(
            "A1 representative cell (rcu, 2 nodes, 50% reads)",
            &sync_ab::metrics(400),
        );
        ran = true;
    }
    if matches!(arg.as_str(), "pagecache" | "all") {
        println!("{}\n", pagecache_ab::report(&pagecache_ab::run()));
        print_metrics(
            "A2 representative cell (2 nodes, shared file set)",
            &pagecache_ab::metrics(),
        );
        ran = true;
    }
    if matches!(arg.as_str(), "ipc" | "all") {
        println!("{}\n", ipc_ab::report(&ipc_ab::run(200)));
        print_metrics(
            "A4 representative point (FlacOS echo, 4 KiB)",
            &ipc_ab::metrics(200),
        );
        ran = true;
    }
    if matches!(arg.as_str(), "faultbox" | "all") {
        println!("{}\n", faultbox_ab::report(&faultbox_ab::run()));
        print_metrics(
            "A3 representative cell (8 apps, fault-box path)",
            &faultbox_ab::metrics(),
        );
        ran = true;
    }
    if matches!(arg.as_str(), "dedup" | "all") {
        println!("{}\n", dedup_ab::report(&dedup_ab::run()));
        print_metrics(
            "A5 representative cell (4 images, shared layers)",
            &dedup_ab::metrics(),
        );
        ran = true;
    }
    if matches!(arg.as_str(), "fabric" | "all") {
        println!("{}\n", fabric_ab::report(&fabric_ab::run(300)));
        print_metrics(
            "A6 representative cell (HCCS, FlacOS SET, 4 KiB)",
            &fabric_ab::metrics(300),
        );
        ran = true;
    }

    if matches!(arg.as_str(), "tiering" | "all") {
        println!("{}\n", tiering_ab::report(&tiering_ab::run()));
        print_metrics(
            "A7 representative cell (zipf 0.99, daemon on)",
            &tiering_ab::metrics(),
        );
        ran = true;
    }

    if matches!(arg.as_str(), "adaptive" | "all") {
        println!("{}\n", adaptive_ab::report(&adaptive_ab::run()));
        print_metrics(
            "A8 representative cell (adaptive driver, 25% reads)",
            &adaptive_ab::metrics(),
        );
        ran = true;
    }

    if !ran {
        eprintln!(
            "usage: figures [fig4|startup|sync|pagecache|ipc|faultbox|dedup|fabric|tiering|adaptive|all]"
        );
        std::process::exit(2);
    }
}
