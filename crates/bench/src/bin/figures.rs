//! Regenerate the paper's figures/tables and the ablations.
//!
//! ```text
//! figures [fig4|startup|sync|pagecache|ipc|faultbox|dedup|fabric|all]
//! ```

use bench::{dedup_ab, fabric_ab, faultbox_ab, fig4, ipc_ab, pagecache_ab, startup, sync_ab};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let mut ran = false;

    if matches!(arg.as_str(), "fig4" | "all") {
        println!("{}\n", fig4::report(&fig4::run(1000)));
        ran = true;
    }
    if matches!(arg.as_str(), "startup" | "all") {
        println!("{}\n", startup::report(&startup::run()));
        ran = true;
    }
    if matches!(arg.as_str(), "sync" | "all") {
        println!("{}\n", sync_ab::report(&sync_ab::run(400)));
        ran = true;
    }
    if matches!(arg.as_str(), "pagecache" | "all") {
        println!("{}\n", pagecache_ab::report(&pagecache_ab::run()));
        ran = true;
    }
    if matches!(arg.as_str(), "ipc" | "all") {
        println!("{}\n", ipc_ab::report(&ipc_ab::run(200)));
        ran = true;
    }
    if matches!(arg.as_str(), "faultbox" | "all") {
        println!("{}\n", faultbox_ab::report(&faultbox_ab::run()));
        ran = true;
    }
    if matches!(arg.as_str(), "dedup" | "all") {
        println!("{}\n", dedup_ab::report(&dedup_ab::run()));
        ran = true;
    }
    if matches!(arg.as_str(), "fabric" | "all") {
        println!("{}\n", fabric_ab::report(&fabric_ab::run(300)));
        ran = true;
    }

    if !ran {
        eprintln!("usage: figures [fig4|startup|sync|pagecache|ipc|faultbox|dedup|fabric|all]");
        std::process::exit(2);
    }
}
