//! `flac-topo-scale` — topology depth × page size tiering gate.
//!
//! ```text
//! flac-topo-scale [--quick] [--out PATH] [--gate]
//! flac-topo-scale --check PATH
//! ```
//!
//! * `--quick`    — small sweep (~seconds) for the CI smoke in `verify.sh`
//! * `--out PATH` — where to write the JSON report (default `BENCH_topo.json`)
//! * `--gate`     — exit nonzero unless every deterministic invariant
//!   holds: the region probe pins exactly 512 page-wise vs 1
//!   region-wise shootdown rounds, the huge arm beats the base arm's
//!   p50 and round count at the same local-DRAM budget on every
//!   topology, and every fixed-seed rerun reproduces byte-identically
//! * `--check PATH` — run no benchmark; re-read a *committed* report
//!   and enforce the strict acceptance targets: full run, full sweep
//!   coverage, and every gate invariant
//!
//! The full (non-`--quick`) run is the one committed as
//! `BENCH_topo.json`. Everything here is simulated time on a
//! deterministic driver, so the gate and the check carry no noise
//! tolerance at all.

use bench::topo_scale::{
    check_report, gate_failures, parse_report, region_probe, run_sweep, to_json, TopoScaleConfig,
};

struct Args {
    quick: bool,
    out: String,
    gate: bool,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        quick: false,
        out: String::from("BENCH_topo.json"),
        gate: false,
        check: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--quick" => {
                parsed.quick = true;
                i += 1;
            }
            "--gate" => {
                parsed.gate = true;
                i += 1;
            }
            "--out" => {
                parsed.out = need_value(i)?.clone();
                i += 2;
            }
            "--check" => {
                parsed.check = Some(need_value(i)?.clone());
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(parsed)
}

/// `--check PATH`: validate a committed report without benchmarking.
fn run_check(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("flac-topo-scale: reading {path}: {e}");
            std::process::exit(2);
        }
    };
    let report = match parse_report(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flac-topo-scale: CHECK FAILURE: {path}: {e}");
            std::process::exit(1);
        }
    };
    let failures = check_report(&report);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("flac-topo-scale: CHECK FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "flac-topo-scale: check OK — {path}: region probe ({}, {}) shootdown \
         rounds, huge arm beats base on every topology, reruns byte-identical",
        report.probe.0, report.probe.1
    );
    std::process::exit(0);
}

fn main() {
    let args = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("flac-topo-scale: {e}");
            eprintln!("usage: flac-topo-scale [--quick] [--out PATH] [--gate] | --check PATH");
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.check {
        run_check(path);
    }

    let cfg = if args.quick {
        TopoScaleConfig::quick()
    } else {
        TopoScaleConfig::full()
    };
    println!(
        "flac-topo-scale: {} mode, {} measured accesses per arm",
        if args.quick { "quick" } else { "full" },
        cfg.measured
    );

    let probe = region_probe();
    println!(
        "  region promotion: {} page-wise shootdown rounds vs {} ranged round",
        probe.0, probe.1
    );
    let rows = run_sweep(cfg);
    for r in &rows {
        println!(
            "  {:>4}/{:<4} p50={:>6} ns p99={:>6} ns promoted={:>4} regions={} \
             rounds={:>4} parity={}",
            r.topo,
            r.mode,
            r.p50_ns,
            r.p99_ns,
            r.promoted,
            r.region_promotions,
            r.shootdown_rounds,
            r.parity()
        );
    }

    let json = to_json(cfg, &rows, probe);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("flac-topo-scale: writing {}: {e}", args.out);
        std::process::exit(2);
    }
    println!("flac-topo-scale: report written to {}", args.out);

    if args.gate {
        let failures = gate_failures(&rows, probe);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("flac-topo-scale: GATE FAILURE: {f}");
            }
            std::process::exit(1);
        }
        println!("flac-topo-scale: gate OK");
    }
}
