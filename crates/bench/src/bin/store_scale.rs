//! `flac-store-scale` — shard-scaling and dedup gate for `flac-store`.
//!
//! ```text
//! flac-store-scale [--quick] [--out PATH] [--gate]
//! flac-store-scale --check PATH
//! ```
//!
//! * `--quick`    — small image (~1 s) for the CI smoke in `verify.sh`
//! * `--out PATH` — where to write the JSON report (default `BENCH_store.json`)
//! * `--gate`     — exit nonzero unless every deterministic invariant
//!   holds: shard sweep covers 1/4/8 with cold fetch time strictly
//!   improving, rerun parity at every point, warm starts beating cold,
//!   and the overlap phase downloading exactly the rack-absent bytes
//! * `--check PATH` — run no benchmark; re-read a *committed* report
//!   and enforce the strict acceptance targets: full run, all gate
//!   invariants, and top-shard parallel speedup ≥ 2x over 1-shard serial
//!
//! The full (non-`--quick`) run is the one committed as
//! `BENCH_store.json`. Everything here is simulated time, so the gate
//! and the check carry no noise tolerance at all.

use bench::store_scale::{
    check_report, gate_failures, parse_report, run_overlap, run_shard_sweep, to_json,
    StoreScaleConfig,
};

struct Args {
    quick: bool,
    out: String,
    gate: bool,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        quick: false,
        out: String::from("BENCH_store.json"),
        gate: false,
        check: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--quick" => {
                parsed.quick = true;
                i += 1;
            }
            "--gate" => {
                parsed.gate = true;
                i += 1;
            }
            "--out" => {
                parsed.out = need_value(i)?.clone();
                i += 2;
            }
            "--check" => {
                parsed.check = Some(need_value(i)?.clone());
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(parsed)
}

/// `--check PATH`: validate a committed report without benchmarking.
fn run_check(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("flac-store-scale: reading {path}: {e}");
            std::process::exit(2);
        }
    };
    let report = match parse_report(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flac-store-scale: CHECK FAILURE: {path}: {e}");
            std::process::exit(1);
        }
    };
    let failures = check_report(&report);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("flac-store-scale: CHECK FAILURE: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "flac-store-scale: check OK — {path}: cold fetch improves across {} shard points, \
         overlap downloads exactly the rack-absent bytes",
        report.points.len()
    );
    std::process::exit(0);
}

fn main() {
    let args = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("flac-store-scale: {e}");
            eprintln!("usage: flac-store-scale [--quick] [--out PATH] [--gate] | --check PATH");
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.check {
        run_check(path);
    }

    let cfg = if args.quick {
        StoreScaleConfig::quick()
    } else {
        StoreScaleConfig::full()
    };
    println!(
        "flac-store-scale: {} mode, image {} pages x {} layers",
        if args.quick { "quick" } else { "full" },
        cfg.pages,
        cfg.layers
    );

    let points = run_shard_sweep(cfg);
    for p in &points {
        println!(
            "  shards={} cold={:>12} ns (rerun {:>12} ns) warm={:>9} ns fetched={} rack_hits={}",
            p.shards,
            p.cold_fetch_ns,
            p.cold_fetch_ns_rerun,
            p.warm_fetch_ns,
            p.fetched,
            p.warm_rack_hits
        );
    }
    let serial = points.iter().find(|p| p.shards == 1);
    let top = points.iter().max_by_key(|p| p.shards);
    if let (Some(s), Some(t)) = (serial, top) {
        println!(
            "  parallel fetch speedup at {} shards: {:.2}x over 1-shard serial",
            t.shards,
            s.cold_fetch_ns as f64 / t.cold_fetch_ns.max(1) as f64
        );
    }
    let overlap = run_overlap(cfg);
    println!(
        "  overlap: second node fetched {} bytes, rack-absent {} bytes, shared {} chunks",
        overlap.second_bytes_fetched, overlap.unique_missing_bytes, overlap.shared_chunks
    );

    let json = to_json(&points, &overlap, args.quick);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("flac-store-scale: writing {}: {e}", args.out);
        std::process::exit(2);
    }
    println!("flac-store-scale: wrote {}", args.out);

    if args.gate {
        // Re-read what actually landed on disk so the gate catches
        // truncated or clobbered reports, not just in-memory state.
        let on_disk = match std::fs::read_to_string(&args.out) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("flac-store-scale: re-reading {}: {e}", args.out);
                std::process::exit(1);
            }
        };
        let failures = gate_failures(&points, &overlap, &on_disk);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("flac-store-scale: GATE FAILURE: {f}");
            }
            std::process::exit(1);
        }
        println!("flac-store-scale: gate OK");
    }
}
