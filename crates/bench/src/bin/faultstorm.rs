//! `flac-faultstorm` — run seeded rack-wide fault-storm campaigns and
//! check cross-subsystem invariants.
//!
//! ```text
//! flac-faultstorm [--seeds N] [--steps M] [--seed X] [--verify] [--tiering|--sync|--store]
//! ```
//!
//! * `--seeds N`  — campaigns to run, seeds `X, X+1, …, X+N-1` (default 8)
//! * `--steps M`  — scheduled storm steps per campaign (default 120)
//! * `--seed X`   — base seed (default 0xF1AC_5708)
//! * `--verify`   — re-run every campaign and assert its event log is
//!   byte-identical (the determinism guarantee)
//! * `--tiering`  — run the page-tiering campaign instead (staged
//!   migrations under crashes; old copy stays authoritative)
//! * `--sync`     — run the sync-cell campaigns instead: the delegated
//!   cell under owner crashes, then the node-replicated cell with
//!   combiners killed mid-batch (both fatal windows); no committed or
//!   published update lost or double-applied, log replay exact
//! * `--store`    — run the chunk-store campaign instead (cold starts
//!   under fetcher crashes; no chunk ever downloaded twice, index
//!   consistent and replay-exact after the heal)
//!
//! Exits nonzero if any invariant is violated or a replay diverges. To
//! reproduce a failing campaign, re-run with `--seeds 1 --seed <seed>`
//! using the seed printed in its survival row.

use bench::faultstorm::{
    run_campaign, run_nr_sync_campaign, run_store_campaign, run_sync_campaign,
    run_tiering_campaign, StoreSurvivalReport, SurvivalReport, SyncSurvivalReport,
    TieringSurvivalReport,
};

#[allow(clippy::type_complexity)]
fn parse_args() -> Result<(u64, u64, u32, bool, bool, bool, bool), String> {
    let mut seeds = 8u64;
    let mut steps = 120u32;
    let mut base_seed = 0xF1AC_5708u64;
    let mut verify = false;
    let mut tiering = false;
    let mut sync = false;
    let mut store = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--seeds" => {
                seeds = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
                i += 2;
            }
            "--steps" => {
                steps = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?;
                i += 2;
            }
            "--seed" => {
                let v = need_value(i)?;
                base_seed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(&hex.replace('_', ""), 16)
                        .map_err(|e| format!("--seed: {e}"))?
                } else {
                    v.parse().map_err(|e| format!("--seed: {e}"))?
                };
                i += 2;
            }
            "--verify" => {
                verify = true;
                i += 1;
            }
            "--tiering" => {
                tiering = true;
                i += 1;
            }
            "--sync" => {
                sync = true;
                i += 1;
            }
            "--store" => {
                store = true;
                i += 1;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if [tiering, sync, store].iter().filter(|&&m| m).count() > 1 {
        return Err("--tiering, --sync and --store are mutually exclusive".into());
    }
    Ok((seeds, base_seed, steps, verify, tiering, sync, store))
}

fn run_tiering(seeds: u64, base_seed: u64, steps: u32, verify: bool) -> u64 {
    println!("{}", TieringSurvivalReport::header());
    let mut failures = 0u64;
    let mut last: Option<TieringSurvivalReport> = None;
    for k in 0..seeds {
        let seed = base_seed + k;
        let report = run_tiering_campaign(seed, steps);
        println!("{}", report.row());
        for v in &report.violations {
            println!("    violation: {v}");
            failures += 1;
        }
        if verify {
            let replay = run_tiering_campaign(seed, steps);
            if replay.log_text != report.log_text {
                println!("    violation: replay of seed {seed:#x} DIVERGED");
                failures += 1;
            }
        }
        last = Some(report);
    }
    if let Some(report) = last {
        println!(
            "\nrack metrics of the last campaign (seed {:#018x}):",
            report.seed
        );
        println!("{}", report.metrics);
    }
    failures
}

fn run_sync(seeds: u64, base_seed: u64, steps: u32, verify: bool) -> u64 {
    let mut failures = 0u64;
    let mut last: Option<SyncSurvivalReport> = None;
    for (name, campaign) in [
        (
            "delegated cell (owner crashes)",
            run_sync_campaign as fn(u64, u32) -> SyncSurvivalReport,
        ),
        (
            "node-replicated cell (combiners killed mid-batch)",
            run_nr_sync_campaign as fn(u64, u32) -> SyncSurvivalReport,
        ),
    ] {
        println!("{name}:");
        println!("{}", SyncSurvivalReport::header());
        for k in 0..seeds {
            let seed = base_seed + k;
            let report = campaign(seed, steps);
            println!("{}", report.row());
            for v in &report.violations {
                println!("    violation: {v}");
                failures += 1;
            }
            if verify {
                let replay = campaign(seed, steps);
                if replay.log_text != report.log_text {
                    println!("    violation: replay of seed {seed:#x} DIVERGED");
                    failures += 1;
                }
            }
            last = Some(report);
        }
        println!();
    }
    if let Some(report) = last {
        println!(
            "rack metrics of the last campaign (seed {:#018x}):",
            report.seed
        );
        println!("{}", report.metrics);
    }
    failures
}

fn run_store(seeds: u64, base_seed: u64, steps: u32, verify: bool) -> u64 {
    println!("{}", StoreSurvivalReport::header());
    let mut failures = 0u64;
    let mut last: Option<StoreSurvivalReport> = None;
    for k in 0..seeds {
        let seed = base_seed + k;
        let report = run_store_campaign(seed, steps);
        println!("{}", report.row());
        for v in &report.violations {
            println!("    violation: {v}");
            failures += 1;
        }
        if verify {
            let replay = run_store_campaign(seed, steps);
            if replay.log_text != report.log_text {
                println!("    violation: replay of seed {seed:#x} DIVERGED");
                failures += 1;
            }
        }
        last = Some(report);
    }
    if let Some(report) = last {
        println!(
            "\nrack metrics of the last campaign (seed {:#018x}):",
            report.seed
        );
        println!("{}", report.metrics);
    }
    failures
}

fn main() {
    let (seeds, base_seed, steps, verify, tiering, sync, store) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("flac-faultstorm: {e}");
            eprintln!(
                "usage: flac-faultstorm [--seeds N] [--steps M] [--seed X] [--verify] \
                 [--tiering|--sync|--store]"
            );
            std::process::exit(2);
        }
    };

    println!(
        "flac-faultstorm: {seeds} {}campaign(s) x {steps} steps, seeds {base_seed:#x}..{:#x}{}",
        if tiering {
            "tiering "
        } else if sync {
            "sync "
        } else if store {
            "store "
        } else {
            ""
        },
        base_seed + seeds,
        if verify {
            " (+replay verification)"
        } else {
            ""
        }
    );

    if tiering || sync || store {
        let failures = if tiering {
            run_tiering(seeds, base_seed, steps, verify)
        } else if sync {
            run_sync(seeds, base_seed, steps, verify)
        } else {
            run_store(seeds, base_seed, steps, verify)
        };
        if failures > 0 {
            eprintln!("\nflac-faultstorm: {failures} invariant violation(s)");
            std::process::exit(1);
        }
        println!("\nflac-faultstorm: all campaigns survived, all invariants held");
        return;
    }

    println!("{}", SurvivalReport::header());

    let mut failures = 0u64;
    let mut last: Option<SurvivalReport> = None;
    for k in 0..seeds {
        let seed = base_seed + k;
        let report = run_campaign(seed, steps);
        println!("{}", report.row());
        for v in &report.violations {
            println!("    violation: {v}");
            failures += 1;
        }
        if verify {
            let replay = run_campaign(seed, steps);
            if replay.log_text != report.log_text {
                println!("    violation: replay of seed {seed:#x} DIVERGED");
                failures += 1;
            }
        }
        last = Some(report);
    }

    if let Some(report) = last {
        println!(
            "\nrack metrics of the last campaign (seed {:#018x}):",
            report.seed
        );
        println!("{}", report.metrics);
    }

    if failures > 0 {
        eprintln!("\nflac-faultstorm: {failures} invariant violation(s)");
        std::process::exit(1);
    }
    println!("\nflac-faultstorm: all campaigns survived, all invariants held");
}
