//! Bench target for the container-startup experiment (small image so
//! each iteration stays fast; the figure harness runs the full-size
//! version).

use bench::harness::Harness;
use bench::startup;

fn main() {
    let mut h = Harness::new();
    let mut group = h.group("container_startup");
    group.sample_size(10);
    group.bench("cold_shared_hot_progression", |b| {
        b.iter(|| {
            let rows = startup::run_with_pages(256, 4096);
            assert!(rows.hot.total_ns < rows.cold.total_ns);
            rows
        });
    });
    group.finish();
}
