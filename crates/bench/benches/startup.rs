//! Criterion wrapper for the container-startup experiment (small image
//! so each iteration stays fast; the figure harness runs the full-size
//! version).

use bench::startup;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_startup(c: &mut Criterion) {
    let mut group = c.benchmark_group("container_startup");
    group.sample_size(10);
    group.bench_function("cold_shared_hot_progression", |b| {
        b.iter(|| {
            let rows = startup::run_with_pages(256, 4096);
            assert!(rows.hot.total_ns < rows.cold.total_ns);
            rows
        });
    });
    group.finish();
}

criterion_group!(benches, bench_startup);
criterion_main!(benches);
