//! Criterion wrapper for the shared-page-cache ablation.

use bench::pagecache_ab;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pagecache(c: &mut Criterion) {
    let mut group = c.benchmark_group("pagecache");
    group.sample_size(10);
    for &nodes in &[2usize, 4] {
        group.bench_with_input(BenchmarkId::new("shared_fileset", nodes), &nodes, |b, &n| {
            b.iter(|| {
                let row = pagecache_ab::run_cell(n, 2, 16);
                assert!(row.capacity_gain() > 1.0);
                row
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pagecache);
criterion_main!(benches);
