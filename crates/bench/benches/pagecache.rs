//! Bench target for the shared-page-cache ablation.

use bench::harness::Harness;
use bench::pagecache_ab;

fn main() {
    let mut h = Harness::new();
    let mut group = h.group("pagecache");
    group.sample_size(10);
    for &nodes in &[2usize, 4] {
        group.bench(&format!("shared_fileset/{nodes}"), |b| {
            b.iter(|| {
                let row = pagecache_ab::run_cell(nodes, 2, 16);
                assert!(row.capacity_gain() > 1.0);
                row
            });
        });
    }
    group.finish();
}
