//! Bench target for the IPC-vs-netstack echo sweep.

use bench::harness::Harness;
use flacdk::alloc::GlobalAllocator;
use flacos_ipc::channel::FlacChannel;
use flacos_ipc::netstack::{NetConfig, NetPair};
use rack_sim::{Rack, RackConfig};

fn main() {
    let mut h = Harness::new();
    let mut group = h.group("ipc_transports");
    for &size in &[64usize, 4096, 65536] {
        group.throughput_bytes(size as u64);
        group.bench(&format!("flacos_echo/{size}"), |b| {
            let rack = Rack::new(RackConfig::two_node_hccs());
            let alloc = GlobalAllocator::new(rack.global().clone());
            let (mut a, mut bp) =
                FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();
            let payload = vec![1u8; size];
            b.iter(|| {
                a.send(&payload).unwrap();
                let echo = bp.try_recv().unwrap();
                bp.send(&echo).unwrap();
                a.try_recv().unwrap()
            });
        });
        group.bench(&format!("tcp_echo/{size}"), |b| {
            let rack = Rack::new(RackConfig::two_node_hccs());
            let (mut a, mut bp) =
                NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 0);
            let payload = vec![1u8; size];
            b.iter(|| {
                a.send(&payload).unwrap();
                let echo = bp.try_recv().unwrap();
                bp.send(&echo).unwrap();
                a.try_recv().unwrap()
            });
        });
    }
    group.finish();
}
