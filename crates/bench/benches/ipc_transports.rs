//! Criterion wrapper for the IPC-vs-netstack echo sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flacdk::alloc::GlobalAllocator;
use flacos_ipc::channel::FlacChannel;
use flacos_ipc::netstack::{NetConfig, NetPair};
use rack_sim::{Rack, RackConfig};

fn bench_ipc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipc_transports");
    for &size in &[64usize, 4096, 65536] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("flacos_echo", size), &size, |b, &size| {
            let rack = Rack::new(RackConfig::two_node_hccs());
            let alloc = GlobalAllocator::new(rack.global().clone());
            let (mut a, mut bp) =
                FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();
            let payload = vec![1u8; size];
            b.iter(|| {
                a.send(&payload).unwrap();
                let echo = bp.try_recv().unwrap();
                bp.send(&echo).unwrap();
                a.try_recv().unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("tcp_echo", size), &size, |b, &size| {
            let rack = Rack::new(RackConfig::two_node_hccs());
            let (mut a, mut bp) =
                NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 0);
            let payload = vec![1u8; size];
            b.iter(|| {
                a.send(&payload).unwrap();
                let echo = bp.try_recv().unwrap();
                bp.send(&echo).unwrap();
                a.try_recv().unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ipc);
criterion_main!(benches);
