//! Criterion wrapper for the fault-box blast-radius ablation.

use bench::faultbox_ab;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_faultbox(c: &mut Criterion) {
    let mut group = c.benchmark_group("faultbox");
    group.sample_size(10);
    for &apps in &[4usize, 8] {
        group.bench_with_input(BenchmarkId::new("recover_one_of", apps), &apps, |b, &k| {
            b.iter(|| {
                let row = faultbox_ab::run_cell(k);
                assert_eq!(row.disturbed_flacos, 1);
                row
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_faultbox);
criterion_main!(benches);
