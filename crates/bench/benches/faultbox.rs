//! Bench target for the fault-box blast-radius ablation.

use bench::faultbox_ab;
use bench::harness::Harness;

fn main() {
    let mut h = Harness::new();
    let mut group = h.group("faultbox");
    group.sample_size(10);
    for &apps in &[4usize, 8] {
        group.bench(&format!("recover_one_of/{apps}"), |b| {
            b.iter(|| {
                let row = faultbox_ab::run_cell(apps);
                assert_eq!(row.disturbed_flacos, 1);
                row
            });
        });
    }
    group.finish();
}
