//! Criterion wrapper for the synchronization-methods ablation.

use bench::sync_ab;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_methods");
    group.sample_size(10);
    for method in sync_ab::METHODS {
        group.bench_with_input(BenchmarkId::new("mixed_50r", method), &method, |b, &m| {
            b.iter(|| sync_ab::run_cell(m, 2, 50, 100));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sync);
criterion_main!(benches);
