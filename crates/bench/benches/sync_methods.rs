//! Bench target for the synchronization-methods ablation.

use bench::harness::Harness;
use bench::sync_ab;

fn main() {
    let mut h = Harness::new();
    let mut group = h.group("sync_methods");
    group.sample_size(10);
    for method in sync_ab::METHODS {
        group.bench(&format!("mixed_50r/{method}"), |b| {
            b.iter(|| sync_ab::run_cell(method, 2, 50, 100));
        });
    }
    group.finish();
}
