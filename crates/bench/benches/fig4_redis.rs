//! Bench target for the Figure 4 experiment: one Redis request
//! (SET × size × transport) per iteration, exercising exactly the code
//! path `figures -- fig4` reports on.

use bench::harness::Harness;
use flacdk::alloc::GlobalAllocator;
use flacos_ipc::channel::FlacChannel;
use flacos_ipc::netstack::{NetConfig, NetPair};
use rack_sim::{Rack, RackConfig};
use redis_mini::client::{request_stepped, RedisClient};
use redis_mini::resp::Command;
use redis_mini::server::RedisServer;

fn main() {
    let mut h = Harness::new();
    let mut group = h.group("redis_latency");
    for &size in &[16usize, 4096] {
        group.bench(&format!("flacos_ipc_set/{size}"), |b| {
            let rack = Rack::new(RackConfig::two_node_hccs());
            let alloc = GlobalAllocator::new(rack.global().clone());
            let (sep, cep) =
                FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();
            let mut server = RedisServer::new(rack.node(0), sep);
            let mut client = RedisClient::new(rack.node(1), cep);
            let cmd = Command::Set {
                key: b"k".to_vec(),
                value: vec![7u8; size],
            };
            b.iter(|| request_stepped(&mut client, &mut server, &cmd).unwrap());
        });
        group.bench(&format!("tcp_set/{size}"), |b| {
            let rack = Rack::new(RackConfig::two_node_hccs());
            let (sep, cep) = NetPair::connect(rack.node(0), rack.node(1), NetConfig::ten_gbe(), 0);
            let mut server = RedisServer::new(rack.node(0), sep);
            let mut client = RedisClient::new(rack.node(1), cep);
            let cmd = Command::Set {
                key: b"k".to_vec(),
                value: vec![7u8; size],
            };
            b.iter(|| request_stepped(&mut client, &mut server, &cmd).unwrap());
        });
    }
    group.finish();
}
