//! The fault box: vertical consolidation of one application's state.
//!
//! Paper §3.6: *"Unlike existing systems which horizontally aggregate
//! the states of different applications together, a fault box vertically
//! consolidates a single application's memory and status based on the
//! application execution flow. ... For example, a fault box encompasses
//! the page table, context, communication buffer, stack, and heap of an
//! application."*
//!
//! Everything a box owns lives in global memory, reachable through one
//! enumeration ([`FaultBox::memory_objects`]), so checkpoint / recover /
//! migrate operate on the complete state set at once — and on *nothing
//! else*, which is what bounds the failure radius to one application.

use flacdk::alloc::GlobalAllocator;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use flacos_mem::addr::{PhysFrame, VirtAddr, PAGE_SIZE};
use flacos_mem::address_space::AddressSpace;
use flacos_mem::fault::FrameAllocator;
use flacos_mem::page_table::Pte;
use rack_sim::{GAddr, GlobalMemory, NodeCtx, NodeId, SimError};
use std::sync::Arc;

/// Virtual base of the stack region.
pub const STACK_BASE: VirtAddr = VirtAddr(0x7000_0000);
/// Virtual base of the heap region.
pub const HEAP_BASE: VirtAddr = VirtAddr(0x1000_0000);
/// Bytes reserved for the saved execution context (registers, pc, flags).
pub const CONTEXT_BYTES: usize = 512;

/// Stable object-id namespace inside a box's checkpoint.
const OBJ_CONTEXT: u64 = 0;
const OBJ_STACK_BASE: u64 = 1_000;
const OBJ_HEAP_BASE: u64 = 2_000;
const OBJ_COMM_BASE: u64 = 3_000;

/// Builder for a [`FaultBox`].
#[derive(Debug)]
pub struct FaultBoxBuilder {
    app_id: u64,
    stack_pages: usize,
    heap_pages: usize,
}

impl FaultBoxBuilder {
    /// Start building a box for application `app_id`.
    pub fn new(app_id: u64) -> Self {
        FaultBoxBuilder {
            app_id,
            stack_pages: 2,
            heap_pages: 4,
        }
    }

    /// Stack size in pages (default 2).
    #[must_use]
    pub fn stack_pages(mut self, pages: usize) -> Self {
        self.stack_pages = pages;
        self
    }

    /// Heap size in pages (default 4).
    #[must_use]
    pub fn heap_pages(mut self, pages: usize) -> Self {
        self.heap_pages = pages;
        self
    }

    /// Materialize the box on `home`: allocate and map stack + heap
    /// frames in global memory and the context record.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn build(
        self,
        home: &Arc<NodeCtx>,
        global: &GlobalMemory,
        alloc: GlobalAllocator,
        frames: &FrameAllocator,
        epochs: Arc<EpochManager>,
    ) -> Result<FaultBox, SimError> {
        let space = AddressSpace::alloc(
            self.app_id,
            global,
            alloc.clone(),
            epochs,
            RetireList::new(),
        )?;
        let mut stack_frames = Vec::with_capacity(self.stack_pages);
        for i in 0..self.stack_pages {
            let f = frames.alloc(home)?;
            space.map(
                home,
                STACK_BASE.vpn() + i as u64,
                Pte::new(PhysFrame::Global(f), true),
            )?;
            stack_frames.push(f);
        }
        let mut heap_frames = Vec::with_capacity(self.heap_pages);
        for i in 0..self.heap_pages {
            let f = frames.alloc(home)?;
            space.map(
                home,
                HEAP_BASE.vpn() + i as u64,
                Pte::new(PhysFrame::Global(f), true),
            )?;
            heap_frames.push(f);
        }
        let context = global.alloc(CONTEXT_BYTES, 64)?;
        // cold-path: box construction happens once per workload, not per-op.
        home.stats().registry().add("fault_box", "built", 1);
        home.stats().registry().add(
            "fault_box",
            "pages_mapped",
            (self.stack_pages + self.heap_pages) as u64,
        );
        Ok(FaultBox {
            app_id: self.app_id,
            home: home.id(),
            space,
            context,
            stack_frames,
            heap_frames,
            comm_buffers: Vec::new(),
        })
    }
}

/// One application's vertically consolidated state.
#[derive(Debug)]
pub struct FaultBox {
    app_id: u64,
    home: NodeId,
    space: AddressSpace,
    context: GAddr,
    stack_frames: Vec<GAddr>,
    heap_frames: Vec<GAddr>,
    comm_buffers: Vec<(GAddr, usize)>,
}

impl FaultBox {
    /// The application this box belongs to.
    pub fn app_id(&self) -> u64 {
        self.app_id
    }

    /// The node currently executing the application.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// The application's shared address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Address of the saved execution context record.
    pub fn context_addr(&self) -> GAddr {
        self.context
    }

    /// Attach a communication buffer (e.g. an IPC ring segment) to the
    /// box, so its state recovers together with the application.
    pub fn register_comm_buffer(&mut self, addr: GAddr, len: usize) {
        self.comm_buffers.push((addr, len));
    }

    /// Save the execution context (register file image).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    ///
    /// # Panics
    ///
    /// Panics if `regs` exceeds [`CONTEXT_BYTES`].
    pub fn save_context(&self, ctx: &NodeCtx, regs: &[u8]) -> Result<(), SimError> {
        assert!(regs.len() <= CONTEXT_BYTES, "context record too large");
        ctx.write(self.context, regs)?;
        ctx.writeback(self.context, regs.len());
        Ok(())
    }

    /// Load the saved execution context.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn load_context(&self, ctx: &NodeCtx, out: &mut [u8]) -> Result<(), SimError> {
        ctx.invalidate(self.context, out.len());
        ctx.read(self.context, out)
    }

    /// Enumerate the box's complete state set as `(object id, addr,
    /// len)` — the unit of checkpoint, recovery, and migration.
    pub fn memory_objects(&self) -> Vec<(u64, GAddr, usize)> {
        let mut objs = vec![(OBJ_CONTEXT, self.context, CONTEXT_BYTES)];
        for (i, f) in self.stack_frames.iter().enumerate() {
            objs.push((OBJ_STACK_BASE + i as u64, *f, PAGE_SIZE));
        }
        for (i, f) in self.heap_frames.iter().enumerate() {
            objs.push((OBJ_HEAP_BASE + i as u64, *f, PAGE_SIZE));
        }
        for (i, (addr, len)) in self.comm_buffers.iter().enumerate() {
            objs.push((OBJ_COMM_BASE + i as u64, *addr, *len));
        }
        objs
    }

    /// Total bytes of state the box consolidates.
    pub fn state_bytes(&self) -> usize {
        self.memory_objects().iter().map(|(_, _, len)| len).sum()
    }

    /// Whether `addr` falls inside any of this box's objects.
    pub fn owns(&self, addr: GAddr) -> bool {
        self.memory_objects()
            .iter()
            .any(|(_, base, len)| base.0 <= addr.0 && addr.0 < base.0 + *len as u64)
    }

    /// Migrate execution to `target`. All state already lives in global
    /// memory, so migration transfers *ownership*, not data: the cost is
    /// the context hand-off, not a state copy — the paper's "efficient
    /// migration" enabled by vertical consolidation.
    ///
    /// # Errors
    ///
    /// [`SimError::NodeDown`] if the target node has crashed.
    pub fn migrate(&mut self, from: &NodeCtx, to: &NodeCtx) -> Result<(), SimError> {
        if !to.is_alive() {
            return Err(SimError::NodeDown { node: to.id() });
        }
        // Flush the context + any cached box lines so the target reads
        // fresh state, then charge the descriptor hand-off.
        from.writeback(self.context, CONTEXT_BYTES);
        from.charge(from.latency().global_atomic_ns);
        to.charge(to.latency().global_read_ns);
        // cold-path: migration is a rare orchestration event, not per-op.
        to.stats().registry().add("fault_box", "migrations", 1);
        self.home = to.id();
        Ok(())
    }

    /// Adopt the box onto `to` after its home node *crashed* — the
    /// fault-box re-election path. Unlike [`FaultBox::migrate`], there is
    /// no live source to flush: whatever the dead node had dirty in its
    /// cache is lost (that is the crash), and the adopter invalidates its
    /// own cached view of every box object so it reads current global
    /// state instead of stale lines.
    ///
    /// # Errors
    ///
    /// [`SimError::NodeDown`] if the adopting node is itself down.
    pub fn adopt(&mut self, to: &NodeCtx) -> Result<(), SimError> {
        if !to.is_alive() {
            return Err(SimError::NodeDown { node: to.id() });
        }
        for (_, addr, len) in self.memory_objects() {
            to.invalidate(addr, len);
        }
        to.charge(to.latency().global_read_ns);
        // cold-path: adoption runs once per crash recovery, not per-op.
        to.stats().registry().add("fault_box", "adoptions", 1);
        self.home = to.id();
        Ok(())
    }

    /// Heap virtual address of byte `offset`.
    pub fn heap_va(&self, offset: u64) -> VirtAddr {
        HEAP_BASE.offset(offset)
    }

    /// Stack virtual address of byte `offset`.
    pub fn stack_va(&self, offset: u64) -> VirtAddr {
        STACK_BASE.offset(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    pub(crate) fn build_box(rack: &Rack, app_id: u64, node: usize) -> FaultBox {
        let alloc = GlobalAllocator::new(rack.global().clone());
        let frames = FrameAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        FaultBoxBuilder::new(app_id)
            .stack_pages(1)
            .heap_pages(2)
            .build(&rack.node(node), rack.global(), alloc, &frames, epochs)
            .unwrap()
    }

    fn rack() -> Rack {
        Rack::new(RackConfig::small_test().with_global_mem(64 << 20))
    }

    #[test]
    fn box_consolidates_all_state() {
        let rack = rack();
        let mut fbox = build_box(&rack, 1, 0);
        fbox.register_comm_buffer(GAddr(0x100), 256);
        let objs = fbox.memory_objects();
        // context + 1 stack + 2 heap + 1 comm buffer
        assert_eq!(objs.len(), 5);
        assert_eq!(fbox.state_bytes(), CONTEXT_BYTES + 3 * PAGE_SIZE + 256);
        assert!(fbox.owns(GAddr(0x100)));
        assert!(fbox.owns(fbox.context_addr()));
    }

    #[test]
    fn heap_and_stack_usable_through_address_space() {
        let rack = rack();
        let fbox = build_box(&rack, 1, 0);
        let n0 = rack.node(0);
        fbox.space()
            .write(&n0, fbox.heap_va(100), b"application data")
            .unwrap();
        let mut buf = [0u8; 16];
        fbox.space().read(&n0, fbox.heap_va(100), &mut buf).unwrap();
        assert_eq!(&buf, b"application data");
        fbox.space()
            .write(&n0, fbox.stack_va(0), &[1, 2, 3])
            .unwrap();
    }

    #[test]
    fn context_save_load_roundtrip() {
        let rack = rack();
        let fbox = build_box(&rack, 1, 0);
        let n0 = rack.node(0);
        let regs: Vec<u8> = (0..64).collect();
        fbox.save_context(&n0, &regs).unwrap();
        let mut out = vec![0u8; 64];
        fbox.load_context(&n0, &mut out).unwrap();
        assert_eq!(out, regs);
    }

    #[test]
    fn migration_moves_home_without_copying_state() {
        let rack = rack();
        let mut fbox = build_box(&rack, 1, 0);
        let (n0, n1) = (rack.node(0), rack.node(1));
        fbox.space()
            .write(&n0, fbox.heap_va(0), b"survives-migration")
            .unwrap();
        fbox.save_context(&n0, b"pc=main+42").unwrap();
        let copied_before = n1.stats().snapshot().bytes_copied;

        fbox.migrate(&n0, &n1).unwrap();
        assert_eq!(fbox.home(), n1.id());
        // Migration itself moved ~no bytes on the target.
        let copied_by_migrate = n1.stats().snapshot().bytes_copied - copied_before;
        assert!(
            copied_by_migrate < 64,
            "migration is ownership transfer, not a copy"
        );

        // Target continues with the same heap + context, in place.
        let mut buf = [0u8; 18];
        fbox.space().read(&n1, fbox.heap_va(0), &mut buf).unwrap();
        assert_eq!(&buf, b"survives-migration");
        let mut regs = vec![0u8; 10];
        fbox.load_context(&n1, &mut regs).unwrap();
        assert_eq!(&regs, b"pc=main+42");
    }

    #[test]
    fn migration_to_dead_node_fails() {
        let rack = rack();
        let mut fbox = build_box(&rack, 1, 0);
        rack.faults().crash_node(NodeId(1), 0);
        assert!(matches!(
            fbox.migrate(&rack.node(0), &rack.node(1)),
            Err(SimError::NodeDown { .. })
        ));
        assert_eq!(fbox.home(), NodeId(0), "home unchanged on failure");
    }

    #[test]
    fn adoption_after_home_crash_reads_committed_state() {
        let rack = rack();
        let mut fbox = build_box(&rack, 1, 0);
        let (n0, n1) = (rack.node(0), rack.node(1));
        fbox.space()
            .write(&n0, fbox.heap_va(0), b"committed!")
            .unwrap();
        for (_, addr, len) in fbox.memory_objects() {
            n0.writeback(addr, len);
        }
        rack.faults().crash_node(n0.id(), 0);
        fbox.adopt(&n1).unwrap();
        assert_eq!(fbox.home(), n1.id());
        let mut buf = [0u8; 10];
        fbox.space().read(&n1, fbox.heap_va(0), &mut buf).unwrap();
        assert_eq!(&buf, b"committed!");
    }

    #[test]
    fn adoption_onto_dead_node_fails() {
        let rack = rack();
        let mut fbox = build_box(&rack, 1, 0);
        rack.faults().crash_node(NodeId(1), 0);
        assert!(matches!(
            fbox.adopt(&rack.node(1)),
            Err(SimError::NodeDown { .. })
        ));
        assert_eq!(fbox.home(), NodeId(0));
    }

    #[test]
    fn distinct_boxes_own_disjoint_memory() {
        let rack = rack();
        let a = build_box(&rack, 1, 0);
        let b = build_box(&rack, 2, 1);
        for (_, addr, _) in a.memory_objects() {
            assert!(!b.owns(addr), "boxes must not share state");
        }
    }
}
