//! Recovery orchestration across a population of fault boxes.
//!
//! Ties the pipeline together: the FlacDK detector finds poisoned or
//! corrupted regions, the orchestrator maps each casualty to the *one*
//! fault box that owns it, and restores that box alone. The
//! [`BlastReport`] quantifies the paper's claim that vertical
//! consolidation "prevents a single failure from propagating to multiple
//! applications and enables efficient migration and recovery".

use crate::fault_box::FaultBox;
use crate::redundancy::Protection;
use flacdk::reliability::detect::{Detection, FaultDetector};
use rack_sim::{GAddr, NodeCtx, SimError};
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of one detection + recovery sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlastReport {
    /// Faulty regions detected.
    pub faults_detected: usize,
    /// Applications whose state was touched by recovery.
    pub boxes_recovered: Vec<u64>,
    /// Applications that were *not* disturbed.
    pub boxes_untouched: usize,
    /// Total bytes restored.
    pub restored_bytes: usize,
    /// Simulated nanoseconds the sweep took.
    pub sweep_ns: u64,
}

impl BlastReport {
    /// Fraction of applications disturbed (the failure radius).
    pub fn blast_radius(&self) -> f64 {
        let total = self.boxes_recovered.len() + self.boxes_untouched;
        if total == 0 {
            0.0
        } else {
            self.boxes_recovered.len() as f64 / total as f64
        }
    }
}

/// Detects faults and recovers exactly the owning fault boxes.
#[derive(Debug)]
pub struct RecoveryOrchestrator {
    detector: FaultDetector,
    /// app id -> (box, protection)
    boxes: HashMap<u64, (FaultBox, Protection)>,
    /// Policy-driven sync cells to repair after a node crash (delegation
    /// owner re-election + committed-op replay).
    sync_cells: Vec<Arc<dyn flacdk::sync::SyncRecover>>,
}

impl RecoveryOrchestrator {
    /// An orchestrator with no registered applications.
    pub fn new() -> Self {
        RecoveryOrchestrator {
            detector: FaultDetector::new(),
            boxes: HashMap::new(),
            sync_cells: Vec::new(),
        }
    }

    /// Attach a [`flacdk::sync::SyncCell`] so [`Self::handle_node_crash`]
    /// also repairs its coordination state: if the crashed node owned the
    /// cell's delegation, a survivor is elected and the committed op log
    /// drained, so no acknowledged update is lost.
    pub fn attach_sync(&mut self, cell: Arc<dyn flacdk::sync::SyncRecover>) {
        self.sync_cells.push(cell);
    }

    /// Register an application: guard every object of its box and attach
    /// its protection state.
    ///
    /// # Errors
    ///
    /// Propagates detector baseline errors.
    pub fn register(
        &mut self,
        ctx: &Arc<NodeCtx>,
        fbox: FaultBox,
        mut protection: Protection,
    ) -> Result<(), SimError> {
        for (obj_id, addr, len) in fbox.memory_objects() {
            self.detector
                .protect(ctx, Self::region_id(fbox.app_id(), obj_id), addr, len)?;
        }
        protection.tick(ctx, &fbox)?; // initial capture
        self.boxes.insert(fbox.app_id(), (fbox, protection));
        Ok(())
    }

    fn region_id(app_id: u64, obj_id: u64) -> u64 {
        app_id * 1_000_000 + obj_id
    }

    /// Refresh detector baselines and protection captures for `app_id`
    /// after it legitimately mutated its state.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for unknown apps.
    pub fn refresh(&mut self, ctx: &Arc<NodeCtx>, app_id: u64) -> Result<(), SimError> {
        let (fbox, protection) = self
            .boxes
            .get_mut(&app_id)
            .ok_or_else(|| SimError::Protocol(format!("unknown app {app_id}")))?;
        for (obj_id, _, _) in fbox.memory_objects() {
            self.detector
                .refresh(ctx, Self::region_id(app_id, obj_id))?;
        }
        protection.tick(ctx, fbox)?;
        Ok(())
    }

    /// Access a registered box.
    pub fn fault_box(&self, app_id: u64) -> Option<&FaultBox> {
        self.boxes.get(&app_id).map(|(b, _)| b)
    }

    /// Number of registered applications.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether no applications are registered.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Scan every guarded region; recover each fault box that owns a
    /// faulty region, leaving all other applications untouched.
    ///
    /// # Errors
    ///
    /// Propagates scan/restore errors.
    pub fn sweep(&mut self, ctx: &Arc<NodeCtx>) -> Result<BlastReport, SimError> {
        let start = ctx.clock().now();
        let bad = self.detector.scan(ctx)?;
        let mut victims: Vec<u64> = Vec::new();
        for (region, detection) in &bad {
            let app_id = region / 1_000_000;
            if !victims.contains(&app_id) && self.boxes.contains_key(&app_id) {
                victims.push(app_id);
            }
            // Scrub poisoned ranges before restore.
            if let Detection::Poisoned { .. } = detection {
                if let Some((addr, len)) = self.detector.region_range(*region) {
                    ctx.global().scrub(addr, len);
                }
            }
        }
        let mut restored_bytes = 0;
        for app_id in &victims {
            let (fbox, protection) = self.boxes.get(app_id).expect("victim registered");
            restored_bytes += protection.restore_all(ctx, fbox)?;
        }
        // Re-baseline recovered regions.
        for app_id in victims.clone() {
            let (fbox, _) = self.boxes.get(&app_id).expect("victim registered");
            let objs = fbox.memory_objects();
            for (obj_id, _, _) in objs {
                self.detector
                    .refresh(ctx, Self::region_id(app_id, obj_id))?;
            }
        }
        ctx.stats()
            .registry()
            .add("fault_box", "faults_detected", bad.len() as u64);
        ctx.stats()
            .registry()
            .add("fault_box", "boxes_recovered", victims.len() as u64);
        ctx.stats()
            .registry()
            .add("fault_box", "restored_bytes", restored_bytes as u64);
        Ok(BlastReport {
            faults_detected: bad.len(),
            boxes_untouched: self.boxes.len() - victims.len(),
            boxes_recovered: victims,
            restored_bytes,
            sweep_ns: ctx.clock().now() - start,
        })
    }

    /// Graceful degradation after `crash_node`: every registered box
    /// homed on `crashed` is **re-elected** onto `ctx`'s node
    /// ([`FaultBox::adopt`]), rolled back to its last consistent capture
    /// (the dead node's un-written-back lines are lost, so partial state
    /// must not survive), then re-replicated on the new home and
    /// re-baselined in the detector. Returns the re-homed app ids in
    /// ascending order.
    ///
    /// # Errors
    ///
    /// [`SimError::NodeDown`] when the adopting node is itself down;
    /// propagates restore/capture errors.
    pub fn handle_node_crash(
        &mut self,
        ctx: &Arc<NodeCtx>,
        crashed: rack_sim::NodeId,
    ) -> Result<Vec<u64>, SimError> {
        let mut victims: Vec<u64> = self
            .boxes
            .iter()
            .filter(|(_, (fbox, _))| fbox.home() == crashed)
            .map(|(app_id, _)| *app_id)
            .collect();
        victims.sort_unstable();
        for app_id in &victims {
            let (fbox, protection) = self.boxes.get_mut(app_id).expect("victim registered");
            fbox.adopt(ctx)?;
            protection.restore_all(ctx, fbox)?;
            protection.force_capture(ctx, fbox)?; // re-replicate on the new home
            for (obj_id, _, _) in fbox.memory_objects() {
                self.detector
                    .refresh(ctx, Self::region_id(*app_id, obj_id))?;
            }
        }
        // Repair attached coordination cells: a crash mid-delegation must
        // not strand committed ops behind a dead owner. The cell itself
        // counts re-elections under the `sync` metrics subsystem.
        for cell in &self.sync_cells {
            cell.recover_after_crash(ctx, crashed)?;
        }
        ctx.stats()
            .registry()
            .add("fault_box", "reelections", victims.len() as u64);
        Ok(victims)
    }

    /// Inject-and-measure helper for experiments: poison `len` bytes of
    /// `app_id`'s heap, then sweep.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for unknown apps.
    pub fn poison_app_heap(
        &self,
        ctx: &Arc<NodeCtx>,
        faults: &rack_sim::FaultInjector,
        app_id: u64,
        len: usize,
    ) -> Result<GAddr, SimError> {
        let (fbox, _) = self
            .boxes
            .get(&app_id)
            .ok_or_else(|| SimError::Protocol(format!("unknown app {app_id}")))?;
        // Heap objects start at id 2_000 (see fault_box module layout).
        let (_, addr, _) = fbox
            .memory_objects()
            .into_iter()
            .find(|(id, _, _)| *id >= 2_000 && *id < 3_000)
            .ok_or_else(|| SimError::Protocol("box has no heap".into()))?;
        faults.poison_memory(ctx.global(), addr, len, ctx.clock().now());
        Ok(addr)
    }
}

impl Default for RecoveryOrchestrator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_box::FaultBoxBuilder;
    use crate::redundancy::RedundancyPolicy;
    use flacdk::alloc::GlobalAllocator;
    use flacdk::reliability::checkpoint::CheckpointManager;
    use flacdk::sync::rcu::EpochManager;
    use flacos_mem::fault::FrameAllocator;
    use rack_sim::{Rack, RackConfig};

    fn setup(apps: usize) -> (Rack, RecoveryOrchestrator) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(128 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let frames = FrameAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let mut orch = RecoveryOrchestrator::new();
        let n0 = rack.node(0);
        for app in 0..apps as u64 {
            let fbox = FaultBoxBuilder::new(app)
                .stack_pages(1)
                .heap_pages(1)
                .build(&n0, rack.global(), alloc.clone(), &frames, epochs.clone())
                .unwrap();
            fbox.space()
                .write(&n0, fbox.heap_va(0), format!("app-{app}").as_bytes())
                .unwrap();
            let protection = Protection::new(
                RedundancyPolicy::PeriodicCheckpoint { period_ns: 1 },
                CheckpointManager::new(alloc.clone(), epochs.clone()),
            );
            orch.register(&n0, fbox, protection).unwrap();
        }
        (rack, orch)
    }

    use crate::redundancy::Protection;

    #[test]
    fn clean_sweep_touches_nothing() {
        let (rack, mut orch) = setup(4);
        let report = orch.sweep(&rack.node(0)).unwrap();
        assert_eq!(report.faults_detected, 0);
        assert!(report.boxes_recovered.is_empty());
        assert_eq!(report.boxes_untouched, 4);
        assert_eq!(report.blast_radius(), 0.0);
    }

    #[test]
    fn fault_in_one_app_recovers_only_that_app() {
        let (rack, mut orch) = setup(4);
        let n0 = rack.node(0);
        orch.poison_app_heap(&n0, rack.faults(), 2, 64).unwrap();

        let report = orch.sweep(&n0).unwrap();
        assert_eq!(report.faults_detected, 1);
        assert_eq!(report.boxes_recovered, vec![2]);
        assert_eq!(report.boxes_untouched, 3);
        assert!(report.blast_radius() <= 0.25 + f64::EPSILON);
        assert!(report.restored_bytes > 0);
        assert!(report.sweep_ns > 0);

        // The recovered app's data is intact again.
        let fbox = orch.fault_box(2).unwrap();
        let mut buf = [0u8; 5];
        fbox.space().read(&n0, fbox.heap_va(0), &mut buf).unwrap();
        assert_eq!(&buf, b"app-2");
    }

    #[test]
    fn sweep_is_idempotent_after_recovery() {
        let (rack, mut orch) = setup(3);
        let n0 = rack.node(0);
        orch.poison_app_heap(&n0, rack.faults(), 0, 32).unwrap();
        orch.sweep(&n0).unwrap();
        let second = orch.sweep(&n0).unwrap();
        assert_eq!(second.faults_detected, 0, "recovered + re-baselined");
    }

    #[test]
    fn multiple_faults_multiple_victims() {
        let (rack, mut orch) = setup(5);
        let n0 = rack.node(0);
        orch.poison_app_heap(&n0, rack.faults(), 1, 16).unwrap();
        orch.poison_app_heap(&n0, rack.faults(), 3, 16).unwrap();
        let report = orch.sweep(&n0).unwrap();
        let mut victims = report.boxes_recovered.clone();
        victims.sort_unstable();
        assert_eq!(victims, vec![1, 3]);
        assert_eq!(report.boxes_untouched, 3);
    }

    #[test]
    fn node_crash_reelects_boxes_onto_survivor() {
        let (rack, mut orch) = setup(3);
        let n1 = rack.node(1);
        rack.faults().crash_node(rack_sim::NodeId(0), 0);

        let rehomed = orch.handle_node_crash(&n1, rack_sim::NodeId(0)).unwrap();
        assert_eq!(rehomed, vec![0, 1, 2]);
        for app in 0..3u64 {
            let fbox = orch.fault_box(app).unwrap();
            assert_eq!(fbox.home(), n1.id(), "re-elected onto the survivor");
            let mut buf = [0u8; 5];
            fbox.space().read(&n1, fbox.heap_va(0), &mut buf).unwrap();
            assert_eq!(&buf[..], format!("app-{app}").as_bytes());
        }
        // The re-replicated population keeps operating on the new home.
        let report = orch.sweep(&n1).unwrap();
        assert_eq!(report.faults_detected, 0);
    }

    #[test]
    fn node_crash_reelects_attached_sync_cells() {
        use flacdk::sync::{SyncCell, SyncCellConfig, SyncPolicy, SyncState};

        #[derive(Debug, Default, Clone)]
        struct Counter(u64);
        impl SyncState for Counter {
            fn apply(&mut self, _op: &[u8]) {
                self.0 += 1;
            }
        }

        let (rack, mut orch) = setup(1);
        let (n0, n1) = (rack.node(0), rack.node(1));
        let cell = SyncCell::alloc(
            rack.global(),
            "test_counter",
            SyncCellConfig::new(rack.node_count(), SyncPolicy::Delegated),
            Counter::default(),
        )
        .unwrap();
        // Node 0 owns the delegation and commits ops before dying.
        cell.update(&n0, &[1]).unwrap();
        cell.update(&n0, &[1]).unwrap();
        assert_eq!(cell.owner_node(&n0).unwrap(), Some(rack_sim::NodeId(0)));
        orch.attach_sync(cell.clone());

        rack.faults().crash_node(rack_sim::NodeId(0), 0);
        orch.handle_node_crash(&n1, rack_sim::NodeId(0)).unwrap();

        // A survivor owns the cell and every committed op survived.
        assert_eq!(cell.owner_node(&n1).unwrap(), Some(n1.id()));
        assert_eq!(cell.read(&n1, |c| c.0).unwrap(), 2);
    }

    #[test]
    fn crash_of_foreign_node_rehomes_nothing() {
        let (rack, mut orch) = setup(2);
        let n0 = rack.node(0);
        let rehomed = orch.handle_node_crash(&n0, rack_sim::NodeId(1)).unwrap();
        assert!(rehomed.is_empty(), "no boxes lived on node 1");
        assert_eq!(orch.fault_box(0).unwrap().home(), n0.id());
    }

    #[test]
    fn refresh_prevents_false_positives_after_legit_writes() {
        let (rack, mut orch) = setup(2);
        let n0 = rack.node(0);
        {
            let fbox = orch.fault_box(0).unwrap();
            fbox.space()
                .write(&n0, fbox.heap_va(10), b"legit update")
                .unwrap();
        }
        orch.refresh(&n0, 0).unwrap();
        let report = orch.sweep(&n0).unwrap();
        assert_eq!(report.faults_detected, 0);
        assert_eq!(orch.len(), 2);
        assert!(!orch.is_empty());
    }
}
