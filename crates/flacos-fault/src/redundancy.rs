//! Adaptive redundancy: protection proportional to criticality.
//!
//! Paper §3.6: *"Based on user configuration and task criticality,
//! FlacOS adaptively employs different degree of reliability methods,
//! such as periodic check-pointing, partial replication, and n-modular
//! execution."*

use crate::fault_box::FaultBox;
use flacdk::reliability::checkpoint::{Checkpoint, CheckpointManager};
use rack_sim::{NodeCtx, SimError};
use std::sync::Arc;

/// How important a task is — drives the redundancy policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Criticality {
    /// Best-effort: cheap periodic checkpoints.
    Low,
    /// Important: keep a live partial replica of hot state.
    Medium,
    /// Mission-critical: execute n-modular and vote.
    High,
}

/// A concrete protection scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedundancyPolicy {
    /// Checkpoint the fault box every `period_ns` of simulated time.
    PeriodicCheckpoint {
        /// Interval between checkpoints.
        period_ns: u64,
    },
    /// Maintain `replicas` standby copies of the box's state.
    PartialReplication {
        /// Number of standby copies.
        replicas: u32,
    },
    /// Execute `n` times and take the majority result.
    NModular {
        /// Number of executions (odd).
        n: u32,
    },
}

impl RedundancyPolicy {
    /// The default policy for a criticality level.
    pub fn for_criticality(c: Criticality) -> Self {
        match c {
            Criticality::Low => RedundancyPolicy::PeriodicCheckpoint {
                period_ns: 10_000_000,
            },
            Criticality::Medium => RedundancyPolicy::PartialReplication { replicas: 1 },
            Criticality::High => RedundancyPolicy::NModular { n: 3 },
        }
    }
}

/// Runtime protection state for one fault box.
#[derive(Debug)]
pub struct Protection {
    policy: RedundancyPolicy,
    checkpoints: CheckpointManager,
    latest: Option<Checkpoint>,
    replicas: Vec<Checkpoint>,
    last_checkpoint_ns: u64,
}

impl Protection {
    /// Protect a box under `policy`, using `checkpoints` for snapshot
    /// storage.
    pub fn new(policy: RedundancyPolicy, checkpoints: CheckpointManager) -> Self {
        Protection {
            policy,
            checkpoints,
            latest: None,
            replicas: Vec::new(),
            last_checkpoint_ns: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> RedundancyPolicy {
        self.policy
    }

    /// The most recent checkpoint, if any.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.latest.as_ref()
    }

    /// Standby replicas (partial replication).
    pub fn replicas(&self) -> &[Checkpoint] {
        &self.replicas
    }

    /// Run the policy's periodic work. For checkpoint policies this
    /// captures when the period elapsed; for replication it refreshes
    /// every standby copy. Returns whether state was captured.
    ///
    /// # Errors
    ///
    /// Propagates capture errors.
    pub fn tick(&mut self, ctx: &Arc<NodeCtx>, fbox: &FaultBox) -> Result<bool, SimError> {
        match self.policy {
            RedundancyPolicy::PeriodicCheckpoint { period_ns } => {
                let now = ctx.clock().now();
                if self.latest.is_some() && now - self.last_checkpoint_ns < period_ns {
                    return Ok(false);
                }
                self.capture_checkpoint(ctx, fbox)?;
                Ok(true)
            }
            RedundancyPolicy::PartialReplication { replicas } => {
                for old in self.replicas.drain(..) {
                    self.checkpoints.discard(ctx, old);
                }
                for _ in 0..replicas {
                    self.replicas
                        .push(self.checkpoints.capture(ctx, &fbox.memory_objects())?);
                }
                // The first replica doubles as the restore source.
                self.latest = self.replicas.first().cloned();
                Ok(true)
            }
            RedundancyPolicy::NModular { .. } => Ok(false), // protection is execution-time
        }
    }

    fn capture_checkpoint(&mut self, ctx: &Arc<NodeCtx>, fbox: &FaultBox) -> Result<(), SimError> {
        let ckpt = self.checkpoints.capture(ctx, &fbox.memory_objects())?;
        if let Some(old) = self.latest.replace(ckpt) {
            self.checkpoints.discard(ctx, old);
        }
        self.last_checkpoint_ns = ctx.clock().now();
        Ok(())
    }

    /// Capture protection state *now*, regardless of the periodic
    /// schedule — used at explicit consistency points (after an
    /// application commits important state).
    ///
    /// # Errors
    ///
    /// Propagates capture errors.
    pub fn force_capture(&mut self, ctx: &Arc<NodeCtx>, fbox: &FaultBox) -> Result<(), SimError> {
        match self.policy {
            RedundancyPolicy::PeriodicCheckpoint { .. } => self.capture_checkpoint(ctx, fbox),
            RedundancyPolicy::PartialReplication { .. } => self.tick(ctx, fbox).map(|_| ()),
            RedundancyPolicy::NModular { .. } => Ok(()),
        }
    }

    /// Restore every object of `fbox` from the latest capture.
    /// Returns restored byte count.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when no capture exists; restore errors are
    /// propagated.
    pub fn restore_all(&self, ctx: &Arc<NodeCtx>, fbox: &FaultBox) -> Result<usize, SimError> {
        let ckpt = self
            .latest
            .as_ref()
            .ok_or_else(|| SimError::Protocol("no checkpoint to restore from".into()))?;
        let mut total = 0;
        for (id, _, _) in fbox.memory_objects() {
            total += self.checkpoints.restore(ctx, ckpt, id)?;
        }
        Ok(total)
    }

    /// The checkpoint manager backing this protection.
    pub fn checkpoints(&self) -> &CheckpointManager {
        &self.checkpoints
    }
}

/// Execute `f` `n` times and return the majority output (n-modular
/// redundancy). `f` receives the execution index; a correct
/// deterministic task ignores it, a faulty one may corrupt some runs.
///
/// # Errors
///
/// [`SimError::Protocol`] when no output reaches a strict majority.
pub fn nmr_execute(
    n: u32,
    mut f: impl FnMut(u32) -> Result<Vec<u8>, SimError>,
) -> Result<Vec<u8>, SimError> {
    let mut outputs: Vec<(Vec<u8>, u32)> = Vec::new();
    for i in 0..n {
        // A crashed replica (Err) simply casts no vote.
        if let Ok(out) = f(i) {
            if let Some(entry) = outputs.iter_mut().find(|(o, _)| *o == out) {
                entry.1 += 1;
            } else {
                outputs.push((out, 1));
            }
        }
    }
    outputs
        .into_iter()
        .find(|(_, votes)| *votes * 2 > n)
        .map(|(out, _)| out)
        .ok_or_else(|| SimError::Protocol("n-modular execution: no majority".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_box::FaultBoxBuilder;
    use flacdk::alloc::GlobalAllocator;
    use flacdk::sync::rcu::EpochManager;
    use flacos_mem::fault::FrameAllocator;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, FaultBox, CheckpointManager) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(64 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let frames = FrameAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let fbox = FaultBoxBuilder::new(1)
            .stack_pages(1)
            .heap_pages(1)
            .build(
                &rack.node(0),
                rack.global(),
                alloc.clone(),
                &frames,
                epochs.clone(),
            )
            .unwrap();
        (rack, fbox, CheckpointManager::new(alloc, epochs))
    }

    #[test]
    fn criticality_maps_to_policies() {
        assert!(matches!(
            RedundancyPolicy::for_criticality(Criticality::Low),
            RedundancyPolicy::PeriodicCheckpoint { .. }
        ));
        assert!(matches!(
            RedundancyPolicy::for_criticality(Criticality::Medium),
            RedundancyPolicy::PartialReplication { replicas: 1 }
        ));
        assert!(matches!(
            RedundancyPolicy::for_criticality(Criticality::High),
            RedundancyPolicy::NModular { n: 3 }
        ));
        assert!(Criticality::Low < Criticality::High);
    }

    #[test]
    fn periodic_checkpoint_respects_period() {
        let (rack, fbox, cm) = setup();
        let n0 = rack.node(0);
        let mut p = Protection::new(
            RedundancyPolicy::PeriodicCheckpoint {
                period_ns: 1_000_000,
            },
            cm,
        );
        assert!(p.tick(&n0, &fbox).unwrap(), "first tick always captures");
        assert!(!p.tick(&n0, &fbox).unwrap(), "inside the period");
        n0.charge(2_000_000);
        assert!(p.tick(&n0, &fbox).unwrap(), "period elapsed");
        assert!(p.latest().is_some());
    }

    #[test]
    fn checkpoint_then_restore_repairs_poisoned_heap() {
        let (rack, fbox, cm) = setup();
        let n0 = rack.node(0);
        fbox.space()
            .write(&n0, fbox.heap_va(0), b"precious")
            .unwrap();
        fbox.save_context(&n0, b"ctx").unwrap();
        let mut p = Protection::new(RedundancyPolicy::PeriodicCheckpoint { period_ns: 1 }, cm);
        p.tick(&n0, &fbox).unwrap();

        // Poison the heap frame.
        let (_, heap_addr, _) = fbox.memory_objects()[2];
        rack.faults().poison_memory(rack.global(), heap_addr, 64, 0);

        let restored = p.restore_all(&n0, &fbox).unwrap();
        assert_eq!(restored, fbox.state_bytes());
        let mut buf = [0u8; 8];
        fbox.space().read(&n0, fbox.heap_va(0), &mut buf).unwrap();
        assert_eq!(&buf, b"precious");
    }

    #[test]
    fn partial_replication_keeps_standbys() {
        let (rack, fbox, cm) = setup();
        let n0 = rack.node(0);
        let mut p = Protection::new(RedundancyPolicy::PartialReplication { replicas: 2 }, cm);
        p.tick(&n0, &fbox).unwrap();
        assert_eq!(p.replicas().len(), 2);
        // Refresh replaces, not accumulates.
        p.tick(&n0, &fbox).unwrap();
        assert_eq!(p.replicas().len(), 2);
        assert!(p.latest().is_some());
    }

    #[test]
    fn restore_without_capture_fails() {
        let (rack, fbox, cm) = setup();
        let p = Protection::new(RedundancyPolicy::NModular { n: 3 }, cm);
        assert!(p.restore_all(&rack.node(0), &fbox).is_err());
    }

    #[test]
    fn nmr_votes_out_a_corrupt_run() {
        let out = nmr_execute(3, |i| {
            Ok(if i == 1 {
                b"corrupt".to_vec()
            } else {
                b"correct".to_vec()
            })
        })
        .unwrap();
        assert_eq!(out, b"correct");
    }

    #[test]
    fn nmr_survives_a_crashed_run() {
        let out = nmr_execute(3, |i| {
            if i == 0 {
                Err(SimError::Protocol("replica crashed".into()))
            } else {
                Ok(b"ok".to_vec())
            }
        })
        .unwrap();
        assert_eq!(out, b"ok");
    }

    #[test]
    fn nmr_without_majority_fails() {
        let result = nmr_execute(3, |i| Ok(vec![i as u8]));
        assert!(result.is_err());
    }
}
