//! # flacos-fault — system-wide reliability (paper §3.6)
//!
//! The paper's thesis on reliability: hardening individual components is
//! not enough; the system must manage *an application's entire state
//! set* as one unit. Two mechanisms deliver that:
//!
//! * **Fault box** ([`fault_box`]) — a *vertical* consolidation of one
//!   application's memory and status along its execution flow: page
//!   table, execution context, communication buffers, stack, and heap.
//!   The whole set can be checkpointed, recovered, or migrated at once,
//!   so a memory fault in one application never propagates to others
//!   and recovery touches exactly one box.
//! * **Adaptive redundancy** ([`redundancy`]) — protection level chosen
//!   per task criticality: periodic checkpointing, partial replication,
//!   or n-modular execution.
//!
//! [`recovery`] orchestrates detection → isolation → recovery across a
//! population of fault boxes and measures the blast radius, which the
//! `figures -- faultbox` experiment reports.

pub mod fault_box;
pub mod recovery;
pub mod redundancy;

pub use fault_box::{FaultBox, FaultBoxBuilder};
pub use recovery::{BlastReport, RecoveryOrchestrator};
pub use redundancy::{Criticality, RedundancyPolicy};
