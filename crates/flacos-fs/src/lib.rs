//! # flacos-fs — the FlacOS memory file system (paper §3.4)
//!
//! A file system built directly on rack-shared memory, with the paper's
//! shared/local partitioning:
//!
//! * **Shared page cache** ([`page_cache`]) — file pages live *once* in
//!   global memory, indexed by an RCU radix tree, so every node serves
//!   file reads from the same single copy (no per-node duplicate caching
//!   of e.g. identical container images). Updates are multi-version:
//!   a write publishes a fresh page version and retires the old one,
//!   which both sidesteps incoherence and gives writeback a stable
//!   snapshot — the "asynchronous handling and multi-version updates"
//!   mechanism the paper adopts.
//! * **Local metadata** ([`meta`]) — inodes and directories are complex
//!   pointer-heavy structures with small random accesses, so each node
//!   keeps a *local replica*, kept consistent through the shared
//!   operation log in bulk (replication-based sync doubles as the bulk
//!   metadata synchronization the paper describes, and the log doubles
//!   as the write-ahead journal, §3.4's "integrating journaling with the
//!   synchronization mechanism" — see [`journal`]).
//! * **Local block layer** ([`block`]) — a conventional storage device
//!   stays node-local for compatibility; the async [`writeback`] daemon
//!   flushes dirty shared pages to it.
//!
//! [`memfs::MemFs`] is the per-node mount facade tying these together.

pub mod block;
pub mod file;
pub mod journal;
pub mod memfs;
pub mod meta;
pub mod page_cache;
pub mod writeback;

pub use block::BlockDevice;
pub use file::FileHandle;
pub use memfs::{FsShared, MemFs};
pub use meta::{FileKind, InodeAttr};
pub use page_cache::SharedPageCache;
pub use writeback::WritebackDaemon;
