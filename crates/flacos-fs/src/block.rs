//! The local block layer: a conventional storage device behind the
//! shared page cache.
//!
//! Paper §3.4: *"the block layer is placed locally to be compatible with
//! traditional non-memory semantic storage devices."* The simulated
//! device stores whole pages keyed by page id and charges NVMe-flash-like
//! latencies, giving the writeback daemon and cold reads a realistic cost
//! to amortize.

use flacos_mem::PAGE_SIZE;
use rack_sim::sync::Mutex;
use rack_sim::NodeCtx;
use std::collections::HashMap;

/// Device I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Page reads served.
    pub reads: u64,
    /// Page writes absorbed.
    pub writes: u64,
}

/// A page-granular simulated storage device.
#[derive(Debug)]
pub struct BlockDevice {
    pages: Mutex<HashMap<u64, Vec<u8>>>,
    read_ns: u64,
    write_ns: u64,
    stats: Mutex<BlockStats>,
}

impl BlockDevice {
    /// NVMe-flash-like latency defaults (~20 µs read, ~60 µs program).
    pub fn nvme() -> Self {
        Self::with_latency(20_000, 60_000)
    }

    /// A device with explicit per-page latencies.
    pub fn with_latency(read_ns: u64, write_ns: u64) -> Self {
        BlockDevice {
            pages: Mutex::new(HashMap::new()),
            read_ns,
            write_ns,
            stats: Mutex::new(BlockStats::default()),
        }
    }

    /// Read the page stored under `key`, if present, charging device
    /// latency to `ctx`.
    pub fn read_page(&self, ctx: &NodeCtx, key: u64) -> Option<Vec<u8>> {
        ctx.charge(self.read_ns);
        self.stats.lock().reads += 1;
        self.pages.lock().get(&key).cloned()
    }

    /// Store one page under `key`, charging device latency to `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if `content` is not exactly one page.
    pub fn write_page(&self, ctx: &NodeCtx, key: u64, content: &[u8]) {
        assert_eq!(content.len(), PAGE_SIZE, "block device stores whole pages");
        ctx.charge(self.write_ns);
        self.stats.lock().writes += 1;
        self.pages.lock().insert(key, content.to_vec());
    }

    /// Whether a page exists under `key` (no latency; metadata check).
    pub fn contains(&self, key: u64) -> bool {
        self.pages.lock().contains_key(&key)
    }

    /// Pages stored.
    pub fn page_count(&self) -> usize {
        self.pages.lock().len()
    }

    /// I/O counters.
    pub fn stats(&self) -> BlockStats {
        *self.stats.lock()
    }
}

impl Default for BlockDevice {
    fn default() -> Self {
        Self::nvme()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    #[test]
    fn rw_roundtrip_and_latency() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let dev = BlockDevice::with_latency(100, 300);
        let t0 = n0.clock().now();
        dev.write_page(&n0, 5, &vec![7u8; PAGE_SIZE]);
        assert_eq!(n0.clock().now() - t0, 300);
        assert!(dev.contains(5));
        let t1 = n0.clock().now();
        assert_eq!(dev.read_page(&n0, 5).unwrap(), vec![7u8; PAGE_SIZE]);
        assert_eq!(n0.clock().now() - t1, 100);
        assert!(dev.read_page(&n0, 6).is_none());
        assert_eq!(
            dev.stats(),
            BlockStats {
                reads: 2,
                writes: 1
            }
        );
        assert_eq!(dev.page_count(), 1);
    }

    #[test]
    #[should_panic(expected = "whole pages")]
    fn partial_page_write_panics() {
        let rack = Rack::new(RackConfig::small_test());
        BlockDevice::nvme().write_page(&rack.node(0), 0, &[1, 2, 3]);
    }
}
