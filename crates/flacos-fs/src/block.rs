//! The local block layer: a conventional storage device behind the
//! shared page cache.
//!
//! Paper §3.4: *"the block layer is placed locally to be compatible with
//! traditional non-memory semantic storage devices."* The simulated
//! device stores whole pages keyed by page id and charges NVMe-flash-like
//! latencies, giving the writeback daemon and cold reads a realistic cost
//! to amortize.
//!
//! The page **content** is device media — only ever touched through the
//! device's own latency-charging request path, like a real controller's
//! DRAM, so it legitimately lives behind a host mutex. The **block map**
//! (which keys are present, how many writes were absorbed) is kernel
//! metadata that other nodes consult, so it lives in a
//! [`SyncCell`] — rarely contended, hence the [`SyncPolicy::Lock`]
//! baseline backend.

use flacdk::sync::{SyncCell, SyncCellConfig, SyncPolicy, SyncState};
use flacdk::wire::{Decoder, Encoder};
use flacos_mem::PAGE_SIZE;
use rack_sim::sync::Mutex;
use rack_sim::{GlobalMemory, NodeCtx, SimError};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Device I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Page reads served.
    pub reads: u64,
    /// Page writes absorbed.
    pub writes: u64,
}

/// The shared block map: which pages the device holds.
#[derive(Debug, Default, Clone)]
struct BlockMap {
    present: BTreeSet<u64>,
    writes: u64,
}

impl SyncState for BlockMap {
    fn apply(&mut self, op: &[u8]) {
        let mut d = Decoder::new(op);
        if let Ok(key) = d.u64() {
            self.present.insert(key);
            self.writes += 1;
        }
    }
}

/// A page-granular simulated storage device.
#[derive(Debug)]
pub struct BlockDevice {
    // coherent-local: device media — only reachable through this
    // device's latency-charging request path, never via load/store.
    pages: Mutex<HashMap<u64, Vec<u8>>>,
    map: Arc<SyncCell<BlockMap>>,
    read_ns: u64,
    write_ns: u64,
    reads: AtomicU64,
}

impl BlockDevice {
    /// NVMe-flash-like latency defaults (~20 µs read, ~60 µs program).
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn nvme(global: &GlobalMemory, nodes: usize) -> Result<Self, SimError> {
        Self::with_latency(global, nodes, 20_000, 60_000)
    }

    /// A device with explicit per-page latencies.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn with_latency(
        global: &GlobalMemory,
        nodes: usize,
        read_ns: u64,
        write_ns: u64,
    ) -> Result<Self, SimError> {
        Ok(BlockDevice {
            pages: Mutex::new(HashMap::new()),
            map: SyncCell::alloc(
                global,
                "block_map",
                SyncCellConfig::new(nodes, SyncPolicy::Lock).with_log(8192, 48),
                BlockMap::default(),
            )?,
            read_ns,
            write_ns,
            reads: AtomicU64::new(0),
        })
    }

    /// Read the page stored under `key`, if present, charging device
    /// latency to `ctx`.
    pub fn read_page(&self, ctx: &NodeCtx, key: u64) -> Option<Vec<u8>> {
        ctx.charge(self.read_ns);
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.pages.lock().get(&key).cloned()
    }

    /// Store one page under `key`, charging device latency to `ctx`.
    ///
    /// # Errors
    ///
    /// Propagates block-map commit errors (the media is only updated
    /// after the map commit succeeds).
    ///
    /// # Panics
    ///
    /// Panics if `content` is not exactly one page.
    pub fn write_page(&self, ctx: &NodeCtx, key: u64, content: &[u8]) -> Result<(), SimError> {
        assert_eq!(content.len(), PAGE_SIZE, "block device stores whole pages");
        ctx.charge(self.write_ns);
        let mut e = Encoder::new();
        e.put_u64(key);
        self.map.update(ctx, &e.into_vec())?;
        self.map.gc(ctx)?;
        self.pages.lock().insert(key, content.to_vec());
        Ok(())
    }

    /// Whether a page exists under `key` (no latency; metadata check).
    pub fn contains(&self, key: u64) -> bool {
        self.map.peek(|m| m.present.contains(&key))
    }

    /// Pages stored.
    pub fn page_count(&self) -> usize {
        self.map.peek(|m| m.present.len())
    }

    /// I/O counters.
    pub fn stats(&self) -> BlockStats {
        BlockStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.map.peek(|m| m.writes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    #[test]
    fn rw_roundtrip_and_latency() {
        let rack = Rack::new(RackConfig::small_test());
        let n0 = rack.node(0);
        let dev = BlockDevice::with_latency(rack.global(), rack.node_count(), 100, 300).unwrap();
        let t0 = n0.clock().now();
        dev.write_page(&n0, 5, &vec![7u8; PAGE_SIZE]).unwrap();
        assert!(
            n0.clock().now() - t0 >= 300,
            "device program latency charged"
        );
        assert!(dev.contains(5));
        let t1 = n0.clock().now();
        assert_eq!(dev.read_page(&n0, 5).unwrap(), vec![7u8; PAGE_SIZE]);
        assert_eq!(n0.clock().now() - t1, 100);
        assert!(dev.read_page(&n0, 6).is_none());
        assert_eq!(
            dev.stats(),
            BlockStats {
                reads: 2,
                writes: 1
            }
        );
        assert_eq!(dev.page_count(), 1);
    }

    #[test]
    #[should_panic(expected = "whole pages")]
    fn partial_page_write_panics() {
        let rack = Rack::new(RackConfig::small_test());
        let dev = BlockDevice::nvme(rack.global(), rack.node_count()).unwrap();
        let _ = dev.write_page(&rack.node(0), 0, &[1, 2, 3]);
    }
}
