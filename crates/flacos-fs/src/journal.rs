//! Journaling integrated with the synchronization mechanism.
//!
//! Paper §3.4: *"we expect to enhance journaling in FlacOS to
//! simultaneously improve reliability and scalability by integrating it
//! with synchronization mechanism."* In this implementation the
//! integration is total: the metadata **operation log** used by
//! replication-based synchronization *is* the write-ahead journal.
//! Every metadata mutation is durable in global memory (committed log
//! slot) before any replica applies it, so recovering a node — or
//! mounting a fresh one — is simply replaying the log.

use crate::memfs::FsShared;
use crate::meta::MetaReplica;
use flacdk::sync::replicated::Replica;
use rack_sim::{NodeCtx, SimError};

/// Journal state summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalInfo {
    /// Oldest retained entry.
    pub head: u64,
    /// One past the newest entry.
    pub tail: u64,
    /// Entries currently retained.
    pub depth: u64,
}

/// Inspect the journal (metadata op log) of `shared`.
///
/// # Errors
///
/// Propagates memory errors.
pub fn journal_info(ctx: &NodeCtx, shared: &FsShared) -> Result<JournalInfo, SimError> {
    let log = shared.meta_log().log();
    let head = log.head(ctx)?;
    let tail = log.tail(ctx)?;
    Ok(JournalInfo {
        head,
        tail,
        depth: tail - head,
    })
}

/// Rebuild file-system metadata by replaying the journal from its head.
///
/// Replay stops cleanly at the first uncommitted slot (a node that
/// crashed mid-append leaves a hole; everything before it is a
/// consistent prefix). Returns the recovered replica and the number of
/// entries replayed.
///
/// The caller must ensure the journal has not been truncated past state
/// it needs (FlacOS only advances the journal head after a metadata
/// checkpoint, which this prototype does not take — so the journal
/// retains the full history and recovery is always total).
///
/// # Errors
///
/// Propagates memory errors.
pub fn recover_meta(ctx: &NodeCtx, shared: &FsShared) -> Result<(MetaReplica, u64), SimError> {
    let log = shared.meta_log().log();
    let head = log.head(ctx)?;
    let tail = log.tail(ctx)?;
    let mut replica = MetaReplica::default();
    let mut replayed = 0;
    for idx in head..tail {
        match log.read(ctx, idx)? {
            Some(op) => {
                replica.apply(&op);
                replayed += 1;
            }
            None => break,
        }
    }
    Ok((replica, replayed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockDevice;
    use crate::memfs::MemFs;
    use flacdk::alloc::GlobalAllocator;
    use flacdk::sync::rcu::EpochManager;
    use flacdk::sync::reclaim::RetireList;
    use rack_sim::{Rack, RackConfig};
    use std::sync::Arc;

    fn setup() -> (Rack, Arc<FsShared>) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(64 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let shared = FsShared::alloc(
            rack.global(),
            rack.node_count(),
            alloc,
            epochs,
            RetireList::new(),
            Arc::new(BlockDevice::nvme(rack.global(), rack.node_count()).unwrap()),
        )
        .unwrap();
        (rack, shared)
    }

    #[test]
    fn journal_replay_recovers_metadata() {
        let (rack, shared) = setup();
        let mut fs = MemFs::mount(shared.clone(), rack.node(0));
        fs.mkdir("/srv").unwrap();
        fs.write_file("/srv/app.conf", b"threads=8").unwrap();
        fs.write_file("/srv/data.bin", &vec![1u8; 5000]).unwrap();
        fs.unlink("/srv/app.conf").unwrap();

        // Node 0 "crashes": rebuild purely from the journal on node 1.
        let (recovered, replayed) = recover_meta(&rack.node(1), &shared).unwrap();
        assert!(replayed >= 4);
        assert_eq!(recovered.resolve("/srv/app.conf"), None);
        let data_ino = recovered.resolve("/srv/data.bin").unwrap();
        assert_eq!(recovered.attr(data_ino).unwrap().size, 5000);
        assert_eq!(
            recovered.readdir(recovered.resolve("/srv").unwrap()),
            vec!["data.bin"]
        );
    }

    #[test]
    fn recovered_replica_matches_live_replica() {
        let (rack, shared) = setup();
        let mut fs = MemFs::mount(shared.clone(), rack.node(0));
        for i in 0..20 {
            fs.write_file(&format!("/f{i}"), &[i as u8]).unwrap();
        }
        let live = fs
            .with_meta(|m| (m.inode_count(), m.readdir(crate::meta::ROOT_INO)))
            .unwrap();
        let (recovered, _) = recover_meta(&rack.node(1), &shared).unwrap();
        assert_eq!(
            (
                recovered.inode_count(),
                recovered.readdir(crate::meta::ROOT_INO)
            ),
            live
        );
    }

    #[test]
    fn journal_info_reports_depth() {
        let (rack, shared) = setup();
        let mut fs = MemFs::mount(shared.clone(), rack.node(0));
        let before = journal_info(&rack.node(0), &shared).unwrap();
        fs.mkdir("/x").unwrap();
        fs.write_file("/x/y", b"z").unwrap();
        let after = journal_info(&rack.node(0), &shared).unwrap();
        // mkdir + create + set_size = 3 entries.
        assert_eq!(after.depth - before.depth, 3);
        assert_eq!(after.head, 0);
    }
}
