//! The per-node file-system facade.
//!
//! [`FsShared`] is the rack-shared half (metadata op log, shared page
//! cache, backing device); [`MemFs`] is one node's mount: a local
//! metadata replica plus handles onto the shared structures. All nodes
//! mounting the same [`FsShared`] see one file system with one page
//! cache copy.

use crate::block::BlockDevice;
use crate::meta::{op_create, op_rename, op_set_size, op_unlink, FileKind, InodeAttr, MetaReplica};
use crate::page_cache::SharedPageCache;
use flacdk::alloc::GlobalAllocator;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use flacdk::sync::replicated::{ReplicatedHandle, ReplicatedLog};
use flacos_mem::PAGE_SIZE;
use rack_sim::{GlobalMemory, NodeCtx, SimError};
use std::sync::Arc;

/// The rack-shared parts of one file system instance.
#[derive(Debug)]
pub struct FsShared {
    meta_log: Arc<ReplicatedLog>,
    cache: Arc<SharedPageCache>,
    device: Arc<BlockDevice>,
}

impl FsShared {
    /// Allocate the shared structures for `nodes` mounting nodes.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc(
        global: &GlobalMemory,
        nodes: usize,
        alloc: GlobalAllocator,
        epochs: Arc<EpochManager>,
        retired: RetireList,
        device: Arc<BlockDevice>,
    ) -> Result<Arc<Self>, SimError> {
        // Metadata ops are small; 4096 entries × 256 B covers busy tests
        // and experiments between journal truncations.
        let meta_log = ReplicatedLog::alloc(global, nodes, 4096, 256)?;
        let cache = SharedPageCache::alloc(global, alloc, epochs, retired)?;
        Ok(Arc::new(FsShared {
            meta_log,
            cache,
            device,
        }))
    }

    /// The metadata operation log (also the journal).
    pub fn meta_log(&self) -> &Arc<ReplicatedLog> {
        &self.meta_log
    }

    /// The shared page cache.
    pub fn cache(&self) -> &Arc<SharedPageCache> {
        &self.cache
    }

    /// The backing block device.
    pub fn device(&self) -> &Arc<BlockDevice> {
        &self.device
    }
}

/// One node's mount of a FlacOS file system.
#[derive(Debug)]
pub struct MemFs {
    shared: Arc<FsShared>,
    meta: ReplicatedHandle<MetaReplica>,
    node: Arc<NodeCtx>,
}

impl MemFs {
    /// Mount `shared` on `node`.
    pub fn mount(shared: Arc<FsShared>, node: Arc<NodeCtx>) -> Self {
        let meta = ReplicatedHandle::new(
            shared.meta_log.clone(),
            node.clone(),
            MetaReplica::default(),
        );
        MemFs { shared, meta, node }
    }

    /// The node this mount runs on.
    pub fn node(&self) -> &Arc<NodeCtx> {
        &self.node
    }

    /// Rebuild this mount's metadata replica by replaying the journal
    /// (crash recovery after the node restarts, or adoption of a mount
    /// whose local replica is untrusted). Returns the number of journal
    /// entries replayed.
    ///
    /// The recovered replica resumes at the replayed watermark, so
    /// later [`ReplicatedHandle::sync`]s apply only genuinely new
    /// entries — no double-apply.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from journal replay.
    pub fn recover(&mut self) -> Result<u64, SimError> {
        let (replica, replayed) = crate::journal::recover_meta(&self.node, &self.shared)?;
        let head = self.shared.meta_log.log().head(&self.node)?;
        self.meta = ReplicatedHandle::resume(
            self.shared.meta_log.clone(),
            self.node.clone(),
            replica,
            head + replayed,
        )?;
        // cold-path: journal replay runs once per crash/restart, not per-op.
        self.node.stats().registry().add("fs", "journal_replays", 1);
        self.node
            .stats()
            .registry()
            .add("fs", "journal_entries_replayed", replayed);
        Ok(replayed)
    }

    /// The shared half of this file system.
    pub fn shared(&self) -> &Arc<FsShared> {
        &self.shared
    }

    fn split_parent(path: &str) -> Result<(&str, &str), SimError> {
        let path = path.trim_end_matches('/');
        let idx = path
            .rfind('/')
            .ok_or_else(|| SimError::Protocol(format!("path {path:?} is not absolute")))?;
        let name = &path[idx + 1..];
        if name.is_empty() {
            return Err(SimError::Protocol(format!(
                "path {path:?} has no final component"
            )));
        }
        Ok((&path[..idx], name))
    }

    fn create_kind(&mut self, path: &str, kind: FileKind) -> Result<u64, SimError> {
        let (parent_path, name) = Self::split_parent(path)?;
        self.meta.sync()?;
        let parent = self
            .meta
            .read_dirty(|m| {
                m.resolve(if parent_path.is_empty() {
                    "/"
                } else {
                    parent_path
                })
            })
            .ok_or_else(|| SimError::Protocol(format!("parent of {path:?} not found")))?;
        self.meta.execute(&op_create(parent, name, kind))?;
        self.meta
            .read_dirty(|m| m.lookup(parent, name))
            .ok_or_else(|| SimError::Protocol(format!("create of {path:?} did not take effect")))
    }

    /// Create a regular file, returning its inode number. Idempotent.
    ///
    /// # Errors
    ///
    /// Fails on missing parents or malformed paths.
    pub fn create(&mut self, path: &str) -> Result<u64, SimError> {
        self.create_kind(path, FileKind::File)
    }

    /// Create a directory, returning its inode number. Idempotent.
    ///
    /// # Errors
    ///
    /// Fails on missing parents or malformed paths.
    pub fn mkdir(&mut self, path: &str) -> Result<u64, SimError> {
        self.create_kind(path, FileKind::Dir)
    }

    /// Remove the directory entry at `path`.
    ///
    /// # Errors
    ///
    /// Fails on malformed paths or missing parents.
    pub fn unlink(&mut self, path: &str) -> Result<(), SimError> {
        let (parent_path, name) = Self::split_parent(path)?;
        self.meta.sync()?;
        let parent = self
            .meta
            .read_dirty(|m| {
                m.resolve(if parent_path.is_empty() {
                    "/"
                } else {
                    parent_path
                })
            })
            .ok_or_else(|| SimError::Protocol(format!("parent of {path:?} not found")))?;
        self.meta.execute(&op_unlink(parent, name))
    }

    /// Rename/move `src` to `dst` (replacing an existing destination,
    /// as POSIX `rename(2)` does). Both parents must exist.
    ///
    /// # Errors
    ///
    /// Fails on malformed paths or missing sources/parents.
    pub fn rename(&mut self, src: &str, dst: &str) -> Result<(), SimError> {
        let (src_parent_path, src_name) = Self::split_parent(src)?;
        let (dst_parent_path, dst_name) = Self::split_parent(dst)?;
        self.meta.sync()?;
        let resolve = |m: &MetaReplica, p: &str| m.resolve(if p.is_empty() { "/" } else { p });
        let src_parent = self
            .meta
            .read_dirty(|m| resolve(m, src_parent_path))
            .ok_or_else(|| SimError::Protocol(format!("parent of {src:?} not found")))?;
        let dst_parent = self
            .meta
            .read_dirty(|m| resolve(m, dst_parent_path))
            .ok_or_else(|| SimError::Protocol(format!("parent of {dst:?} not found")))?;
        if self
            .meta
            .read_dirty(|m| m.lookup(src_parent, src_name))
            .is_none()
        {
            return Err(SimError::Protocol(format!("rename of missing {src:?}")));
        }
        self.meta
            .execute(&op_rename(src_parent, src_name, dst_parent, dst_name))
    }

    /// Resolve `path` to an inode number.
    ///
    /// # Errors
    ///
    /// Propagates sync errors.
    pub fn resolve(&mut self, path: &str) -> Result<Option<u64>, SimError> {
        self.meta.sync()?;
        Ok(self.meta.read_dirty(|m| m.resolve(path)))
    }

    /// Attributes of the object at `path`.
    ///
    /// # Errors
    ///
    /// Propagates sync errors.
    pub fn stat(&mut self, path: &str) -> Result<Option<InodeAttr>, SimError> {
        self.meta.sync()?;
        Ok(self
            .meta
            .read_dirty(|m| m.resolve(path).and_then(|ino| m.attr(ino))))
    }

    /// Sorted directory listing at `path`.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if `path` does not resolve.
    pub fn readdir(&mut self, path: &str) -> Result<Vec<String>, SimError> {
        self.meta.sync()?;
        let ino = self
            .meta
            .read_dirty(|m| m.resolve(path))
            .ok_or_else(|| SimError::Protocol(format!("readdir of missing {path:?}")))?;
        Ok(self.meta.read_dirty(|m| m.readdir(ino)))
    }

    /// Write `data` at byte `offset` of file `ino`, growing it as needed.
    ///
    /// # Errors
    ///
    /// Propagates page-cache and log errors.
    pub fn write_at(&mut self, ino: u64, offset: u64, data: &[u8]) -> Result<(), SimError> {
        let cache = self.shared.cache.clone();
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let page_idx = pos / PAGE_SIZE as u64;
            let in_page = (pos % PAGE_SIZE as u64) as usize;
            let take = (PAGE_SIZE - in_page).min(data.len() - done);
            let key = SharedPageCache::key(ino, page_idx);
            cache.write_in_page(&self.node, key, in_page, &data[done..done + take])?;
            done += take;
        }
        // Large writes churn page versions and index nodes; recycle what
        // the grace period allows so sustained writes run in bounded
        // memory.
        cache.reclaim(&self.node)?;
        // Grow the file size if we extended it.
        self.meta.sync()?;
        let cur = self
            .meta
            .read_dirty(|m| m.attr(ino).map(|a| a.size))
            .ok_or_else(|| SimError::Protocol(format!("write to unknown inode {ino}")))?;
        let end = offset + data.len() as u64;
        if end > cur {
            self.meta.execute(&op_set_size(ino, end))?;
        }
        Ok(())
    }

    /// Read up to `buf.len()` bytes at `offset` of file `ino`; returns
    /// bytes read (short at end of file). Cache misses fall back to the
    /// backing device and fill the shared cache.
    ///
    /// # Errors
    ///
    /// Propagates page-cache errors.
    pub fn read_at(&mut self, ino: u64, offset: u64, buf: &mut [u8]) -> Result<usize, SimError> {
        self.meta.sync()?;
        let size = self
            .meta
            .read_dirty(|m| m.attr(ino).map(|a| a.size))
            .ok_or_else(|| SimError::Protocol(format!("read of unknown inode {ino}")))?;
        if offset >= size {
            return Ok(0);
        }
        let want = buf.len().min((size - offset) as usize);
        let cache = self.shared.cache.clone();
        let mut done = 0usize;
        let mut page = vec![0u8; PAGE_SIZE];
        while done < want {
            let pos = offset + done as u64;
            let page_idx = pos / PAGE_SIZE as u64;
            let in_page = (pos % PAGE_SIZE as u64) as usize;
            let take = (PAGE_SIZE - in_page).min(want - done);
            let key = SharedPageCache::key(ino, page_idx);
            if cache.read_page(&self.node, key, &mut page)? {
                // served from the shared cache
            } else if let Some(stored) = self.shared.device.read_page(&self.node, key) {
                page.copy_from_slice(&stored);
                cache.insert_page(&self.node, key, &page, true)?;
            } else {
                page.fill(0); // sparse hole
            }
            buf[done..done + take].copy_from_slice(&page[in_page..in_page + take]);
            done += take;
        }
        Ok(want)
    }

    /// Convenience: read a whole file.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if `path` is missing.
    pub fn read_file(&mut self, path: &str) -> Result<Vec<u8>, SimError> {
        let attr = self
            .stat(path)?
            .ok_or_else(|| SimError::Protocol(format!("read of missing {path:?}")))?;
        let mut buf = vec![0u8; attr.size as usize];
        let n = self.read_at(attr.ino, 0, &mut buf)?;
        buf.truncate(n);
        Ok(buf)
    }

    /// Convenience: create (if needed) and write a whole file.
    ///
    /// # Errors
    ///
    /// Propagates create/write errors.
    pub fn write_file(&mut self, path: &str, data: &[u8]) -> Result<u64, SimError> {
        let ino = self.create(path)?;
        self.write_at(ino, 0, data)?;
        Ok(ino)
    }

    /// Direct access to the local metadata replica (diagnostics).
    pub fn with_meta<T>(&mut self, f: impl FnOnce(&MetaReplica) -> T) -> Result<T, SimError> {
        self.meta.sync()?;
        Ok(self.meta.read_dirty(f))
    }

    /// Map the file at `path` **read-only** into `space` starting at
    /// virtual page `base_vpn`, returning the number of pages mapped.
    ///
    /// This is the mechanism behind rack-wide rootfs/image sharing: the
    /// PTEs point straight at the shared page cache's frames, so every
    /// address space on every node maps the *same single copy*. Pages
    /// not yet resident are faulted in from the backing device first.
    ///
    /// The mapping is a snapshot of the current page versions: a later
    /// `write_at` publishes fresh frames into the cache, and mapped
    /// spaces keep reading the (retired-but-pinned-by-mapping) old
    /// version until remapped — callers that need write visibility must
    /// re-`mmap` and shoot down TLBs, exactly as on real hardware.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if `path` is missing or is a directory.
    pub fn mmap(
        &mut self,
        space: &flacos_mem::AddressSpace,
        path: &str,
        base_vpn: u64,
    ) -> Result<u64, SimError> {
        let attr = self
            .stat(path)?
            .ok_or_else(|| SimError::Protocol(format!("mmap of missing {path:?}")))?;
        if attr.kind != crate::meta::FileKind::File {
            return Err(SimError::Protocol(format!("mmap of non-file {path:?}")));
        }
        let pages = attr.size.div_ceil(PAGE_SIZE as u64);
        let cache = self.shared.cache.clone();
        let mut scratch = vec![0u8; 1];
        for p in 0..pages {
            let key = SharedPageCache::key(attr.ino, p);
            // Fault the page into the shared cache if absent (device or
            // sparse-zero fill), then map its frame.
            if cache.lookup(&self.node, key)?.is_none() {
                self.read_at(attr.ino, p * PAGE_SIZE as u64, &mut scratch)?;
            }
            let frame = match cache.lookup(&self.node, key)? {
                Some(f) => f,
                None => {
                    // Sparse hole: materialize a shared zero page.
                    cache.insert_page(&self.node, key, &[0u8; PAGE_SIZE], true)?
                }
            };
            space.map(
                &self.node,
                base_vpn + p,
                flacos_mem::page_table::Pte::new(flacos_mem::PhysFrame::Global(frame), false),
            )?;
        }
        Ok(pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, Arc<FsShared>) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(64 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let shared = FsShared::alloc(
            rack.global(),
            rack.node_count(),
            alloc,
            epochs,
            RetireList::new(),
            Arc::new(BlockDevice::nvme(rack.global(), rack.node_count()).unwrap()),
        )
        .unwrap();
        (rack, shared)
    }

    #[test]
    fn create_write_read_roundtrip() {
        let (rack, shared) = setup();
        let mut fs = MemFs::mount(shared, rack.node(0));
        fs.mkdir("/data").unwrap();
        let ino = fs.write_file("/data/hello.txt", b"hello flacos").unwrap();
        assert_eq!(fs.stat("/data/hello.txt").unwrap().unwrap().size, 12);
        assert_eq!(fs.read_file("/data/hello.txt").unwrap(), b"hello flacos");
        assert_eq!(fs.stat("/data/hello.txt").unwrap().unwrap().ino, ino);
    }

    #[test]
    fn file_written_on_one_node_read_on_another() {
        let (rack, shared) = setup();
        let mut fs0 = MemFs::mount(shared.clone(), rack.node(0));
        let mut fs1 = MemFs::mount(shared.clone(), rack.node(1));
        fs0.write_file("/shared.bin", &vec![42u8; 10_000]).unwrap();

        let data = fs1.read_file("/shared.bin").unwrap();
        assert_eq!(data.len(), 10_000);
        assert!(data.iter().all(|&b| b == 42));
        // The page content exists once: node 1's reads hit the same
        // shared frames, not copies.
        assert_eq!(shared.cache().resident_pages(), 3, "ceil(10000/4096) pages");
    }

    #[test]
    fn cold_read_falls_back_to_device() {
        let (rack, shared) = setup();
        let mut fs = MemFs::mount(shared.clone(), rack.node(0));
        let ino = fs
            .write_file("/cold.bin", &vec![7u8; PAGE_SIZE * 2])
            .unwrap();
        // Persist and drop from cache.
        let wb = crate::writeback::WritebackDaemon::new(
            rack.global(),
            rack.node_count(),
            shared.cache().clone(),
            shared.device().clone(),
        )
        .unwrap();
        wb.flush_all(&rack.node(0)).unwrap();
        for i in 0..2 {
            shared
                .cache()
                .evict(&rack.node(0), SharedPageCache::key(ino, i))
                .unwrap();
        }
        assert_eq!(shared.cache().resident_pages(), 0);

        let data = fs.read_file("/cold.bin").unwrap();
        assert_eq!(data.len(), PAGE_SIZE * 2);
        assert!(data.iter().all(|&b| b == 7));
        assert_eq!(shared.cache().resident_pages(), 2, "refilled from device");
    }

    #[test]
    fn sparse_files_read_zeros() {
        let (rack, shared) = setup();
        let mut fs = MemFs::mount(shared, rack.node(0));
        let ino = fs.create("/sparse").unwrap();
        fs.write_at(ino, PAGE_SIZE as u64 * 3, b"tail").unwrap();
        let mut buf = vec![9u8; 8];
        assert_eq!(fs.read_at(ino, 0, &mut buf).unwrap(), 8);
        assert_eq!(buf, vec![0u8; 8]);
        assert_eq!(
            fs.stat("/sparse").unwrap().unwrap().size,
            PAGE_SIZE as u64 * 3 + 4
        );
    }

    #[test]
    fn unlink_and_readdir() {
        let (rack, shared) = setup();
        let mut fs = MemFs::mount(shared, rack.node(0));
        fs.write_file("/a", b"1").unwrap();
        fs.write_file("/b", b"2").unwrap();
        assert_eq!(fs.readdir("/").unwrap(), vec!["a", "b"]);
        fs.unlink("/a").unwrap();
        assert_eq!(fs.readdir("/").unwrap(), vec!["b"]);
        assert!(fs.stat("/a").unwrap().is_none());
    }

    #[test]
    fn metadata_converges_across_mounts() {
        let (rack, shared) = setup();
        let mut fs0 = MemFs::mount(shared.clone(), rack.node(0));
        let mut fs1 = MemFs::mount(shared, rack.node(1));
        fs0.mkdir("/from0").unwrap();
        fs1.mkdir("/from1").unwrap();
        assert_eq!(fs0.readdir("/").unwrap(), vec!["from0", "from1"]);
        assert_eq!(fs1.readdir("/").unwrap(), vec!["from0", "from1"]);
        // Both resolve the same inode numbers (deterministic replay).
        assert_eq!(
            fs0.resolve("/from1").unwrap(),
            fs1.resolve("/from1").unwrap()
        );
    }

    #[test]
    fn bad_paths_rejected() {
        let (rack, shared) = setup();
        let mut fs = MemFs::mount(shared, rack.node(0));
        assert!(fs.create("relative").is_err());
        assert!(fs.create("/missing/parent/file").is_err());
        assert!(fs.readdir("/nope").is_err());
        assert!(fs.read_file("/nope").is_err());
    }

    #[test]
    fn mmap_shares_page_cache_frames_across_spaces() {
        use flacdk::sync::reclaim::RetireList;
        use flacos_mem::{AddressSpace, VirtAddr, PAGE_SIZE};

        let (rack, shared) = setup();
        let mut fs0 = MemFs::mount(shared.clone(), rack.node(0));
        let mut fs1 = MemFs::mount(shared.clone(), rack.node(1));
        let content: Vec<u8> = (0..PAGE_SIZE * 2 + 100).map(|i| (i % 251) as u8).collect();
        fs0.write_file("/lib.so", &content).unwrap();

        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let space0 = AddressSpace::alloc(
            1,
            rack.global(),
            alloc.clone(),
            epochs.clone(),
            RetireList::new(),
        )
        .unwrap();
        let space1 =
            AddressSpace::alloc(2, rack.global(), alloc, epochs, RetireList::new()).unwrap();

        let pages = fs0.mmap(&space0, "/lib.so", 100).unwrap();
        assert_eq!(pages, 3);
        let pages = fs1.mmap(&space1, "/lib.so", 200).unwrap();
        assert_eq!(pages, 3);

        // Both spaces on both nodes read the file content through memory.
        let mut buf = vec![0u8; 300];
        space0
            .read(
                &rack.node(0),
                VirtAddr::from_vpn(100).offset(4000),
                &mut buf,
            )
            .unwrap();
        assert_eq!(buf, content[4000..4300]);
        space1
            .read(
                &rack.node(1),
                VirtAddr::from_vpn(200).offset(4000),
                &mut buf,
            )
            .unwrap();
        assert_eq!(buf, content[4000..4300]);

        // And they map the very same frames — one copy rack-wide.
        let pte0 = space0
            .translate(&rack.node(0), VirtAddr::from_vpn(101))
            .unwrap()
            .unwrap();
        let pte1 = space1
            .translate(&rack.node(1), VirtAddr::from_vpn(201))
            .unwrap()
            .unwrap();
        assert_eq!(pte0.frame, pte1.frame);
        assert!(!pte0.writable, "mappings are read-only");
        assert!(space0
            .write(&rack.node(0), VirtAddr::from_vpn(100), b"x")
            .is_err());
    }

    #[test]
    fn mmap_rejects_directories_and_missing_paths() {
        use flacdk::sync::reclaim::RetireList;
        use flacos_mem::AddressSpace;

        let (rack, shared) = setup();
        let mut fs = MemFs::mount(shared, rack.node(0));
        fs.mkdir("/dir").unwrap();
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let space =
            AddressSpace::alloc(1, rack.global(), alloc, epochs, RetireList::new()).unwrap();
        assert!(fs.mmap(&space, "/dir", 0).is_err());
        assert!(fs.mmap(&space, "/missing", 0).is_err());
    }

    #[test]
    fn rename_is_visible_on_every_mount_and_keeps_data() {
        let (rack, shared) = setup();
        let mut fs0 = MemFs::mount(shared.clone(), rack.node(0));
        let mut fs1 = MemFs::mount(shared, rack.node(1));
        fs0.mkdir("/new").unwrap();
        fs0.write_file("/old-name", b"same bytes").unwrap();

        fs0.rename("/old-name", "/new/better-name").unwrap();
        assert!(fs1.stat("/old-name").unwrap().is_none());
        assert_eq!(fs1.read_file("/new/better-name").unwrap(), b"same bytes");
        assert!(fs1.rename("/ghost", "/x").is_err());
    }

    #[test]
    fn journal_replay_on_restart_recovers_committed_files() {
        let (rack, shared) = setup();
        let mut fs0 = MemFs::mount(shared.clone(), rack.node(0));
        fs0.mkdir("/srv").unwrap();
        fs0.write_file("/srv/ledger", b"balance=42").unwrap();
        fs0.write_file("/srv/log", b"boot ok").unwrap();

        // Node 0 crashes with its local replica, then restarts. The
        // fresh mount recovers metadata purely from the journal.
        rack.faults().crash_node(rack.node(0).id(), 1_000);
        rack.faults().restart_node(rack.node(0).id(), 2_000);
        let mut fs0b = MemFs::mount(shared.clone(), rack.node(0));
        let replayed = fs0b.recover().unwrap();
        assert!(replayed >= 5, "mkdir + 2×(create+set_size) = 5 entries");

        assert_eq!(fs0b.read_file("/srv/ledger").unwrap(), b"balance=42");
        assert_eq!(fs0b.read_file("/srv/log").unwrap(), b"boot ok");
        assert_eq!(fs0b.readdir("/srv").unwrap(), vec!["ledger", "log"]);

        // The recovered mount keeps working: new writes land and are
        // visible to other mounts without double-applying old entries.
        fs0b.write_file("/srv/after", b"post-restart").unwrap();
        let mut fs1 = MemFs::mount(shared, rack.node(1));
        assert_eq!(fs1.read_file("/srv/after").unwrap(), b"post-restart");
        assert_eq!(fs1.readdir("/srv").unwrap(), vec!["after", "ledger", "log"]);
    }

    #[test]
    fn overwrite_within_file_keeps_size() {
        let (rack, shared) = setup();
        let mut fs = MemFs::mount(shared, rack.node(0));
        let ino = fs.write_file("/f", b"0123456789").unwrap();
        fs.write_at(ino, 2, b"XX").unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), b"01XX456789");
        assert_eq!(fs.stat("/f").unwrap().unwrap().size, 10);
    }
}
