//! Asynchronous dirty-page writeback.
//!
//! Shared-page-cache writes publish versions in global memory only; the
//! writeback daemon asynchronously persists dirty pages to the local
//! block device off the critical path (paper §3.4: dirty write-back is
//! one of the complications of sharing the cache, solved with
//! "asynchronous handling and multi-version updates" — the multi-version
//! cache guarantees the daemon always reads a complete, untorn page).

use crate::block::BlockDevice;
use crate::page_cache::SharedPageCache;
use flacdk::sync::{SyncCell, SyncCellConfig, SyncPolicy, SyncState};
use flacdk::wire::Decoder;
use flacos_mem::PAGE_SIZE;
use rack_sim::{GlobalMemory, NodeCtx, SimError};
use std::sync::Arc;

/// Writeback counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WritebackStats {
    /// Pages persisted to the device.
    pub pages_written: u64,
    /// Batches executed.
    pub batches: u64,
}

impl SyncState for WritebackStats {
    fn apply(&mut self, op: &[u8]) {
        let mut d = Decoder::new(op);
        if let Ok(written) = d.u64() {
            self.pages_written += written;
            self.batches += 1;
        }
    }
}

/// Flushes dirty shared-cache pages to a block device.
#[derive(Debug)]
pub struct WritebackDaemon {
    cache: Arc<SharedPageCache>,
    device: Arc<BlockDevice>,
    /// Progress counters other nodes read (e.g. to decide whether to
    /// throttle writes) — written by whichever node runs the batch, so
    /// they default to delegation.
    stats: Arc<SyncCell<WritebackStats>>,
}

impl WritebackDaemon {
    /// A daemon flushing `cache` to `device`; `nodes` sizes the shared
    /// stats cell.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn new(
        global: &GlobalMemory,
        nodes: usize,
        cache: Arc<SharedPageCache>,
        device: Arc<BlockDevice>,
    ) -> Result<Self, SimError> {
        Ok(WritebackDaemon {
            cache,
            device,
            stats: SyncCell::alloc(
                global,
                "writeback_stats",
                SyncCellConfig::new(nodes, SyncPolicy::Delegated).with_log(4096, 48),
                WritebackStats::default(),
            )?,
        })
    }

    /// Flush up to `max_pages` dirty pages. Returns how many were
    /// persisted. Pages that vanished from the cache between dirtying
    /// and flushing are skipped (their newest version was evicted or
    /// superseded and re-dirtied).
    ///
    /// # Errors
    ///
    /// Propagates memory errors; on failure the page is re-marked dirty.
    pub fn run_once(&self, ctx: &Arc<NodeCtx>, max_pages: usize) -> Result<usize, SimError> {
        let keys = self.cache.take_dirty(ctx, max_pages)?;
        let mut written = 0u64;
        for key in keys {
            let mut buf = vec![0u8; PAGE_SIZE];
            let persist = match self.cache.read_page(ctx, key, &mut buf) {
                Ok(found) => found,
                Err(e) => {
                    self.cache.mark_dirty(ctx, key)?;
                    return Err(e);
                }
            };
            if persist {
                // A device write failure re-dirties the page so the next
                // batch retries it.
                if let Err(e) = self.device.write_page(ctx, key, &buf) {
                    self.cache.mark_dirty(ctx, key)?;
                    return Err(e);
                }
                written += 1;
            } // else: no longer resident; nothing to persist
        }
        self.stats.update(ctx, &written.to_le_bytes())?;
        self.stats.gc(ctx)?;
        Ok(written as usize)
    }

    /// Flush everything dirty.
    ///
    /// # Errors
    ///
    /// As [`WritebackDaemon::run_once`].
    pub fn flush_all(&self, ctx: &Arc<NodeCtx>) -> Result<usize, SimError> {
        let mut total = 0;
        loop {
            let n = self.run_once(ctx, 64)?;
            total += n;
            if self.cache.dirty_pages() == 0 {
                return Ok(total);
            }
            if n == 0 {
                return Ok(total);
            }
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> WritebackStats {
        self.stats.peek(|s| *s)
    }

    /// The sync cell guarding the shared stats, as a recovery hook.
    pub fn sync_cell(&self) -> Arc<dyn flacdk::sync::SyncRecover> {
        self.stats.clone()
    }

    /// The device being written to.
    pub fn device(&self) -> &Arc<BlockDevice> {
        &self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flacdk::alloc::GlobalAllocator;
    use flacdk::sync::rcu::EpochManager;
    use flacdk::sync::reclaim::RetireList;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, Arc<SharedPageCache>, WritebackDaemon) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(64 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let cache =
            SharedPageCache::alloc(rack.global(), alloc, epochs, RetireList::new()).unwrap();
        let device = Arc::new(BlockDevice::nvme(rack.global(), rack.node_count()).unwrap());
        let daemon =
            WritebackDaemon::new(rack.global(), rack.node_count(), cache.clone(), device).unwrap();
        (rack, cache, daemon)
    }

    #[test]
    fn dirty_pages_reach_the_device() {
        let (rack, cache, daemon) = setup();
        let n0 = rack.node(0);
        let key = SharedPageCache::key(1, 0);
        cache.write_in_page(&n0, key, 0, b"persist-me").unwrap();
        assert_eq!(cache.dirty_pages(), 1);
        assert_eq!(daemon.run_once(&n0, 16).unwrap(), 1);
        assert_eq!(cache.dirty_pages(), 0);
        let stored = daemon.device().read_page(&n0, key).unwrap();
        assert_eq!(&stored[..10], b"persist-me");
    }

    #[test]
    fn batching_respects_max() {
        let (rack, cache, daemon) = setup();
        let n0 = rack.node(0);
        for i in 0..10 {
            cache
                .write_in_page(&n0, SharedPageCache::key(1, i), 0, &[i as u8])
                .unwrap();
        }
        assert_eq!(daemon.run_once(&n0, 4).unwrap(), 4);
        assert_eq!(cache.dirty_pages(), 6);
        assert_eq!(daemon.flush_all(&n0).unwrap(), 6);
        assert_eq!(daemon.stats().pages_written, 10);
        assert_eq!(daemon.device().page_count(), 10);
    }

    #[test]
    fn latest_version_wins_at_flush_time() {
        let (rack, cache, daemon) = setup();
        let n0 = rack.node(0);
        let key = SharedPageCache::key(2, 0);
        cache.write_in_page(&n0, key, 0, b"v1").unwrap();
        cache.write_in_page(&n0, key, 0, b"v2").unwrap();
        daemon.flush_all(&n0).unwrap();
        let stored = daemon.device().read_page(&n0, key).unwrap();
        assert_eq!(&stored[..2], b"v2");
        assert_eq!(
            daemon.device().stats().writes,
            1,
            "coalesced into one device write"
        );
    }
}
