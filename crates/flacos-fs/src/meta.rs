//! Local file-system metadata, bulk-synchronized across nodes.
//!
//! Paper §3.4: *"metadata contains a large number of complex data
//! structures (e.g., tree), while access patterns contain a large number
//! of small random memory accesses. FlacOS keeps it locally to improve
//! access efficiency, and uses bulk synchronization to reduce the
//! overhead of cache consistency assurance."*
//!
//! Concretely: every node holds a [`MetaReplica`] (inode table +
//! directory tree) in ordinary local memory; mutations are appended to
//! the shared operation log and replayed by every node in bulk at its
//! next sync point. The same log is the write-ahead journal
//! ([`crate::journal`]).

use flacdk::sync::replicated::Replica;
use flacdk::wire::{Decoder, Encoder};
use std::collections::HashMap;

/// Kind of a file-system object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

/// Inode attributes surfaced by `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InodeAttr {
    /// Inode number.
    pub ino: u64,
    /// Object kind.
    pub kind: FileKind,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Link count.
    pub nlink: u32,
}

/// The root directory's inode number.
pub const ROOT_INO: u64 = 1;

/// Metadata operation opcodes (logged + journaled).
pub(crate) const OP_CREATE: u8 = 1;
pub(crate) const OP_UNLINK: u8 = 2;
pub(crate) const OP_SET_SIZE: u8 = 3;
pub(crate) const OP_RENAME: u8 = 4;

/// Encode a create op.
pub(crate) fn op_create(parent: u64, name: &str, kind: FileKind) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(OP_CREATE)
        .put_u64(parent)
        .put_str(name)
        .put_u8(match kind {
            FileKind::File => 0,
            FileKind::Dir => 1,
        });
    e.into_vec()
}

/// Encode an unlink op.
pub(crate) fn op_unlink(parent: u64, name: &str) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(OP_UNLINK).put_u64(parent).put_str(name);
    e.into_vec()
}

/// Encode a set-size op.
pub(crate) fn op_set_size(ino: u64, size: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(OP_SET_SIZE).put_u64(ino).put_u64(size);
    e.into_vec()
}

/// Encode a rename op.
pub(crate) fn op_rename(
    src_parent: u64,
    src_name: &str,
    dst_parent: u64,
    dst_name: &str,
) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(OP_RENAME)
        .put_u64(src_parent)
        .put_str(src_name)
        .put_u64(dst_parent)
        .put_str(dst_name);
    e.into_vec()
}

/// A node-local metadata replica: inode table + directory entries.
///
/// Deterministic by construction: inode numbers are assigned from a
/// counter driven purely by the op sequence, so every replica converges.
#[derive(Debug, Clone)]
pub struct MetaReplica {
    inodes: HashMap<u64, InodeAttr>,
    // (parent ino, name) -> child ino
    dentries: HashMap<(u64, String), u64>,
    // parent ino -> child names (for readdir)
    children: HashMap<u64, Vec<String>>,
    next_ino: u64,
}

impl Default for MetaReplica {
    fn default() -> Self {
        let mut inodes = HashMap::new();
        inodes.insert(
            ROOT_INO,
            InodeAttr {
                ino: ROOT_INO,
                kind: FileKind::Dir,
                size: 0,
                nlink: 1,
            },
        );
        MetaReplica {
            inodes,
            dentries: HashMap::new(),
            children: HashMap::new(),
            next_ino: ROOT_INO + 1,
        }
    }
}

impl MetaReplica {
    /// Attributes of inode `ino`.
    pub fn attr(&self, ino: u64) -> Option<InodeAttr> {
        self.inodes.get(&ino).copied()
    }

    /// Child of `parent` named `name`.
    pub fn lookup(&self, parent: u64, name: &str) -> Option<u64> {
        self.dentries.get(&(parent, name.to_string())).copied()
    }

    /// Resolve an absolute `/a/b/c` path to an inode.
    pub fn resolve(&self, path: &str) -> Option<u64> {
        let mut cur = ROOT_INO;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            cur = self.lookup(cur, comp)?;
        }
        Some(cur)
    }

    /// Names in directory `parent`, sorted.
    pub fn readdir(&self, parent: u64) -> Vec<String> {
        let mut v = self.children.get(&parent).cloned().unwrap_or_default();
        v.sort();
        v
    }

    /// Number of live inodes (including the root).
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }

    fn apply_create(&mut self, parent: u64, name: &str, kind: FileKind) {
        if !matches!(
            self.inodes.get(&parent).map(|a| a.kind),
            Some(FileKind::Dir)
        ) {
            return; // parent missing or not a directory: no-op
        }
        if self.dentries.contains_key(&(parent, name.to_string())) {
            return; // already exists: no-op (idempotent create)
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        self.inodes.insert(
            ino,
            InodeAttr {
                ino,
                kind,
                size: 0,
                nlink: 1,
            },
        );
        self.dentries.insert((parent, name.to_string()), ino);
        self.children
            .entry(parent)
            .or_default()
            .push(name.to_string());
    }

    fn apply_unlink(&mut self, parent: u64, name: &str) {
        if let Some(ino) = self.dentries.remove(&(parent, name.to_string())) {
            self.inodes.remove(&ino);
            if let Some(kids) = self.children.get_mut(&parent) {
                kids.retain(|n| n != name);
            }
        }
    }

    fn apply_set_size(&mut self, ino: u64, size: u64) {
        if let Some(attr) = self.inodes.get_mut(&ino) {
            attr.size = size;
        }
    }

    fn apply_rename(&mut self, src_parent: u64, src_name: &str, dst_parent: u64, dst_name: &str) {
        // Destination parent must be an existing directory.
        if !matches!(
            self.inodes.get(&dst_parent).map(|a| a.kind),
            Some(FileKind::Dir)
        ) {
            return;
        }
        let Some(ino) = self.dentries.remove(&(src_parent, src_name.to_string())) else {
            return; // source vanished: no-op (idempotent replay)
        };
        if let Some(kids) = self.children.get_mut(&src_parent) {
            kids.retain(|n| n != src_name);
        }
        // POSIX rename semantics: an existing destination is replaced.
        if let Some(old) = self.dentries.remove(&(dst_parent, dst_name.to_string())) {
            self.inodes.remove(&old);
            if let Some(kids) = self.children.get_mut(&dst_parent) {
                kids.retain(|n| n != dst_name);
            }
        }
        self.dentries
            .insert((dst_parent, dst_name.to_string()), ino);
        self.children
            .entry(dst_parent)
            .or_default()
            .push(dst_name.to_string());
    }
}

impl Replica for MetaReplica {
    fn apply(&mut self, op: &[u8]) {
        let mut d = Decoder::new(op);
        match d.u8() {
            Ok(OP_CREATE) => {
                let (Ok(parent), Ok(name), Ok(kind)) = (d.u64(), d.bytes(), d.u8()) else {
                    return;
                };
                let Ok(name) = std::str::from_utf8(name) else {
                    return;
                };
                let kind = if kind == 1 {
                    FileKind::Dir
                } else {
                    FileKind::File
                };
                self.apply_create(parent, name, kind);
            }
            Ok(OP_UNLINK) => {
                let (Ok(parent), Ok(name)) = (d.u64(), d.bytes()) else {
                    return;
                };
                if let Ok(name) = std::str::from_utf8(name) {
                    self.apply_unlink(parent, name);
                }
            }
            Ok(OP_SET_SIZE) => {
                if let (Ok(ino), Ok(size)) = (d.u64(), d.u64()) {
                    self.apply_set_size(ino, size);
                }
            }
            Ok(OP_RENAME) => {
                let (Ok(sp), Ok(sn), Ok(dp), Ok(dn)) = (d.u64(), d.bytes(), d.u64(), d.bytes())
                else {
                    return;
                };
                if let (Ok(sn), Ok(dn)) = (std::str::from_utf8(sn), std::str::from_utf8(dn)) {
                    let (sn, dn) = (sn.to_string(), dn.to_string());
                    self.apply_rename(sp, &sn, dp, &dn);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(r: &mut MetaReplica, op: Vec<u8>) {
        r.apply(&op);
    }

    #[test]
    fn create_lookup_resolve() {
        let mut r = MetaReplica::default();
        apply(&mut r, op_create(ROOT_INO, "etc", FileKind::Dir));
        let etc = r.lookup(ROOT_INO, "etc").unwrap();
        apply(&mut r, op_create(etc, "hosts", FileKind::File));
        let hosts = r.resolve("/etc/hosts").unwrap();
        assert_eq!(r.attr(hosts).unwrap().kind, FileKind::File);
        assert_eq!(r.resolve("/etc"), Some(etc));
        assert_eq!(r.resolve("/"), Some(ROOT_INO));
        assert_eq!(r.resolve("/missing"), None);
    }

    #[test]
    fn duplicate_create_is_idempotent() {
        let mut r = MetaReplica::default();
        apply(&mut r, op_create(ROOT_INO, "f", FileKind::File));
        let ino = r.resolve("/f").unwrap();
        apply(&mut r, op_create(ROOT_INO, "f", FileKind::File));
        assert_eq!(r.resolve("/f"), Some(ino));
        assert_eq!(r.inode_count(), 2);
    }

    #[test]
    fn create_under_file_is_noop() {
        let mut r = MetaReplica::default();
        apply(&mut r, op_create(ROOT_INO, "f", FileKind::File));
        let f = r.resolve("/f").unwrap();
        apply(&mut r, op_create(f, "child", FileKind::File));
        assert_eq!(r.resolve("/f/child"), None);
    }

    #[test]
    fn unlink_removes_entry_and_inode() {
        let mut r = MetaReplica::default();
        apply(&mut r, op_create(ROOT_INO, "f", FileKind::File));
        let ino = r.resolve("/f").unwrap();
        apply(&mut r, op_unlink(ROOT_INO, "f"));
        assert_eq!(r.resolve("/f"), None);
        assert_eq!(r.attr(ino), None);
        assert!(r.readdir(ROOT_INO).is_empty());
    }

    #[test]
    fn set_size_updates_attr() {
        let mut r = MetaReplica::default();
        apply(&mut r, op_create(ROOT_INO, "f", FileKind::File));
        let ino = r.resolve("/f").unwrap();
        apply(&mut r, op_set_size(ino, 12345));
        assert_eq!(r.attr(ino).unwrap().size, 12345);
        apply(&mut r, op_set_size(999, 1)); // unknown ino: no-op
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut r = MetaReplica::default();
        r.apply(&op_create(ROOT_INO, "dir", FileKind::Dir));
        let dir = r.resolve("/dir").unwrap();
        r.apply(&op_create(ROOT_INO, "a", FileKind::File));
        let a = r.resolve("/a").unwrap();
        r.apply(&op_set_size(a, 55));

        // Move + rename into the directory.
        r.apply(&op_rename(ROOT_INO, "a", dir, "b"));
        assert_eq!(r.resolve("/a"), None);
        assert_eq!(r.resolve("/dir/b"), Some(a));
        assert_eq!(r.attr(a).unwrap().size, 55, "inode unchanged");

        // Rename over an existing destination replaces it.
        r.apply(&op_create(dir, "c", FileKind::File));
        let c = r.resolve("/dir/c").unwrap();
        r.apply(&op_rename(dir, "b", dir, "c"));
        assert_eq!(r.resolve("/dir/c"), Some(a));
        assert_eq!(r.attr(c), None, "replaced inode dropped");
        assert_eq!(r.readdir(dir), vec!["c"]);

        // Renaming a missing source or into a missing dir is a no-op.
        r.apply(&op_rename(dir, "ghost", dir, "x"));
        r.apply(&op_rename(dir, "c", 9999, "x"));
        assert_eq!(r.resolve("/dir/c"), Some(a));
    }

    #[test]
    fn readdir_sorted() {
        let mut r = MetaReplica::default();
        for name in ["zeta", "alpha", "mid"] {
            apply(&mut r, op_create(ROOT_INO, name, FileKind::File));
        }
        assert_eq!(r.readdir(ROOT_INO), vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn two_replicas_converge_on_same_op_sequence() {
        let ops = vec![
            op_create(ROOT_INO, "a", FileKind::Dir),
            op_create(ROOT_INO, "b", FileKind::File),
            op_create(2, "x", FileKind::File),
            op_set_size(3, 77),
            op_unlink(ROOT_INO, "b"),
        ];
        let mut r1 = MetaReplica::default();
        let mut r2 = MetaReplica::default();
        for op in &ops {
            r1.apply(op);
        }
        for op in &ops {
            r2.apply(op);
        }
        assert_eq!(r1.inode_count(), r2.inode_count());
        assert_eq!(r1.resolve("/a/x"), r2.resolve("/a/x"));
        assert_eq!(r1.readdir(ROOT_INO), r2.readdir(ROOT_INO));
    }
}
