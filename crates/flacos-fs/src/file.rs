//! Cursor-style file handles over [`crate::memfs::MemFs`].

use crate::memfs::MemFs;
use rack_sim::SimError;

/// An open file with a position cursor. Handles are plain values: they
/// hold no locks and become stale only if the file is unlinked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHandle {
    ino: u64,
    pos: u64,
}

impl FileHandle {
    /// Open the file at `path` (must exist).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if the path does not resolve to a file.
    pub fn open(fs: &mut MemFs, path: &str) -> Result<Self, SimError> {
        let attr = fs
            .stat(path)?
            .ok_or_else(|| SimError::Protocol(format!("open of missing {path:?}")))?;
        Ok(FileHandle {
            ino: attr.ino,
            pos: 0,
        })
    }

    /// Open, creating the file if absent.
    ///
    /// # Errors
    ///
    /// Propagates create errors.
    pub fn create(fs: &mut MemFs, path: &str) -> Result<Self, SimError> {
        let ino = fs.create(path)?;
        Ok(FileHandle { ino, pos: 0 })
    }

    /// The file's inode number.
    pub fn ino(&self) -> u64 {
        self.ino
    }

    /// Current cursor position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Move the cursor to `pos`.
    pub fn seek(&mut self, pos: u64) {
        self.pos = pos;
    }

    /// Read at the cursor, advancing it. Returns bytes read.
    ///
    /// # Errors
    ///
    /// Propagates read errors.
    pub fn read(&mut self, fs: &mut MemFs, buf: &mut [u8]) -> Result<usize, SimError> {
        let n = fs.read_at(self.ino, self.pos, buf)?;
        self.pos += n as u64;
        Ok(n)
    }

    /// Write at the cursor, advancing it.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn write(&mut self, fs: &mut MemFs, data: &[u8]) -> Result<(), SimError> {
        fs.write_at(self.ino, self.pos, data)?;
        self.pos += data.len() as u64;
        Ok(())
    }

    /// Append at end of file (cursor moves to the new end).
    ///
    /// # Errors
    ///
    /// Propagates stat/write errors.
    pub fn append(&mut self, fs: &mut MemFs, data: &[u8]) -> Result<(), SimError> {
        let size = fs
            .with_meta(|m| m.attr(self.ino).map(|a| a.size))?
            .ok_or_else(|| SimError::Protocol(format!("append to unknown inode {}", self.ino)))?;
        self.pos = size;
        self.write(fs, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockDevice;
    use crate::memfs::FsShared;
    use flacdk::alloc::GlobalAllocator;
    use flacdk::sync::rcu::EpochManager;
    use flacdk::sync::reclaim::RetireList;
    use rack_sim::{Rack, RackConfig};
    use std::sync::Arc;

    fn fs() -> (Rack, MemFs) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(64 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let shared = FsShared::alloc(
            rack.global(),
            rack.node_count(),
            alloc,
            epochs,
            RetireList::new(),
            Arc::new(BlockDevice::nvme(rack.global(), rack.node_count()).unwrap()),
        )
        .unwrap();
        let memfs = MemFs::mount(shared, rack.node(0));
        (rack, memfs)
    }

    #[test]
    fn sequential_write_then_read() {
        let (_rack, mut fs) = fs();
        let mut h = FileHandle::create(&mut fs, "/log").unwrap();
        h.write(&mut fs, b"line one\n").unwrap();
        h.write(&mut fs, b"line two\n").unwrap();
        assert_eq!(h.position(), 18);

        h.seek(0);
        let mut buf = [0u8; 64];
        let n = h.read(&mut fs, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"line one\nline two\n");
        assert_eq!(h.read(&mut fs, &mut buf).unwrap(), 0, "EOF");
    }

    #[test]
    fn append_goes_to_end_regardless_of_cursor() {
        let (_rack, mut fs) = fs();
        let mut h = FileHandle::create(&mut fs, "/f").unwrap();
        h.write(&mut fs, b"0123456789").unwrap();
        h.seek(2);
        h.append(&mut fs, b"END").unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), b"0123456789END");
        assert_eq!(h.position(), 13);
    }

    #[test]
    fn open_missing_fails_open_existing_works() {
        let (_rack, mut fs) = fs();
        assert!(FileHandle::open(&mut fs, "/nope").is_err());
        fs.write_file("/yes", b"data").unwrap();
        let h = FileHandle::open(&mut fs, "/yes").unwrap();
        assert_eq!(h.position(), 0);
        assert!(h.ino() > 0);
    }
}
