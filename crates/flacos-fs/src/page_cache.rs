//! The rack-shared page cache.
//!
//! Paper §3.4: *"FlacOS places page cache into the global memory which
//! enables all nodes to share a single page cache copy"* — cutting the
//! rack-wide memory spent on duplicate file pages and turning the saved
//! memory into extra cache capacity.
//!
//! Structure: an RCU radix tree (in global memory) maps a page key
//! (`ino * PAGES_PER_FILE + page_index`) to the global frame holding the
//! page. Updates are **multi-version**: a write publishes a brand-new
//! frame and retires the old one, so concurrent readers on other nodes
//! either see the complete old version or the complete new one — never a
//! torn page — without any cross-node cache coherence. Dirty pages are
//! tracked for the asynchronous [`crate::writeback::WritebackDaemon`].

use flacdk::alloc::GlobalAllocator;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use flacdk::sync::{SyncCell, SyncCellConfig, SyncPolicy, SyncState};
use flacdk::wire::{Decoder, Encoder};
use flacos_mem::PAGE_SIZE;
use rack_sim::{Counter, GAddr, GlobalMemory, NodeCtx, SimError};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Pages addressable per file (64 MiB files with 4 KiB pages).
pub const PAGES_PER_FILE: u64 = 1 << 14;

/// Cache behaviour counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCacheStats {
    /// Page lookups that found a cached frame.
    pub hits: u64,
    /// Page lookups that missed.
    pub misses: u64,
    /// Page versions published (writes + fills).
    pub inserts: u64,
    /// Pages evicted.
    pub evictions: u64,
}

/// Dirty/resident bookkeeping as a deterministic state machine behind a
/// [`SyncCell`]: every mutation is a committed op, so the sets stay
/// consistent across nodes without assuming hardware coherence, and a
/// node crash mid-writeback can replay them.
#[derive(Debug, Default, Clone)]
struct PageSets {
    dirty: BTreeSet<u64>,
    resident: BTreeSet<u64>,
    inserts: u64,
    evictions: u64,
    /// Result stash for the most recent take-dirty op (flat-combining:
    /// the op's outcome is a pure function of the pre-op state).
    last_taken: Vec<u64>,
}

const PS_INSERT: u8 = 0;
const PS_EVICT: u8 = 1;
const PS_TAKE_DIRTY: u8 = 2;
const PS_MARK_DIRTY: u8 = 3;

impl SyncState for PageSets {
    fn apply(&mut self, op: &[u8]) {
        let mut d = Decoder::new(op);
        let (Ok(tag), Ok(key)) = (d.u8(), d.u64()) else {
            return;
        };
        match tag {
            PS_INSERT => {
                self.resident.insert(key);
                let clean = matches!(d.u8(), Ok(1));
                if !clean {
                    self.dirty.insert(key);
                }
                self.inserts += 1;
            }
            PS_EVICT => {
                self.resident.remove(&key);
                self.evictions += 1;
            }
            PS_TAKE_DIRTY => {
                // `key` carries the batch limit.
                let keys: Vec<u64> = self.dirty.iter().take(key as usize).copied().collect();
                for k in &keys {
                    self.dirty.remove(k);
                }
                self.last_taken = keys;
            }
            PS_MARK_DIRTY => {
                self.dirty.insert(key);
            }
            _ => {}
        }
    }
}

fn ps_op(tag: u8, key: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(tag).put_u64(key);
    e.into_vec()
}

/// Per-node held counter handles for the per-operation paths. Lazily
/// initialized so a node that never touches the cache registers nothing
/// in its snapshot, matching the old one-shot `registry().add` calls.
#[derive(Debug, Default)]
struct NodeCounters {
    hit: OnceLock<Counter>,
    miss: OnceLock<Counter>,
    insert: OnceLock<Counter>,
    evict: OnceLock<Counter>,
}

/// The single, rack-shared page cache.
#[derive(Debug)]
pub struct SharedPageCache {
    index: flacdk::ds::radix::RadixTree,
    alloc: GlobalAllocator,
    epochs: Arc<EpochManager>,
    retired: RetireList,
    /// Dirty/resident sets — write-heavy (every insert/evict/writeback
    /// touches them), so they default to delegation.
    sets: Arc<SyncCell<PageSets>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// One counter set per node id; the cache is shared, so every node's
    /// lookups/inserts/evicts bump its *own* registry without re-taking
    /// the registry lock per operation.
    ctrs: Box<[NodeCounters]>,
    /// Updates committed since the last op-log GC; insert-heavy bursts
    /// (container cold starts) must release the ring themselves — the
    /// writeback daemon's GC alone cannot keep up.
    since_gc: AtomicU64,
}

impl SharedPageCache {
    /// Allocate the shared cache structures in `global`.
    ///
    /// # Errors
    ///
    /// Fails when global memory is exhausted.
    pub fn alloc(
        global: &GlobalMemory,
        alloc: GlobalAllocator,
        epochs: Arc<EpochManager>,
        retired: RetireList,
    ) -> Result<Arc<Self>, SimError> {
        let sets = SyncCell::alloc(
            global,
            "page_cache_sets",
            SyncCellConfig::new(epochs.nodes(), SyncPolicy::Delegated).with_log(8192, 48),
            PageSets::default(),
        )?;
        let ctrs = (0..epochs.nodes())
            .map(|_| NodeCounters::default())
            .collect();
        Ok(Arc::new(SharedPageCache {
            index: flacdk::ds::radix::RadixTree::alloc(global, 4)?,
            alloc,
            epochs,
            retired,
            sets,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            ctrs,
            since_gc: AtomicU64::new(0),
        }))
    }

    /// The sync cell guarding the dirty/resident sets, as a recovery
    /// hook for `flacos-fault`'s orchestrator.
    pub fn sync_cell(&self) -> Arc<dyn flacdk::sync::SyncRecover> {
        self.sets.clone()
    }

    /// Note one committed set update; every `GC_EVERY` the consumed log
    /// prefix is released so update-only workloads (a cold start
    /// inserting thousands of pages with no writeback cycle) cannot
    /// fill the op ring.
    fn note_update(&self, ctx: &Arc<NodeCtx>) -> Result<(), SimError> {
        const GC_EVERY: u64 = 2048;
        if self.since_gc.fetch_add(1, Ordering::Relaxed) + 1 >= GC_EVERY {
            self.since_gc.store(0, Ordering::Relaxed);
            self.sets.gc(ctx)?;
        }
        Ok(())
    }

    /// Bump `ctx`'s held handle for the `page_cache/name` counter.
    fn count(
        &self,
        ctx: &Arc<NodeCtx>,
        name: &'static str,
        pick: fn(&NodeCounters) -> &OnceLock<Counter>,
    ) {
        match self.ctrs.get(ctx.id().0) {
            Some(nc) => pick(nc)
                .get_or_init(|| ctx.stats().registry().counter("page_cache", name))
                .incr(),
            // A ctx beyond the epoch manager's node range — not expected,
            // but never silently drop the count.
            None => ctx.stats().registry().counter("page_cache", name).incr(),
        }
    }

    /// The cache key for page `page_idx` of file `ino`.
    ///
    /// # Panics
    ///
    /// Panics if `page_idx` exceeds [`PAGES_PER_FILE`].
    pub fn key(ino: u64, page_idx: u64) -> u64 {
        assert!(
            page_idx < PAGES_PER_FILE,
            "page index {page_idx} exceeds per-file limit"
        );
        ino * PAGES_PER_FILE + page_idx
    }

    /// Look up the frame currently caching `key`.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn lookup(&self, ctx: &Arc<NodeCtx>, key: u64) -> Result<Option<GAddr>, SimError> {
        let guard = self.epochs.handle(ctx.clone()).read_lock()?;
        let hit = self.index.get(ctx, &guard, key)?;
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.count(ctx, "hit", |nc| &nc.hit);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.count(ctx, "miss", |nc| &nc.miss);
        }
        Ok(hit.map(GAddr))
    }

    /// Read the cached page `key` into `buf` (one full page).
    /// Returns `false` on a cache miss (buf untouched).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly one page.
    pub fn read_page(
        &self,
        ctx: &Arc<NodeCtx>,
        key: u64,
        buf: &mut [u8],
    ) -> Result<bool, SimError> {
        assert_eq!(buf.len(), PAGE_SIZE, "page cache reads whole pages");
        let Some(frame) = self.lookup(ctx, key)? else {
            return Ok(false);
        };
        ctx.invalidate(frame, PAGE_SIZE);
        ctx.read(frame, buf)?;
        Ok(true)
    }

    /// Publish `content` as the new version of page `key`, retiring any
    /// previous version. Marks the page dirty unless `clean_fill` (a fill
    /// from backing storage, already durable).
    ///
    /// # Errors
    ///
    /// Propagates allocation and memory errors.
    ///
    /// # Panics
    ///
    /// Panics if `content` is not exactly one page.
    pub fn insert_page(
        &self,
        ctx: &Arc<NodeCtx>,
        key: u64,
        content: &[u8],
        clean_fill: bool,
    ) -> Result<GAddr, SimError> {
        assert_eq!(content.len(), PAGE_SIZE, "page cache stores whole pages");
        let frame = self.alloc.alloc(ctx, PAGE_SIZE)?;
        ctx.write(frame, content)?;
        ctx.writeback(frame, PAGE_SIZE);
        let old = self
            .index
            .insert(ctx, &self.alloc, &self.epochs, &self.retired, key, frame.0)?;
        if let Some(old_frame) = old {
            let epoch = self.epochs.current(ctx)?;
            self.retired.retire(GAddr(old_frame), PAGE_SIZE, epoch);
        }
        let mut e = Encoder::new();
        e.put_u8(PS_INSERT)
            .put_u64(key)
            .put_u8(u8::from(clean_fill));
        self.sets.update(ctx, &e.into_vec())?;
        self.note_update(ctx)?;
        self.count(ctx, "insert", |nc| &nc.insert);
        Ok(frame)
    }

    /// Read-modify-write `len = data.len()` bytes at `offset` within page
    /// `key`, publishing a new version (multi-version update).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if the write exceeds the page; memory
    /// errors are propagated.
    pub fn write_in_page(
        &self,
        ctx: &Arc<NodeCtx>,
        key: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), SimError> {
        if offset + data.len() > PAGE_SIZE {
            return Err(SimError::Protocol(format!(
                "write of {} bytes at offset {offset} exceeds page",
                data.len()
            )));
        }
        let mut content = vec![0u8; PAGE_SIZE];
        self.read_page(ctx, key, &mut content)?; // miss leaves zeros (sparse)
        content[offset..offset + data.len()].copy_from_slice(data);
        self.insert_page(ctx, key, &content, false)?;
        Ok(())
    }

    /// Evict a **clean** page, freeing its frame (via retire, so readers
    /// mid-access stay safe).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] if the page is dirty or absent.
    pub fn evict(&self, ctx: &Arc<NodeCtx>, key: u64) -> Result<(), SimError> {
        if self.sets.read(ctx, |s| s.dirty.contains(&key))? {
            return Err(SimError::Protocol(format!("cannot evict dirty page {key}")));
        }
        let old = self
            .index
            .remove(ctx, &self.alloc, &self.epochs, &self.retired, key)?;
        let Some(frame) = old else {
            return Err(SimError::Protocol(format!(
                "evict of non-resident page {key}"
            )));
        };
        let epoch = self.epochs.current(ctx)?;
        self.retired.retire(GAddr(frame), PAGE_SIZE, epoch);
        self.sets.update(ctx, &ps_op(PS_EVICT, key))?;
        self.note_update(ctx)?;
        self.count(ctx, "evict", |nc| &nc.evict);
        Ok(())
    }

    /// Take up to `max` dirty keys for writeback (they are marked clean;
    /// the caller must persist them or re-mark them dirty).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn take_dirty(&self, ctx: &Arc<NodeCtx>, max: usize) -> Result<Vec<u64>, SimError> {
        let (_, keys) = self
            .sets
            .update_map(ctx, &ps_op(PS_TAKE_DIRTY, max as u64), |s| {
                s.last_taken.clone()
            })?;
        // The batch is folded in; release the consumed log prefix so
        // a long-lived daemon cannot exhaust the op ring.
        self.sets.gc(ctx)?;
        Ok(keys)
    }

    /// Re-mark a page dirty (writeback failed).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn mark_dirty(&self, ctx: &Arc<NodeCtx>, key: u64) -> Result<(), SimError> {
        self.sets.update(ctx, &ps_op(PS_MARK_DIRTY, key))?;
        self.note_update(ctx)?;
        Ok(())
    }

    /// Number of dirty pages awaiting writeback.
    pub fn dirty_pages(&self) -> usize {
        self.sets.peek(|s| s.dirty.len())
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.sets.peek(|s| s.resident.len())
    }

    /// Bytes of global memory holding page content.
    pub fn memory_bytes(&self) -> usize {
        self.resident_pages() * PAGE_SIZE
    }

    /// Reclaim retired page versions and index nodes past the grace
    /// period, returning their storage to the allocator.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn reclaim(&self, ctx: &NodeCtx) -> Result<usize, SimError> {
        self.retired.reclaim(ctx, &self.epochs, &self.alloc)
    }

    /// Behaviour counters.
    pub fn stats(&self) -> PageCacheStats {
        let (inserts, evictions) = self.sets.peek(|s| (s.inserts, s.evictions));
        PageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts,
            evictions,
        }
    }

    /// The epoch manager readers synchronize on.
    pub fn epochs(&self) -> &Arc<EpochManager> {
        &self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rack_sim::{Rack, RackConfig};

    fn setup() -> (Rack, Arc<SharedPageCache>) {
        let rack = Rack::new(RackConfig::small_test().with_global_mem(64 << 20));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let cache =
            SharedPageCache::alloc(rack.global(), alloc, epochs, RetireList::new()).unwrap();
        (rack, cache)
    }

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_SIZE]
    }

    #[test]
    fn single_copy_shared_across_nodes() {
        let (rack, cache) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let key = SharedPageCache::key(2, 0);
        let frame0 = cache.insert_page(&n0, key, &page(7), true).unwrap();
        // Node 1 reads the very same frame — one copy rack-wide.
        assert_eq!(cache.lookup(&n1, key).unwrap(), Some(frame0));
        let mut buf = page(0);
        assert!(cache.read_page(&n1, key, &mut buf).unwrap());
        assert_eq!(buf, page(7));
        assert_eq!(cache.resident_pages(), 1);
        assert_eq!(cache.memory_bytes(), PAGE_SIZE);
    }

    #[test]
    fn multi_version_write_is_never_torn() {
        let (rack, cache) = setup();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let key = SharedPageCache::key(1, 3);
        cache.insert_page(&n0, key, &page(1), true).unwrap();
        // Reader on n1 caches the old version's frame address.
        let old = cache.lookup(&n1, key).unwrap().unwrap();
        // Writer publishes a new version.
        cache.write_in_page(&n0, key, 0, &page(2)).unwrap();
        let new = cache.lookup(&n1, key).unwrap().unwrap();
        assert_ne!(old, new, "new version lives in a fresh frame");
        let mut buf = page(0);
        cache.read_page(&n1, key, &mut buf).unwrap();
        assert_eq!(buf, page(2));
    }

    #[test]
    fn partial_write_overlays_existing_content() {
        let (rack, cache) = setup();
        let n0 = rack.node(0);
        let key = SharedPageCache::key(1, 0);
        cache.insert_page(&n0, key, &page(5), true).unwrap();
        cache.write_in_page(&n0, key, 100, b"hello").unwrap();
        let mut buf = page(0);
        cache.read_page(&n0, key, &mut buf).unwrap();
        assert_eq!(&buf[100..105], b"hello");
        assert_eq!(buf[99], 5);
        assert_eq!(buf[105], 5);
    }

    #[test]
    fn sparse_write_fills_zeros() {
        let (rack, cache) = setup();
        let n0 = rack.node(0);
        let key = SharedPageCache::key(3, 1);
        cache.write_in_page(&n0, key, 10, b"x").unwrap();
        let mut buf = page(9);
        cache.read_page(&n0, key, &mut buf).unwrap();
        assert_eq!(buf[9], 0);
        assert_eq!(buf[10], b'x');
    }

    #[test]
    fn dirty_tracking_and_eviction_rules() {
        let (rack, cache) = setup();
        let n0 = rack.node(0);
        let clean = SharedPageCache::key(1, 0);
        let dirty = SharedPageCache::key(1, 1);
        cache.insert_page(&n0, clean, &page(1), true).unwrap();
        cache.insert_page(&n0, dirty, &page(2), false).unwrap();
        assert_eq!(cache.dirty_pages(), 1);
        assert!(
            cache.evict(&n0, dirty).is_err(),
            "dirty pages cannot be evicted"
        );
        cache.evict(&n0, clean).unwrap();
        assert_eq!(cache.resident_pages(), 1);
        assert!(cache.evict(&n0, clean).is_err(), "double evict");
        // Reclaim returns the evicted frame to the allocator.
        assert!(cache.reclaim(&n0).unwrap() >= 1);
    }

    #[test]
    fn take_dirty_drains_in_batches() {
        let (rack, cache) = setup();
        let n0 = rack.node(0);
        for i in 0..5 {
            cache
                .insert_page(&n0, SharedPageCache::key(1, i), &page(i as u8), false)
                .unwrap();
        }
        let first = cache.take_dirty(&n0, 3).unwrap();
        assert_eq!(first.len(), 3);
        let rest = cache.take_dirty(&n0, 10).unwrap();
        assert_eq!(rest.len(), 2);
        assert_eq!(cache.dirty_pages(), 0);
        cache.mark_dirty(&n0, first[0]).unwrap();
        assert_eq!(cache.dirty_pages(), 1);
    }

    #[test]
    fn out_of_page_write_rejected() {
        let (rack, cache) = setup();
        let n0 = rack.node(0);
        let key = SharedPageCache::key(1, 0);
        assert!(cache
            .write_in_page(&n0, key, PAGE_SIZE - 2, b"abc")
            .is_err());
    }

    #[test]
    #[should_panic(expected = "per-file limit")]
    fn oversized_page_index_panics() {
        SharedPageCache::key(1, PAGES_PER_FILE);
    }
}
