//! Real-thread concurrency stress tests.
//!
//! Most experiments run the simulator cooperatively (deterministic
//! virtual time), but the substrate is fully `Sync`: global memory is
//! atomics, node caches are behind locks, and the lock-free structures
//! claim linearizability. These tests put actual OS threads behind those
//! claims — fabric atomics, the operation log, the SPSC ring, the
//! allocator, and the COW radix tree all hammered in parallel.

use flacdk::alloc::GlobalAllocator;
use flacdk::ds::radix::RadixTree;
use flacdk::ds::ringbuf::SpscRing;
use flacdk::hw::GlobalCell;
use flacdk::sync::oplog::SharedOpLog;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use rack_sim::{GAddr, Rack, RackConfig, SimError};
use std::collections::HashSet;
use std::thread;

fn rack() -> Rack {
    Rack::new(RackConfig::small_test().with_global_mem(64 << 20))
}

#[test]
fn fabric_atomics_are_linearizable_across_threads() {
    let rack = rack();
    let cell = GlobalCell::alloc(rack.global(), 0).unwrap();
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 2_000;

    thread::scope(|s| {
        for t in 0..THREADS {
            let node = rack.node(t % rack.node_count());
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    cell.fetch_add(&node, 1).unwrap();
                }
            });
        }
    });
    assert_eq!(
        cell.load(&rack.node(0)).unwrap(),
        THREADS as u64 * PER_THREAD,
        "no increments lost under real parallelism"
    );
}

#[test]
fn spsc_ring_is_fifo_under_real_threads() {
    let rack = rack();
    let ring = SpscRing::alloc(rack.global(), 32, 64).unwrap();
    const COUNT: u32 = 5_000;

    thread::scope(|s| {
        let producer = rack.node(0);
        let consumer = rack.node(1);
        s.spawn(move || {
            for i in 0..COUNT {
                loop {
                    match ring.push(&producer, &i.to_le_bytes()) {
                        Ok(()) => break,
                        Err(SimError::WouldBlock) => std::hint::spin_loop(),
                        Err(e) => panic!("push: {e}"),
                    }
                }
            }
        });
        s.spawn(move || {
            for expected in 0..COUNT {
                let got = loop {
                    match ring.pop(&consumer) {
                        Ok(v) => break v,
                        Err(SimError::WouldBlock) => std::hint::spin_loop(),
                        Err(e) => panic!("pop: {e}"),
                    }
                };
                assert_eq!(u32::from_le_bytes(got.try_into().unwrap()), expected);
            }
        });
    });
}

#[test]
fn oplog_appends_from_threads_claim_distinct_committed_slots() {
    let rack = rack();
    let log = SharedOpLog::alloc(rack.global(), 4096, 64).unwrap();
    const THREADS: usize = 4;
    const PER_THREAD: usize = 500;

    thread::scope(|s| {
        for t in 0..THREADS {
            let node = rack.node(t % rack.node_count());
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let payload = ((t * PER_THREAD + i) as u64).to_le_bytes();
                    // single-op: stress races the bare CAS path on purpose.
                    log.append(&node, &payload).unwrap();
                }
            });
        }
    });

    // Every entry committed, all payloads present exactly once.
    let reader = rack.node(0);
    let tail = log.tail(&reader).unwrap();
    assert_eq!(tail, (THREADS * PER_THREAD) as u64);
    let mut seen = HashSet::new();
    for idx in 0..tail {
        let entry = log.read(&reader, idx).unwrap().expect("committed");
        let v = u64::from_le_bytes(entry.try_into().unwrap());
        assert!(seen.insert(v), "duplicate payload {v}");
    }
    assert_eq!(seen.len(), THREADS * PER_THREAD);
}

#[test]
fn allocator_hands_out_disjoint_objects_under_threads() {
    let rack = rack();
    let alloc = GlobalAllocator::new(rack.global().clone());
    const THREADS: usize = 4;
    const PER_THREAD: usize = 300;

    let mut all: Vec<u64> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let alloc = alloc.clone();
                let node = rack.node(t % rack.node_count());
                s.spawn(move || {
                    (0..PER_THREAD)
                        .map(|_| alloc.alloc(&node, 128).unwrap().0)
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    all.sort_unstable();
    for pair in all.windows(2) {
        assert!(pair[1] - pair[0] >= 128, "live objects overlap: {pair:?}");
    }
}

#[test]
fn radix_concurrent_inserts_of_disjoint_keys_all_land() {
    let rack = rack();
    let alloc = GlobalAllocator::new(rack.global().clone());
    let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
    let retired = RetireList::new();
    let tree = RadixTree::alloc(rack.global(), 3).unwrap();
    const THREADS: usize = 2; // one per node (CAS-retry path is shared)
    const PER_THREAD: u64 = 300;

    thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let node = rack.node(t as usize);
            let alloc = alloc.clone();
            let epochs = epochs.clone();
            let retired = retired.clone();
            let tree = &tree;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let key = t * PER_THREAD + i;
                    tree.insert(&node, &alloc, &epochs, &retired, key, key * 7)
                        .unwrap();
                }
            });
        }
    });

    let node = rack.node(0);
    let guard = epochs.handle(node.clone()).read_lock().unwrap();
    for key in 0..(THREADS as u64 * PER_THREAD) {
        assert_eq!(
            tree.get(&node, &guard, key).unwrap(),
            Some(key * 7),
            "key {key} lost in a CAS race"
        );
    }
    drop(guard);
    // And the retire machinery stayed consistent.
    retired.reclaim(&node, &epochs, &alloc).unwrap();
}

#[test]
fn sharded_cache_cost_totals_are_interleaving_independent() {
    // Four threads hammer ONE node's cache, each owning a disjoint set of
    // line-id classes (ids congruent to t mod 4), which also means
    // disjoint banks of the 16-bank cache (bank = id & 15). Because each
    // line's hit/miss/dirty history then depends only on its own thread's
    // program order, the node's total simulated charge and cache counters
    // must be identical on every run — and identical to running the same
    // four programs serially. This is the determinism contract sharding
    // must preserve: parallelism may reorder wall-clock execution, never
    // simulated cost.
    const THREADS: u64 = 4;
    const LINES_PER_THREAD: u64 = 64;
    const ROUNDS: u64 = 20;

    fn thread_program(node: &rack_sim::NodeCtx, base_line: u64, t: u64) {
        for round in 0..ROUNDS {
            for i in 0..LINES_PER_THREAD {
                let line = base_line + i * THREADS + t;
                let addr = GAddr(line * rack_sim::LINE_SIZE as u64);
                node.write_u64(addr, line ^ round).unwrap();
                assert_eq!(node.read_u64(addr).unwrap(), line ^ round);
                if (i + round) % 3 == 0 {
                    node.writeback(addr, 8);
                }
                if (i + round) % 5 == 0 {
                    node.invalidate(addr, 8);
                }
            }
        }
    }

    let run = |parallel: bool| {
        let rack = rack();
        let n0 = rack.node(0);
        let span = (THREADS * LINES_PER_THREAD) as usize * rack_sim::LINE_SIZE;
        let base = rack.global().alloc(span, rack_sim::LINE_SIZE).unwrap();
        let base_line = base.0 / rack_sim::LINE_SIZE as u64;
        if parallel {
            thread::scope(|s| {
                for t in 0..THREADS {
                    let n0 = n0.clone();
                    s.spawn(move || thread_program(&n0, base_line, t));
                }
            });
        } else {
            for t in 0..THREADS {
                thread_program(&n0, base_line, t);
            }
        }
        let snap = n0.stats().snapshot();
        assert_eq!(snap.total_charged_ns(), n0.clock().now());
        (n0.clock().now(), n0.cache_stats())
    };

    let serial = run(false);
    for attempt in 0..4 {
        assert_eq!(
            run(true),
            serial,
            "parallel run {attempt} diverged from the serial baseline"
        );
    }
}

#[test]
fn cache_incoherence_is_thread_safe_even_if_stale() {
    // Two threads on different nodes read/write the same line through
    // their own caches. Values may be stale (that is the model!) but the
    // simulator must never tear a word or crash.
    let rack = rack();
    let addr = rack.global().alloc(8, 8).unwrap();
    const ROUNDS: u64 = 3_000;

    thread::scope(|s| {
        let writer = rack.node(0);
        s.spawn(move || {
            for i in 0..ROUNDS {
                // Writes a recognizable pattern, both halves identical.
                let v = i << 32 | i;
                writer.write_u64(addr, v).unwrap();
                writer.writeback(addr, 8);
            }
        });
        let reader = rack.node(1);
        s.spawn(move || {
            for _ in 0..ROUNDS {
                reader.invalidate(addr, 8);
                let v = reader.read_u64(addr).unwrap();
                assert_eq!(v >> 32, v & 0xffff_ffff, "torn word observed: {v:#x}");
            }
        });
    });
}

#[test]
fn cold_miss_storm_is_single_flight_per_line() {
    // N threads race through the same 64 cold lines. Single-flight fills
    // guarantee exactly one fabric read — one `misses` increment — per
    // line no matter how the threads interleave: every other access
    // completes as a hit (coalesced onto the in-flight fill or served
    // after it publishes), so the counters and the summed simulated cost
    // are interleaving-independent constants.
    use rack_sim::cache::{CacheConfig, NodeCache};
    use rack_sim::{GlobalMemory, LatencyModel, LINE_SIZE};
    use std::sync::Barrier;

    const THREADS: u64 = 4;
    const LINES: u64 = 64;
    let global = GlobalMemory::new((LINES as usize) * LINE_SIZE);
    let lat = LatencyModel::hccs();
    let cache = NodeCache::new(CacheConfig::default());
    let barrier = Barrier::new(THREADS as usize);

    let total_cost: u64 = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (cache, global, lat, barrier) = (&cache, &global, &lat, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    let mut cost = 0;
                    let mut buf = [0u8; 8];
                    for line in 0..LINES {
                        cost += cache
                            .read(global, lat, GAddr(line * LINE_SIZE as u64), &mut buf)
                            .unwrap();
                    }
                    cost
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    let stats = cache.stats();
    assert_eq!(stats.misses, LINES, "exactly one fill per cold line");
    assert_eq!(stats.hits, (THREADS - 1) * LINES);
    assert!(stats.coalesced_fills <= stats.hits);
    assert_eq!(stats.allocs, 0);
    assert_eq!(
        total_cost,
        LINES * lat.global_read_ns + (THREADS - 1) * LINES * lat.cache_hit_ns,
        "summed simulated cost is an interleaving-independent constant"
    );
}

// The two tests below watch an in-flight fabric operation from another
// thread, which needs the debug-only `set_fabric_delay_for_tests` seam.
#[cfg(debug_assertions)]
#[test]
fn concurrent_cold_misses_coalesce_onto_one_delayed_fill() {
    // One line, four threads, and a fabric read slowed to 20 ms: the
    // barrier releases all threads while the winner's fill is in flight,
    // so the other three must coalesce (wait on the bank condvar) rather
    // than issue duplicate fabric reads — one miss, three coalesced hits,
    // each charged `cache_hit_ns`.
    use rack_sim::cache::{CacheConfig, NodeCache};
    use rack_sim::{GlobalMemory, LatencyModel};
    use std::sync::Barrier;

    const THREADS: usize = 4;
    let global = GlobalMemory::new(4096);
    let lat = LatencyModel::hccs();
    let cache = NodeCache::new(CacheConfig::default());
    global.set_fabric_delay_for_tests(20_000_000);
    let barrier = Barrier::new(THREADS);

    let costs: Vec<u64> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (cache, global, lat, barrier) = (&cache, &global, &lat, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    let mut buf = [0u8; 8];
                    cache.read(global, lat, GAddr(0), &mut buf).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let stats = cache.stats();
    assert_eq!(stats.misses, 1, "single-flight: one fabric read total");
    assert_eq!(stats.hits, THREADS as u64 - 1);
    assert_eq!(
        stats.coalesced_fills,
        THREADS as u64 - 1,
        "every other thread waited on the in-flight fill"
    );
    assert_eq!(
        costs.iter().filter(|&&c| c == lat.global_read_ns).count(),
        1,
        "exactly one thread paid the fabric latency"
    );
    assert_eq!(
        costs.iter().filter(|&&c| c == lat.cache_hit_ns).count(),
        THREADS - 1,
        "coalesced waiters cost-share as hits"
    );
}

#[cfg(debug_assertions)]
#[test]
fn dirty_eviction_writeback_does_not_block_hits_in_same_bank() {
    // Per-bank capacity 1 and a 50 ms fabric delay: thread 1's full-line
    // write of line B evicts dirty line A (same bank) and spends 50 ms in
    // the victim's fabric writeback. That writeback happens with the bank
    // lock RELEASED, so thread 2's read and write hits on B — the same
    // bank — must complete while thread 1 is still inside its call.
    use rack_sim::cache::{CacheConfig, NodeCache};
    use rack_sim::{GlobalMemory, LatencyModel, LINE_SIZE};
    use std::sync::Barrier;
    use std::time::{Duration, Instant};

    let global = GlobalMemory::new(64 * LINE_SIZE);
    let lat = LatencyModel::hccs();
    let cache = NodeCache::new(CacheConfig {
        max_lines: 16,
        banks: 16,
    });
    let line_a = GAddr(0); // bank 0
    let line_b = GAddr(16 * LINE_SIZE as u64); // also bank 0

    // Make line A resident and dirty (the fill runs before the delay).
    cache.write(&global, &lat, line_a, &[7u8; 8]).unwrap();
    global.set_fabric_delay_for_tests(50_000_000);

    let barrier = Barrier::new(2);
    let (t1_done_at, t2_hits_at) = thread::scope(|s| {
        let writer = {
            let (cache, global, lat, barrier) = (&cache, &global, &lat, &barrier);
            s.spawn(move || {
                barrier.wait();
                // Full-line alloc of B: no fill read, publishes B, evicts
                // dirty A, then writes A back with no bank lock held.
                cache.write(global, lat, line_b, &[9u8; LINE_SIZE]).unwrap();
                Instant::now()
            })
        };
        let reader = {
            let (cache, global, lat, barrier) = (&cache, &global, &lat, &barrier);
            s.spawn(move || {
                barrier.wait();
                // Give thread 1 time to publish B and enter the delayed
                // victim writeback (50 ms window, 5 ms offset).
                thread::sleep(Duration::from_millis(5));
                let mut buf = [0u8; 8];
                let read_cost = cache.read(global, lat, line_b, &mut buf).unwrap();
                assert_eq!(buf, [9u8; 8], "hit serves the freshly written line");
                assert_eq!(read_cost, lat.cache_hit_ns, "read must hit");
                // A write hit takes the locked path: the bank lock itself
                // must be free while the victim writeback is in flight.
                let write_cost = cache.write(global, lat, line_b, &[3u8; 8]).unwrap();
                assert_eq!(write_cost, lat.cache_hit_ns, "write must hit");
                Instant::now()
            })
        };
        (writer.join().unwrap(), reader.join().unwrap())
    });

    assert!(
        t2_hits_at < t1_done_at,
        "same-bank hits completed {:?} AFTER the evicting write returned \
         — the victim writeback held the bank lock",
        t2_hits_at - t1_done_at
    );
    let stats = cache.stats();
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.writebacks, 1);
    assert_eq!(stats.allocs, 1);
}
