//! Property-style tests on core data-structure invariants, checked
//! against reference models under pseudo-random operation sequences.
//!
//! Previously these ran under `proptest`; the hermetic (offline,
//! std-only) build replaces it with a hand-rolled deterministic case
//! generator seeded from [`rack_sim::SplitMix64`]. Every case derives
//! from a fixed seed plus the case index, so failures reproduce exactly
//! and print the `(seed, case)` pair that triggered them.

use flacdk::alloc::GlobalAllocator;
use flacdk::ds::hashmap::ReplicatedKv;
use flacdk::ds::radix::RadixTree;
use flacdk::ds::ringbuf::SpscRing;
use flacdk::sync::oplog::SharedOpLog;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use flacdk::wire::{Decoder, Encoder};
use flacos_mem::dedup::PageDeduper;
use flacos_mem::fault::FrameAllocator;
use flacos_mem::tlb::{shootdown_stepped, shootdown_stepped_range, Tlb};
use flacos_mem::vma::{Vma, VmaSet};
use flacos_mem::VirtAddr;
use flacos_mem::PAGE_SIZE;
use flacos_mem::{AddressSpace, PageSize, PhysFrame, Pte, HUGE_PAGE_SIZE, PAGES_PER_HUGE};
use flacos_tier::migrate::{split_region, RegionMigration};
use flacos_tier::Migration;
use rack_sim::{GAddr, Rack, RackConfig, SimError, SplitMix64};
use redis_mini::resp::{Command, Reply};
use std::collections::{HashMap, VecDeque};

/// Base seed for every generator in this file. Bump to explore a fresh
/// schedule; keep fixed for run-to-run reproducibility.
const SEED: u64 = 0xF1AC_0001;

/// Number of generated cases per property (proptest ran 64).
const CASES: u64 = 64;

/// Run `body` once per case with an independently seeded generator,
/// labelling panics with the reproducing `(seed, case)` pair.
fn check<F: Fn(&mut SplitMix64)>(property: &str, body: F) {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(SEED ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!("property `{property}` failed at seed={SEED:#x} case={case}");
            std::panic::resume_unwind(panic);
        }
    }
}

fn small_rack() -> Rack {
    Rack::new(RackConfig::small_test().with_global_mem(32 << 20))
}

#[test]
fn global_memory_byte_rw_roundtrip() {
    check("global_memory_byte_rw_roundtrip", |rng| {
        let offset = rng.gen_index(1000);
        let len = rng.gen_index(300);
        let data = rng.gen_bytes(len);
        let rack = small_rack();
        let g = rack.global();
        g.write_bytes(GAddr(offset as u64), &data).unwrap();
        let mut out = vec![0u8; data.len()];
        g.read_bytes(GAddr(offset as u64), &mut out).unwrap();
        assert_eq!(out, data);
    });
}

#[test]
fn ring_matches_fifo_model() {
    check("ring_matches_fifo_model", |rng| {
        let rack = small_rack();
        let ring = SpscRing::alloc(rack.global(), 16, 64).unwrap();
        let (producer, consumer) = (rack.node(0), rack.node(1));
        let mut model: VecDeque<Vec<u8>> = VecDeque::new();

        let ops = 1 + rng.gen_index(59);
        for _ in 0..ops {
            if rng.gen_bool() {
                let len = rng.gen_index(40);
                let payload = rng.gen_bytes(len);
                match ring.push(&producer, &payload) {
                    Ok(()) => model.push_back(payload),
                    Err(SimError::WouldBlock) => assert_eq!(model.len(), 16),
                    Err(e) => panic!("push: {e}"),
                }
            } else {
                match ring.pop(&consumer) {
                    Ok(got) => assert_eq!(Some(got), model.pop_front()),
                    Err(SimError::WouldBlock) => assert!(model.is_empty()),
                    Err(e) => panic!("pop: {e}"),
                }
            }
        }
        assert_eq!(ring.len(&producer).unwrap() as usize, model.len());
    });
}

#[test]
fn replicated_kv_converges_and_matches_model() {
    check("replicated_kv_converges_and_matches_model", |rng| {
        let rack = small_rack();
        let shared = ReplicatedKv::alloc_shared(rack.global(), 2, 4096, 128).unwrap();
        let mut kv0 = ReplicatedKv::new(shared.clone(), rack.node(0));
        let mut kv1 = ReplicatedKv::new(shared, rack.node(1));
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();

        let ops = 1 + rng.gen_index(49);
        for i in 0..ops {
            let is_put = rng.gen_bool();
            let key = rng.gen_range(0..16);
            let vlen = rng.gen_index(24);
            let value = rng.gen_bytes(vlen);
            let kv = if i % 2 == 0 { &mut kv0 } else { &mut kv1 };
            if is_put {
                kv.put(key, &value).unwrap();
                model.insert(key, value);
            } else {
                kv.del(key).unwrap();
                model.remove(&key);
            }
        }
        for key in 0..16u64 {
            assert_eq!(kv0.get(key).unwrap(), model.get(&key).cloned());
            assert_eq!(kv1.get(key).unwrap(), model.get(&key).cloned());
        }
        assert_eq!(kv0.len().unwrap(), model.len());
    });
}

#[test]
fn radix_matches_map_model() {
    check("radix_matches_map_model", |rng| {
        let rack = small_rack();
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), 2).unwrap();
        let retired = RetireList::new();
        let tree = RadixTree::alloc(rack.global(), 2).unwrap();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let n0 = rack.node(0);

        let ops = 1 + rng.gen_index(59);
        for _ in 0..ops {
            let insert = rng.gen_bool();
            let key = rng.gen_range(0..512);
            let value = rng.next_u64();
            if insert {
                let prev = tree
                    .insert(&n0, &alloc, &epochs, &retired, key, value)
                    .unwrap();
                assert_eq!(prev, model.insert(key, value));
            } else {
                let prev = tree.remove(&n0, &alloc, &epochs, &retired, key).unwrap();
                assert_eq!(prev, model.remove(&key));
            }
            retired.reclaim(&n0, &epochs, &alloc).unwrap();
        }
        let guard = epochs.handle(rack.node(1)).read_lock().unwrap();
        for key in 0..512u64 {
            assert_eq!(
                tree.get(&rack.node(1), &guard, key).unwrap(),
                model.get(&key).copied()
            );
        }
    });
}

#[test]
fn resp_command_roundtrip() {
    check("resp_command_roundtrip", |rng| {
        let klen = 1 + rng.gen_index(31);
        let key = rng.gen_bytes(klen);
        let vlen = rng.gen_index(256);
        let value = rng.gen_bytes(vlen);
        let cmd = match rng.gen_index(7) {
            0 => Command::Set { key, value },
            1 => Command::Get { key },
            2 => Command::Del { key },
            3 => Command::Incr { key },
            4 => Command::Exists { key },
            5 => Command::Append { key, value },
            _ => Command::Ping,
        };
        let wire = cmd.encode();
        let (parsed, consumed) = Command::parse(&wire).unwrap();
        assert_eq!(parsed, cmd);
        assert_eq!(consumed, wire.len());
    });
}

#[test]
fn resp_reply_roundtrip() {
    check("resp_reply_roundtrip", |rng| {
        let dlen = rng.gen_index(256);
        let data = rng.gen_bytes(dlen);
        for reply in [
            Reply::Bulk(data.clone()),
            Reply::Null,
            Reply::Integer(data.len() as i64),
        ] {
            let wire = reply.encode();
            let (parsed, consumed) = Reply::parse(&wire).unwrap();
            assert_eq!(parsed, reply);
            assert_eq!(consumed, wire.len());
        }
    });
}

#[test]
fn resp_parser_never_panics_on_garbage() {
    check("resp_parser_never_panics_on_garbage", |rng| {
        let blen = rng.gen_index(64);
        let bytes = rng.gen_bytes(blen);
        let _ = Command::parse(&bytes);
        let _ = Reply::parse(&bytes);
    });
}

#[test]
fn wire_codec_roundtrip() {
    check("wire_codec_roundtrip", |rng| {
        let a = rng.next_u64();
        let b = rng.next_u32();
        let slen = rng.gen_index(64);
        let s = rng.gen_bytes(slen);
        let mut e = Encoder::new();
        e.put_u64(a).put_u32(b).put_bytes(&s);
        let buf = e.into_vec();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u64().unwrap(), a);
        assert_eq!(d.u32().unwrap(), b);
        assert_eq!(d.bytes().unwrap(), &s[..]);
        assert_eq!(d.remaining(), 0);
    });
}

#[test]
fn vma_set_never_holds_overlaps() {
    check("vma_set_never_holds_overlaps", |rng| {
        let mut set = VmaSet::new();
        let areas = 1 + rng.gen_index(19);
        for _ in 0..areas {
            let start = rng.gen_range(0..100);
            let len = rng.gen_range(1..20);
            let vma = Vma {
                start: VirtAddr(start * 0x1000),
                end: VirtAddr((start + len) * 0x1000),
                writable: true,
                tag: start,
                page_size: flacos_mem::PageSize::Base,
            };
            let _ = set.insert(vma); // overlaps are rejected, that's fine
        }
        // Invariant: whatever was accepted is pairwise disjoint.
        let all: Vec<&Vma> = set.iter().collect();
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert!(a.end.0 <= b.start.0 || b.end.0 <= a.start.0);
            }
        }
        // And find() agrees with contains().
        for vma in &all {
            assert_eq!(set.find(vma.start).map(|v| v.tag), Some(vma.tag));
        }
    });
}

#[test]
fn oplog_preserves_append_order_and_content() {
    check("oplog_preserves_append_order_and_content", |rng| {
        let rack = small_rack();
        let log = SharedOpLog::alloc(rack.global(), 64, 64).unwrap();
        let (a, b) = (rack.node(0), rack.node(1));
        let count = 1 + rng.gen_index(39);
        let payloads: Vec<Vec<u8>> = (0..count)
            .map(|_| {
                let len = rng.gen_index(40);
                rng.gen_bytes(len)
            })
            .collect();
        for (i, payload) in payloads.iter().enumerate() {
            // Alternate appenders across nodes.
            let node = if i % 2 == 0 { &a } else { &b };
            // single-op: property targets the raw per-op append primitive.
            let idx = log.append(node, payload).unwrap();
            assert_eq!(idx, i as u64, "indices are dense and ordered");
        }
        for (i, payload) in payloads.iter().enumerate() {
            let got = log.read(&b, i as u64).unwrap().expect("committed");
            assert_eq!(&got, payload);
        }
        assert_eq!(log.tail(&a).unwrap(), payloads.len() as u64);
    });
}

#[test]
fn allocator_live_objects_never_overlap() {
    check("allocator_live_objects_never_overlap", |rng| {
        let rack = small_rack();
        let alloc = GlobalAllocator::new(rack.global().clone());
        let node = rack.node(0);
        let mut live: Vec<(u64, usize)> = Vec::new(); // (addr, class size)

        let ops = 1 + rng.gen_index(79);
        for _ in 0..ops {
            let do_alloc = rng.gen_bool();
            let len = 1 + rng.gen_index(499);
            if do_alloc || live.is_empty() {
                let addr = alloc.alloc(&node, len).unwrap();
                let class = GlobalAllocator::size_class(len);
                // Must not overlap any live object.
                for (base, sz) in &live {
                    let disjoint = addr.0 + class as u64 <= *base || base + *sz as u64 <= addr.0;
                    assert!(disjoint, "{addr:?}+{class} overlaps {base:#x}+{sz}");
                }
                live.push((addr.0, class));
            } else {
                let (base, sz) = live.swap_remove(len % live.len());
                alloc.free(&node, GAddr(base), sz);
            }
        }
    });
}

#[test]
fn dedup_refcounts_match_a_reference_model() {
    check("dedup_refcounts_match_a_reference_model", |rng| {
        let rack = small_rack();
        let dedup = PageDeduper::new(FrameAllocator::new(rack.global().clone()));
        let node = rack.node(0);
        // content id -> (frame, model refcount)
        let mut model: HashMap<u8, (GAddr, u64)> = HashMap::new();

        let ops = 1 + rng.gen_index(39);
        for _ in 0..ops {
            let intern = rng.gen_bool();
            let content_id = rng.gen_index(4) as u8;
            if intern {
                let frame = dedup.intern(&node, &vec![content_id; PAGE_SIZE]).unwrap();
                let entry = model.entry(content_id).or_insert((frame, 0));
                assert_eq!(entry.0, frame, "same content, same frame");
                entry.1 += 1;
            } else if let Some((frame, count)) = model.get_mut(&content_id) {
                dedup.release(&node, *frame).unwrap();
                *count -= 1;
                if *count == 0 {
                    let id = content_id;
                    model.remove(&id);
                }
            }
            for (frame, count) in model.values() {
                assert_eq!(dedup.refcount(*frame), *count);
            }
        }
        assert_eq!(dedup.stats().unique_frames as usize, model.len());
    });
}

#[test]
fn versioned_cell_reads_see_complete_versions() {
    check("versioned_cell_reads_see_complete_versions", |rng| {
        use flacdk::sync::rcu::VersionedCell;
        let rack = small_rack();
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), 2).unwrap();
        let retired = RetireList::new();
        let cell = VersionedCell::alloc(rack.global()).unwrap();
        let (writer, reader) = (rack.node(0), rack.node(1));

        let writes = 1 + rng.gen_index(11);
        for _ in 0..writes {
            let len = 1 + rng.gen_index(49);
            let content = rng.gen_bytes(len);
            cell.write(&writer, &alloc, &epochs, &retired, &content)
                .unwrap();
            // Reader on the other node always sees the exact latest bytes.
            let guard = epochs.handle(reader.clone()).read_lock().unwrap();
            let observed = cell.read(&reader, &guard).unwrap();
            assert_eq!(observed.as_deref(), Some(&content[..]));
            drop(guard);
            retired.reclaim(&writer, &epochs, &alloc).unwrap();
        }
    });
}

#[test]
fn seeded_storm_campaigns_replay_byte_identically() {
    use rack_sim::storm::{StormCampaign, StormConfig, StormOp};

    // Property: any seed replayed against a fresh rack with the same
    // deterministic reaction produces the identical event log and the
    // identical cache/fault activity — the reproducibility guarantee
    // `flac-faultstorm --verify` rests on.
    check("seeded_storm_campaigns_replay_byte_identically", |rng| {
        let seed = rng.next_u64();
        let config = StormConfig {
            steps: 40,
            poison_region: Some((GAddr(0), 4096)),
            ..StormConfig::default()
        };
        let run = || {
            let rack = small_rack();
            // A deterministic reaction that actually touches the rack:
            // every workload step does a cached write + writeback.
            let scratch = rack.global().alloc(4096, 64).unwrap();
            let mut writes = 0u64;
            let report = StormCampaign::new(seed, config.clone()).run(&rack, |step, op, rack| {
                if matches!(op, StormOp::Workload) {
                    let addr = GAddr(scratch.0 + (writes % 64) * 64);
                    let node = rack.node(0);
                    if node.is_alive() && node.write_u64(addr, u64::from(step)).is_ok() {
                        node.writeback(addr, 8);
                        writes += 1;
                    }
                }
                format!("{op} handled")
            });
            let cache = rack.node(0).cache_stats();
            let faults: Vec<String> = rack.faults().log_lines();
            (report.log_text(), cache, faults)
        };
        let (log_a, cache_a, faults_a) = run();
        let (log_b, cache_b, faults_b) = run();
        assert_eq!(log_a, log_b, "storm log must be byte-identical");
        assert_eq!(cache_a, cache_b, "cache activity must replay exactly");
        assert_eq!(faults_a, faults_b, "injector log must replay exactly");
    });
}

#[test]
fn mid_migration_readers_see_old_or_new_never_torn() {
    check("mid_migration_readers_see_old_or_new_never_torn", |rng| {
        let rack = small_rack();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let space =
            AddressSpace::alloc(3, rack.global(), alloc, epochs, RetireList::new()).unwrap();
        let frames = FrameAllocator::new(rack.global().clone());
        let vpn = rng.gen_index(32) as u64;
        let old_frame = frames.alloc(&n0).unwrap();
        space
            .map(&n0, vpn, Pte::new(PhysFrame::Global(old_frame), true))
            .unwrap();
        let pattern_a = vec![0xAA; PAGE_SIZE];
        space
            .write(&n0, VirtAddr::from_vpn(vpn), &pattern_a)
            .unwrap();

        // A peer node caches the translation before the move begins.
        let mut tlbs: Vec<Tlb> = (0..2).map(|i| Tlb::new(rack.node(i), 8)).collect();
        let cached = space
            .translate(&n1, VirtAddr::from_vpn(vpn))
            .unwrap()
            .unwrap();
        tlbs[1].fill(3, vpn, cached);

        let dst_frame = frames.alloc(&n0).unwrap();
        let mut m = Migration::begin(&n0, &space, vpn, PhysFrame::Global(dst_frame)).unwrap();
        // Guarded window: every accessor bounces; a torn read of the
        // half-copied destination is impossible.
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            space.read(&n1, VirtAddr::from_vpn(vpn), &mut buf),
            Err(SimError::WouldBlock)
        ));
        assert!(matches!(
            space.write(&n0, VirtAddr::from_vpn(vpn), &[1u8; 8]),
            Err(SimError::WouldBlock)
        ));
        m.copy(&n0, &space).unwrap();

        let expected_frame = if rng.gen_bool() {
            // Commit: the mapping flips atomically to the complete copy
            // and the peer's stale translation is shot down.
            m.commit(&n0, &space, &mut |asid, v| {
                shootdown_stepped(&mut tlbs, 0, asid, v)
            })
            .unwrap();
            assert_eq!(tlbs[1].lookup(3, vpn), None, "stale translation survives");
            dst_frame
        } else {
            // Abort (the migrating node died): a survivor re-publishes
            // the still-authoritative old copy.
            m.abort(&n1, &space).unwrap();
            old_frame
        };
        let pte = space
            .translate(&n1, VirtAddr::from_vpn(vpn))
            .unwrap()
            .unwrap();
        assert_eq!(pte.frame, PhysFrame::Global(expected_frame));
        assert!(!pte.migrating);
        space.read(&n1, VirtAddr::from_vpn(vpn), &mut buf).unwrap();
        assert_eq!(buf, pattern_a, "whole pattern A on either outcome");

        // The page stays writable and coherent after the protocol ends.
        let pattern_b = vec![0xBB; PAGE_SIZE];
        space
            .write(&n1, VirtAddr::from_vpn(vpn), &pattern_b)
            .unwrap();
        space.read(&n0, VirtAddr::from_vpn(vpn), &mut buf).unwrap();
        assert_eq!(buf, pattern_b);
    });
}

#[test]
fn mid_region_migration_readers_see_old_or_new_never_torn() {
    check(
        "mid_region_migration_readers_see_old_or_new_never_torn",
        |rng| {
            let rack = small_rack();
            let (n0, n1) = (rack.node(0), rack.node(1));
            let alloc = GlobalAllocator::new(rack.global().clone());
            let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
            let space =
                AddressSpace::alloc(3, rack.global(), alloc, epochs, RetireList::new()).unwrap();
            let frames = FrameAllocator::new(rack.global().clone());
            let head = PAGES_PER_HUGE * rng.gen_index(2) as u64;
            let mut page = vec![0u8; PAGE_SIZE];
            for i in 0..PAGES_PER_HUGE {
                let f = frames.alloc(&n0).unwrap();
                space
                    .map(&n0, head + i, Pte::new(PhysFrame::Global(f), true))
                    .unwrap();
                page.fill(i as u8 ^ 0xA5);
                space.write_frame(&n0, PhysFrame::Global(f), &page).unwrap();
            }

            // A peer caches a random interior translation pre-move.
            let mut tlbs: Vec<Tlb> = (0..2).map(|i| Tlb::new(rack.node(i), 8)).collect();
            let probe = head + rng.gen_index(PAGES_PER_HUGE as usize) as u64;
            let cached = space
                .translate(&n1, VirtAddr::from_vpn(probe))
                .unwrap()
                .unwrap();
            tlbs[1].fill(3, probe, cached);

            let dst = rack.global().alloc(HUGE_PAGE_SIZE, PAGE_SIZE).unwrap();
            let mut m = RegionMigration::begin(&n0, &space, head, PhysFrame::Global(dst)).unwrap();
            // Guarded window: every page of the region bounces; a torn
            // read of the half-copied destination span is impossible.
            let mut buf = vec![0u8; PAGE_SIZE];
            assert!(matches!(
                space.read(&n1, VirtAddr::from_vpn(probe), &mut buf),
                Err(SimError::WouldBlock)
            ));
            assert!(matches!(
                space.write(&n0, VirtAddr::from_vpn(head), &[1u8; 8]),
                Err(SimError::WouldBlock)
            ));
            m.copy(&n0, &space).unwrap();

            if rng.gen_bool() {
                // Commit: the head flips atomically to one huge mapping
                // over the complete copy, and ONE ranged round retires
                // all 512 stale translations rack-wide.
                m.commit(&n0, &space, &mut |asid, v, span| {
                    shootdown_stepped_range(&mut tlbs, 0, asid, v, span)
                })
                .unwrap();
                assert_eq!(tlbs[0].stats().shootdown_rounds, 1, "one round per region");
                assert_eq!(tlbs[1].lookup(3, probe), None, "stale translation survives");
                let head_pte = space
                    .translate(&n1, VirtAddr::from_vpn(head))
                    .unwrap()
                    .unwrap();
                assert_eq!(head_pte.page_size, PageSize::Huge);
                assert_eq!(head_pte.frame, PhysFrame::Global(dst));
            } else {
                // Abort (the migrating node died): a survivor re-publishes
                // all 512 still-authoritative base mappings.
                m.abort(&n1, &space).unwrap();
                let head_pte = space
                    .translate(&n1, VirtAddr::from_vpn(head))
                    .unwrap()
                    .unwrap();
                assert_eq!(head_pte.page_size, PageSize::Base);
            }
            // Either outcome: whole pre-move patterns, never torn.
            for _ in 0..4 {
                let vpn = head + rng.gen_index(PAGES_PER_HUGE as usize) as u64;
                space.read(&n1, VirtAddr::from_vpn(vpn), &mut buf).unwrap();
                assert_eq!(buf, vec![(vpn - head) as u8 ^ 0xA5; PAGE_SIZE]);
            }
            // The region stays writable and coherent across nodes.
            space
                .write(&n1, VirtAddr::from_vpn(probe), &[0xBB; 16])
                .unwrap();
            space
                .read(&n0, VirtAddr::from_vpn(probe), &mut buf)
                .unwrap();
            assert_eq!(&buf[..16], &[0xBB; 16]);
        },
    );
}

#[test]
fn region_split_preserves_bytes_and_perms() {
    check("region_split_preserves_bytes_and_perms", |rng| {
        let rack = small_rack();
        let (n0, n1) = (rack.node(0), rack.node(1));
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
        let space =
            AddressSpace::alloc(4, rack.global(), alloc, epochs, RetireList::new()).unwrap();
        let head = PAGES_PER_HUGE * rng.gen_index(2) as u64;
        let region = rack.global().alloc(HUGE_PAGE_SIZE, PAGE_SIZE).unwrap();
        let writable = rng.gen_bool();
        // Fill the span through the frames (permissions gate virtual
        // writes, not physical fills).
        let mut page = vec![0u8; PAGE_SIZE];
        for i in 0..PAGES_PER_HUGE {
            page.fill(i as u8 ^ 0x5A);
            space
                .write_frame(
                    &n0,
                    PhysFrame::Global(region.offset(i * PAGE_SIZE as u64)),
                    &page,
                )
                .unwrap();
        }
        space
            .map(
                &n0,
                head,
                Pte::new(PhysFrame::Global(region), writable).huge(),
            )
            .unwrap();

        // A peer caches the head entry and a synthesized interior view.
        let mut tlbs: Vec<Tlb> = (0..2).map(|i| Tlb::new(rack.node(i), 8)).collect();
        let probe = head + 1 + rng.gen_index(PAGES_PER_HUGE as usize - 1) as u64;
        let head_pte = space
            .translate(&n1, VirtAddr::from_vpn(head))
            .unwrap()
            .unwrap();
        let view = space
            .translate(&n1, VirtAddr::from_vpn(probe))
            .unwrap()
            .unwrap();
        tlbs[1].fill(4, head, head_pte);
        tlbs[1].fill(4, probe, view);

        let displaced = split_region(&n0, &space, head, &mut |asid, v, span| {
            shootdown_stepped_range(&mut tlbs, 0, asid, v, span)
        })
        .unwrap();
        assert_eq!(displaced.frame, PhysFrame::Global(region));
        assert_eq!(
            tlbs[0].stats().shootdown_rounds,
            1,
            "one ranged round per split"
        );
        assert_eq!(tlbs[1].lookup(4, head), None);
        assert_eq!(tlbs[1].lookup(4, probe), None);

        // Every sampled page: base-sized, the same permission bit, the
        // identical bytes at the identical physical offset (a split
        // copies nothing).
        let mut buf = vec![0u8; PAGE_SIZE];
        for _ in 0..6 {
            let vpn = head + rng.gen_index(PAGES_PER_HUGE as usize) as u64;
            let pte = space
                .translate(&n1, VirtAddr::from_vpn(vpn))
                .unwrap()
                .unwrap();
            assert_eq!(pte.page_size, PageSize::Base);
            assert_eq!(pte.writable, writable);
            assert_eq!(
                pte.frame,
                PhysFrame::Global(region.offset((vpn - head) * PAGE_SIZE as u64))
            );
            space.read(&n1, VirtAddr::from_vpn(vpn), &mut buf).unwrap();
            assert_eq!(buf, vec![(vpn - head) as u8 ^ 0x5A; PAGE_SIZE]);
        }
    });
}

#[test]
fn policy_switch_preserves_state_and_read_history() {
    use flacdk::sync::{SyncCell, SyncCellConfig, SyncPolicy, SyncState};
    use std::collections::BTreeMap;

    /// A tiny KV under the cell: op = key byte + u64 value (0 deletes).
    #[derive(Debug, Default, Clone)]
    struct Kv(BTreeMap<u8, u64>);
    impl SyncState for Kv {
        fn apply(&mut self, op: &[u8]) {
            let mut d = Decoder::new(op);
            let (Ok(k), Ok(v)) = (d.u8(), d.u64()) else {
                return;
            };
            if v == 0 {
                self.0.remove(&k);
            } else {
                self.0.insert(k, v);
            }
        }
    }

    const POLICIES: [SyncPolicy; 4] = [
        SyncPolicy::Lock,
        SyncPolicy::Replicated,
        SyncPolicy::Delegated,
        SyncPolicy::Rcu,
    ];

    // Property: the same deterministic interleaving of reads and
    // updates produces the same final state and the same read history
    // whether the cell stays on one policy or is forced through a
    // policy switch mid-sequence — a switch must never lose, reorder,
    // or double-apply a committed op.
    check("policy_switch_preserves_state_and_read_history", |rng| {
        let from = POLICIES[rng.gen_index(POLICIES.len())];
        let to = POLICIES[rng.gen_index(POLICIES.len())];
        let ops = 24 + rng.gen_index(40);
        let switch_at = rng.gen_index(ops);
        // (node, Some((key, value)) = update, None = read) per step.
        let script: Vec<(usize, Option<(u8, u64)>)> = (0..ops)
            .map(|_| {
                let node = rng.gen_index(2);
                if rng.gen_bool() {
                    (node, None)
                } else {
                    (
                        node,
                        Some((rng.gen_index(8) as u8, 1 + rng.next_u64() % 100)),
                    )
                }
            })
            .collect();

        let run = |switched: bool| {
            let rack = small_rack();
            let cell = SyncCell::alloc(
                rack.global(),
                "prop_switch",
                SyncCellConfig::new(rack.node_count(), from).with_log(1024, 48),
                Kv::default(),
            )
            .unwrap();
            let mut history: Vec<BTreeMap<u8, u64>> = Vec::new();
            for (i, (node, action)) in script.iter().enumerate() {
                let ctx = rack.node(*node);
                if switched && i == switch_at {
                    cell.set_policy(&ctx, to).unwrap();
                }
                match action {
                    None => history.push(cell.read(&ctx, |kv| kv.0.clone()).unwrap()),
                    Some((k, v)) => {
                        let mut e = Encoder::new();
                        e.put_u8(*k).put_u64(*v);
                        cell.update(&ctx, &e.into_vec()).unwrap();
                    }
                }
            }
            let final_state = cell.read(&rack.node(0), |kv| kv.0.clone()).unwrap();
            (history, final_state, cell.committed(&rack.node(0)).unwrap())
        };

        let (hist_single, final_single, committed_single) = run(false);
        let (hist_switched, final_switched, committed_switched) = run(true);
        assert_eq!(hist_switched, hist_single, "read history diverged");
        assert_eq!(final_switched, final_single, "final state diverged");
        assert_eq!(committed_switched, committed_single, "op count diverged");
    });
}

#[test]
fn node_replicated_combine_matches_replay_on_every_replica() {
    use flacdk::sync::{SyncCell, SyncCellConfig, SyncPolicy, SyncState};

    /// Commit-ordered ledger: divergence (loss, duplication, reorder)
    /// is directly visible in the entry list.
    #[derive(Debug, Default, Clone, PartialEq)]
    struct Ledger(Vec<(u32, u32)>);
    impl SyncState for Ledger {
        fn apply(&mut self, op: &[u8]) {
            let mut d = Decoder::new(op);
            if let (Ok(a), Ok(b)) = (d.u32(), d.u32()) {
                self.0.push((a, b));
            }
        }
    }

    // Property: N nodes appending concurrently through the
    // flat-combining protocol — batch publications, a different
    // combiner every round, blocking updates interleaved — always
    // yields a log whose from-scratch replay equals the authoritative
    // state AND every node's caught-up replica, and the whole run is
    // byte-identical when repeated from the same seed.
    check(
        "node_replicated_combine_matches_replay_on_every_replica",
        |rng| {
            let nodes = 3 + rng.gen_index(3); // 3..=5
            let rounds = 4 + rng.gen_index(8);
            // Script: per round, per node: 0 = idle, 1..=2 ops published as
            // one batch; plus a combiner choice and an optional update().
            let script: Vec<(Vec<usize>, usize, Option<usize>)> = (0..rounds)
                .map(|_| {
                    (
                        (0..nodes).map(|_| rng.gen_index(3)).collect(),
                        rng.gen_index(nodes),
                        rng.gen_bool().then(|| rng.gen_index(nodes)),
                    )
                })
                .collect();

            let run = || {
                let rack = Rack::new(RackConfig::n_node(nodes).with_global_mem(32 << 20));
                let cell = SyncCell::alloc(
                    rack.global(),
                    "prop_nr",
                    SyncCellConfig::new(nodes, SyncPolicy::NodeReplicated).with_log(1024, 48),
                    Ledger::default(),
                )
                .unwrap();
                let mut seq = 0u32;
                for (publishes, combiner, updater) in &script {
                    let mut published = Vec::new();
                    for (node, &count) in publishes.iter().enumerate() {
                        if count == 0 {
                            continue;
                        }
                        let ops: Vec<Vec<u8>> = (0..count)
                            .map(|_| {
                                seq += 1;
                                let mut e = Encoder::new();
                                e.put_u32(node as u32).put_u32(seq);
                                e.into_vec()
                            })
                            .collect();
                        let refs: Vec<&[u8]> = ops.iter().map(Vec::as_slice).collect();
                        cell.nr_publish_batch(&rack.node(node), &refs).unwrap();
                        published.push(node);
                    }
                    cell.nr_combine(&rack.node(*combiner)).unwrap();
                    for node in published {
                        assert!(
                            cell.nr_poll(&rack.node(node)).unwrap().is_some(),
                            "publication from node {node} never acknowledged"
                        );
                    }
                    if let Some(node) = updater {
                        seq += 1;
                        let mut e = Encoder::new();
                        e.put_u32(*node as u32).put_u32(seq);
                        cell.update(&rack.node(*node), &e.into_vec()).unwrap();
                    }
                }
                // From-scratch replay is the ground truth...
                let (replayed, committed) = cell.replay(&rack.node(0), Ledger::default()).unwrap();
                // ...the authoritative state must equal it...
                assert_eq!(
                    cell.read(&rack.node(0), |l| l.clone()).unwrap(),
                    replayed,
                    "authoritative state diverged from replay"
                );
                // ...and so must every node's caught-up replica.
                for node in 0..nodes {
                    cell.sync_replica(&rack.node(node)).unwrap();
                    let local = cell.read_local(&rack.node(node), |l| l.clone()).unwrap();
                    assert_eq!(
                        local, replayed,
                        "replica on node {node} diverged from replay"
                    );
                }
                (format!("{replayed:?}"), committed)
            };

            let (bytes_a, committed_a) = run();
            let (bytes_b, committed_b) = run();
            assert_eq!(bytes_a, bytes_b, "same seed must replay byte-identically");
            assert_eq!(committed_a, committed_b, "op count diverged across reruns");
        },
    );
}
