//! Property-based tests on core data-structure invariants, checked
//! against reference models under arbitrary operation sequences.

use flacdk::alloc::GlobalAllocator;
use flacdk::ds::hashmap::ReplicatedKv;
use flacdk::ds::radix::RadixTree;
use flacdk::ds::ringbuf::SpscRing;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use flacdk::sync::oplog::SharedOpLog;
use flacdk::wire::{Decoder, Encoder};
use flacos_mem::dedup::PageDeduper;
use flacos_mem::fault::FrameAllocator;
use flacos_mem::PAGE_SIZE;
use flacos_mem::vma::{Vma, VmaSet};
use flacos_mem::VirtAddr;
use proptest::prelude::*;
use rack_sim::{GAddr, Rack, RackConfig, SimError};
use redis_mini::resp::{Command, Reply};
use std::collections::{HashMap, VecDeque};

fn small_rack() -> Rack {
    Rack::new(RackConfig::small_test().with_global_mem(32 << 20))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn global_memory_byte_rw_roundtrip(
        offset in 0usize..1000,
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let rack = small_rack();
        let g = rack.global();
        g.write_bytes(GAddr(offset as u64), &data).unwrap();
        let mut out = vec![0u8; data.len()];
        g.read_bytes(GAddr(offset as u64), &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn ring_matches_fifo_model(
        ops in proptest::collection::vec(
            prop_oneof![
                proptest::collection::vec(any::<u8>(), 0..40).prop_map(Some), // push
                Just(None),                                                  // pop
            ],
            1..60
        )
    ) {
        let rack = small_rack();
        let ring = SpscRing::alloc(rack.global(), 16, 64).unwrap();
        let (producer, consumer) = (rack.node(0), rack.node(1));
        let mut model: VecDeque<Vec<u8>> = VecDeque::new();

        for op in ops {
            match op {
                Some(payload) => match ring.push(&producer, &payload) {
                    Ok(()) => model.push_back(payload),
                    Err(SimError::WouldBlock) => prop_assert_eq!(model.len(), 16),
                    Err(e) => return Err(TestCaseError::fail(format!("push: {e}"))),
                },
                None => match ring.pop(&consumer) {
                    Ok(got) => prop_assert_eq!(Some(got), model.pop_front()),
                    Err(SimError::WouldBlock) => prop_assert!(model.is_empty()),
                    Err(e) => return Err(TestCaseError::fail(format!("pop: {e}"))),
                },
            }
        }
        prop_assert_eq!(ring.len(&producer).unwrap() as usize, model.len());
    }

    #[test]
    fn replicated_kv_converges_and_matches_model(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..16, proptest::collection::vec(any::<u8>(), 0..24)),
            1..50
        )
    ) {
        let rack = small_rack();
        let shared = ReplicatedKv::alloc_shared(rack.global(), 2, 4096, 128).unwrap();
        let mut kv0 = ReplicatedKv::new(shared.clone(), rack.node(0));
        let mut kv1 = ReplicatedKv::new(shared, rack.node(1));
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();

        for (i, (is_put, key, value)) in ops.iter().enumerate() {
            let kv = if i % 2 == 0 { &mut kv0 } else { &mut kv1 };
            if *is_put {
                kv.put(*key, value).unwrap();
                model.insert(*key, value.clone());
            } else {
                kv.del(*key).unwrap();
                model.remove(key);
            }
        }
        for key in 0..16u64 {
            prop_assert_eq!(kv0.get(key).unwrap(), model.get(&key).cloned());
            prop_assert_eq!(kv1.get(key).unwrap(), model.get(&key).cloned());
        }
        prop_assert_eq!(kv0.len().unwrap(), model.len());
    }

    #[test]
    fn radix_matches_map_model(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..512, any::<u64>()),
            1..60
        )
    ) {
        let rack = small_rack();
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), 2).unwrap();
        let retired = RetireList::new();
        let tree = RadixTree::alloc(rack.global(), 2).unwrap();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let n0 = rack.node(0);

        for (insert, key, value) in ops {
            if insert {
                let prev = tree.insert(&n0, &alloc, &epochs, &retired, key, value).unwrap();
                prop_assert_eq!(prev, model.insert(key, value));
            } else {
                let prev = tree.remove(&n0, &alloc, &epochs, &retired, key).unwrap();
                prop_assert_eq!(prev, model.remove(&key));
            }
            retired.reclaim(&n0, &epochs, &alloc).unwrap();
        }
        let guard = epochs.handle(rack.node(1)).read_lock().unwrap();
        for key in 0..512u64 {
            prop_assert_eq!(
                tree.get(&rack.node(1), &guard, key).unwrap(),
                model.get(&key).copied()
            );
        }
    }

    #[test]
    fn resp_command_roundtrip(
        key in proptest::collection::vec(any::<u8>(), 1..32),
        value in proptest::collection::vec(any::<u8>(), 0..256),
        which in 0u8..7,
    ) {
        let cmd = match which {
            0 => Command::Set { key, value },
            1 => Command::Get { key },
            2 => Command::Del { key },
            3 => Command::Incr { key },
            4 => Command::Exists { key },
            5 => Command::Append { key, value },
            _ => Command::Ping,
        };
        let wire = cmd.encode();
        let (parsed, consumed) = Command::parse(&wire).unwrap();
        prop_assert_eq!(parsed, cmd);
        prop_assert_eq!(consumed, wire.len());
    }

    #[test]
    fn resp_reply_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        for reply in [Reply::Bulk(data.clone()), Reply::Null, Reply::Integer(data.len() as i64)] {
            let wire = reply.encode();
            let (parsed, consumed) = Reply::parse(&wire).unwrap();
            prop_assert_eq!(parsed, reply);
            prop_assert_eq!(consumed, wire.len());
        }
    }

    #[test]
    fn resp_parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Command::parse(&bytes);
        let _ = Reply::parse(&bytes);
    }

    #[test]
    fn wire_codec_roundtrip(
        a in any::<u64>(),
        b in any::<u32>(),
        s in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut e = Encoder::new();
        e.put_u64(a).put_u32(b).put_bytes(&s);
        let buf = e.into_vec();
        let mut d = Decoder::new(&buf);
        prop_assert_eq!(d.u64().unwrap(), a);
        prop_assert_eq!(d.u32().unwrap(), b);
        prop_assert_eq!(d.bytes().unwrap(), &s[..]);
        prop_assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn vma_set_never_holds_overlaps(
        areas in proptest::collection::vec((0u64..100, 1u64..20), 1..20)
    ) {
        let mut set = VmaSet::new();
        for (start, len) in areas {
            let vma = Vma {
                start: VirtAddr(start * 0x1000),
                end: VirtAddr((start + len) * 0x1000),
                writable: true,
                tag: start,
            };
            let _ = set.insert(vma); // overlaps are rejected, that's fine
        }
        // Invariant: whatever was accepted is pairwise disjoint.
        let all: Vec<&Vma> = set.iter().collect();
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                prop_assert!(a.end.0 <= b.start.0 || b.end.0 <= a.start.0);
            }
        }
        // And find() agrees with contains().
        for vma in &all {
            prop_assert_eq!(set.find(vma.start).map(|v| v.tag), Some(vma.tag));
        }
    }


    #[test]
    fn oplog_preserves_append_order_and_content(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..40
        )
    ) {
        let rack = small_rack();
        let log = SharedOpLog::alloc(rack.global(), 64, 64).unwrap();
        let (a, b) = (rack.node(0), rack.node(1));
        for (i, payload) in payloads.iter().enumerate() {
            // Alternate appenders across nodes.
            let node = if i % 2 == 0 { &a } else { &b };
            let idx = log.append(node, payload).unwrap();
            prop_assert_eq!(idx, i as u64, "indices are dense and ordered");
        }
        for (i, payload) in payloads.iter().enumerate() {
            let got = log.read(&b, i as u64).unwrap().expect("committed");
            prop_assert_eq!(&got, payload);
        }
        prop_assert_eq!(log.tail(&a).unwrap(), payloads.len() as u64);
    }

    #[test]
    fn allocator_live_objects_never_overlap(
        ops in proptest::collection::vec((any::<bool>(), 1usize..500), 1..80)
    ) {
        let rack = small_rack();
        let alloc = GlobalAllocator::new(rack.global().clone());
        let node = rack.node(0);
        let mut live: Vec<(u64, usize)> = Vec::new(); // (addr, class size)

        for (do_alloc, len) in ops {
            if do_alloc || live.is_empty() {
                let addr = alloc.alloc(&node, len).unwrap();
                let class = GlobalAllocator::size_class(len);
                // Must not overlap any live object.
                for (base, sz) in &live {
                    let disjoint = addr.0 + class as u64 <= *base || base + *sz as u64 <= addr.0;
                    prop_assert!(disjoint, "{addr:?}+{class} overlaps {base:#x}+{sz}");
                }
                live.push((addr.0, class));
            } else {
                let (base, sz) = live.swap_remove(len % live.len());
                alloc.free(&node, GAddr(base), sz);
            }
        }
    }

    #[test]
    fn dedup_refcounts_match_a_reference_model(
        ops in proptest::collection::vec((any::<bool>(), 0u8..4), 1..40)
    ) {
        let rack = small_rack();
        let dedup = PageDeduper::new(FrameAllocator::new(rack.global().clone()));
        let node = rack.node(0);
        // content id -> (frame, model refcount)
        let mut model: HashMap<u8, (GAddr, u64)> = HashMap::new();

        for (intern, content_id) in ops {
            if intern {
                let frame = dedup.intern(&node, &vec![content_id; PAGE_SIZE]).unwrap();
                let entry = model.entry(content_id).or_insert((frame, 0));
                prop_assert_eq!(entry.0, frame, "same content, same frame");
                entry.1 += 1;
            } else if let Some((frame, count)) = model.get_mut(&content_id) {
                dedup.release(&node, *frame).unwrap();
                *count -= 1;
                if *count == 0 {
                    let id = content_id;
                    model.remove(&id);
                }
            }
            for (frame, count) in model.values() {
                prop_assert_eq!(dedup.refcount(*frame), *count);
            }
        }
        prop_assert_eq!(dedup.stats().unique_frames as usize, model.len());
    }

    #[test]
    fn versioned_cell_reads_see_complete_versions(
        writes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..50), 1..12)
    ) {
        use flacdk::sync::rcu::VersionedCell;
        let rack = small_rack();
        let alloc = GlobalAllocator::new(rack.global().clone());
        let epochs = EpochManager::alloc(rack.global(), 2).unwrap();
        let retired = RetireList::new();
        let cell = VersionedCell::alloc(rack.global()).unwrap();
        let (writer, reader) = (rack.node(0), rack.node(1));

        for content in &writes {
            cell.write(&writer, &alloc, &epochs, &retired, content).unwrap();
            // Reader on the other node always sees the exact latest bytes.
            let guard = epochs.handle(reader.clone()).read_lock().unwrap();
            let observed = cell.read(&reader, &guard).unwrap();
            prop_assert_eq!(observed.as_deref(), Some(&content[..]));
            drop(guard);
            retired.reclaim(&writer, &epochs, &alloc).unwrap();
        }
    }
}
