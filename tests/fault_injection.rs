//! Fault-injection integration tests: memory poison, node crashes, and
//! link failures driven through the full stack, verifying the system
//! degrades and recovers the way §3.6 promises.

use flacos::prelude::*;
use flacos_ipc::netstack::{NetConfig, NetPair};
use rack_sim::NodeId;

fn booted() -> FlacRack {
    FlacRack::boot(RackConfig::small_test().with_global_mem(128 << 20)).expect("boot")
}

#[test]
fn node_crash_fails_operations_until_restart() {
    let rack = booted();
    let mut os1 = rack.node_os(1);
    os1.fs_mut().write_file("/x", b"1").unwrap();

    rack.sim().faults().crash_node(os1.id(), 0);
    assert!(
        os1.fs_mut().read_file("/x").is_err(),
        "dead node cannot do fs ops"
    );
    assert!(os1.heartbeat().is_err());

    rack.sim().faults().restart_node(os1.id(), 0);
    assert_eq!(
        os1.fs_mut().read_file("/x").unwrap(),
        b"1",
        "state survives in global memory"
    );
}

#[test]
fn surviving_node_reads_data_written_by_crashed_node() {
    // The point of the shared OS: one node's death does not take its
    // file data with it.
    let rack = booted();
    let mut os0 = rack.node_os(0);
    let mut os1 = rack.node_os(1);
    os1.fs_mut()
        .write_file("/will-survive", &vec![5u8; 10_000])
        .unwrap();
    rack.sim().faults().crash_node(os1.id(), 0);

    let data = os0.fs_mut().read_file("/will-survive").unwrap();
    assert_eq!(data, vec![5u8; 10_000]);
}

#[test]
fn link_failure_breaks_messaging_but_not_shared_memory() {
    let rack = booted();
    let (mut a, _b) = rack.channel(0, 1).unwrap();
    let n0 = rack.sim().node(0);
    let n1 = rack.sim().node(1);

    rack.sim().faults().fail_link(n0.id(), n1.id(), 0);
    // Message fabric path fails...
    assert!(matches!(
        n0.send(n1.id(), 42, vec![1]),
        Err(SimError::LinkDown { .. })
    ));
    // ...but load/store shared memory (a different fabric path in this
    // model) still works: the ring-based channel keeps flowing.
    a.send(b"still works").unwrap();

    rack.sim().faults().restore_link(n0.id(), n1.id(), 0);
    assert!(n0.send(n1.id(), 42, vec![1]).is_ok());
}

#[test]
fn poison_is_contained_to_one_process() {
    let rack = booted();
    let mut os0 = rack.node_os(0);
    let mut victim = os0.spawn(1, Criticality::Low).unwrap();
    let mut bystander = os0.spawn(1, Criticality::Low).unwrap();
    for (p, tag) in [
        (&mut victim, b"victim----"),
        (&mut bystander, b"bystander-"),
    ] {
        p.run(os0.node(), |ctx, fbox| {
            fbox.space().write(ctx, fbox.heap_va(0), tag)
        })
        .unwrap();
        p.protect_now(os0.node()).unwrap();
    }

    // Poison the victim's heap.
    let (_, heap, _) = victim
        .fault_box()
        .memory_objects()
        .into_iter()
        .find(|(id, _, _)| *id >= 2_000)
        .unwrap();
    rack.sim()
        .faults()
        .poison_memory(rack.sim().global(), heap, 64, 0);

    // The bystander keeps running untouched.
    bystander
        .run(os0.node(), |ctx, fbox| {
            let mut buf = [0u8; 10];
            fbox.space().read(ctx, fbox.heap_va(0), &mut buf)?;
            assert_eq!(&buf, b"bystander-");
            Ok(())
        })
        .unwrap();

    // The victim recovers from its checkpoint.
    victim.recover(os0.node()).unwrap();
    victim
        .run(os0.node(), |ctx, fbox| {
            let mut buf = [0u8; 10];
            fbox.space().read(ctx, fbox.heap_va(0), &mut buf)?;
            assert_eq!(&buf, b"victim----");
            Ok(())
        })
        .unwrap();
}

#[test]
fn evacuation_before_node_death() {
    let rack = booted();
    let mut os0 = rack.node_os(0);
    let mut os1 = rack.node_os(1);
    let mut p = os0.spawn(1, Criticality::Medium).unwrap();
    p.run(os0.node(), |ctx, fbox| {
        fbox.space().write(ctx, fbox.heap_va(0), b"moving out")
    })
    .unwrap();

    // Health monitoring says node 0 is failing: migrate, then crash it.
    os1.adopt(&mut p, os0.node()).unwrap();
    rack.sim().faults().crash_node(os0.id(), 0);

    p.run(os1.node(), |ctx, fbox| {
        let mut buf = [0u8; 10];
        fbox.space().read(ctx, fbox.heap_va(0), &mut buf)?;
        assert_eq!(&buf, b"moving out");
        Ok(())
    })
    .unwrap();
}

#[test]
fn netstack_fails_cleanly_when_peer_dies() {
    let rack = booted();
    let (mut a, _b) = NetPair::connect(
        rack.sim().node(0),
        rack.sim().node(1),
        NetConfig::ten_gbe(),
        0,
    );
    rack.sim().faults().crash_node(NodeId(1), 0);
    assert!(matches!(a.send(b"hello?"), Err(SimError::NodeDown { .. })));
}

#[test]
fn crash_during_writeback_loses_only_uncommitted_lines() {
    // A node dies between two cached writes: one was written back
    // (committed to global memory), the other was still dirty in its
    // private cache. The crash must not be able to commit the dirty
    // line, and recovery must see exactly the committed prefix.
    let rack = booted();
    let n0 = rack.sim().node(0);
    let n1 = rack.sim().node(1);
    let committed = rack.sim().global().alloc(64, 64).unwrap();
    let dirty = rack.sim().global().alloc(64, 64).unwrap();
    n1.store_uncached_u64(committed, 0xAAAA).unwrap();
    n1.store_uncached_u64(dirty, 0xBBBB).unwrap();

    // Victim: write both through the cache, but only write back one.
    n0.write_u64(committed, 0x1111).unwrap();
    n0.writeback(committed, 8);
    n0.write_u64(dirty, 0x2222).unwrap();
    rack.sim().faults().crash_node(n0.id(), 100);

    // The survivor sees the committed value and the dirty line's old
    // content — the crash cannot have committed what was never flushed.
    assert_eq!(n1.load_uncached_u64(committed).unwrap(), 0x1111);
    assert_eq!(n1.load_uncached_u64(dirty).unwrap(), 0xBBBB);

    // Restart = cold boot: the node invalidates its cache before
    // resuming, so its own dirty line is gone too.
    rack.sim().faults().restart_node(n0.id(), 200);
    n0.invalidate(committed, 8);
    n0.invalidate(dirty, 8);
    let mut buf = [0u8; 8];
    n0.read(dirty, &mut buf).unwrap();
    assert_eq!(
        u64::from_le_bytes(buf),
        0xBBBB,
        "uncommitted write did not survive the crash"
    );
    n0.read(committed, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 0x1111);
}

#[test]
fn rpc_times_out_backs_off_and_succeeds_after_link_restore() {
    // Acceptance: an in-flight RPC across a failed link observably
    // times out, retries with backoff, and succeeds once the link is
    // restored — executing the handler exactly once.
    use flacos_ipc::{MsgRpcClient, MsgRpcServer, RetryPolicy};

    let rack = booted();
    let faults = rack.sim().faults().clone();
    let n0 = rack.sim().node(0);
    let mut server = MsgRpcServer::new(rack.sim().node(1), 7);
    let mut client = MsgRpcClient::new(n0.clone(), NodeId(1), 7, 8);
    let policy = RetryPolicy::default();

    // Sever the reply path mid-call: the request arrives, the handler
    // runs, the reply is lost.
    faults.fail_link(NodeId(1), NodeId(0), 0);
    let before_ns = n0.clock().now();
    let mut handler = |req: &[u8]| {
        let mut r = b"echo:".to_vec();
        r.extend_from_slice(req);
        r
    };
    let out = client
        .call_with_retry(b"payload", &policy, &mut |attempt| {
            if attempt == 1 {
                faults.restore_link(NodeId(1), NodeId(0), 0);
            }
            server.serve_once(&mut handler).map(|_| ())
        })
        .unwrap();

    assert_eq!(out, b"echo:payload");
    assert_eq!(server.executed(), 1, "handler ran exactly once");
    assert_eq!(server.dup_suppressed(), 1, "retry answered from cache");
    assert_eq!(server.replies_lost(), 1, "first reply hit the dead link");
    let elapsed = n0.clock().now() - before_ns;
    assert!(
        elapsed >= client.timeout_ns + policy.backoff_ns(1),
        "observable timeout + backoff: waited {elapsed} ns"
    );
    // Both fault events made the injector's deterministic log.
    let log = rack.sim().faults().log_lines();
    assert!(log.iter().any(|l| l.contains("link-fail n1->n0")));
    assert!(log.iter().any(|l| l.contains("link-restore n1->n0")));
}

#[test]
fn deterministic_fault_schedules_replay() {
    // Same seed => same random poison address => identical outcome.
    let addr_of = |seed: u64| {
        let rack = rack_sim::Rack::new(RackConfig::small_test().with_seed(seed));
        rack.faults()
            .poison_random_word(rack.global(), rack_sim::GAddr(0), 65536, 0)
    };
    assert_eq!(addr_of(11), addr_of(11));
    assert_ne!(addr_of(11), addr_of(12));
}
