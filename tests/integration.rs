//! End-to-end integration tests: the full FlacOS stack booted on a
//! simulated rack, exercised the way an operator would use it.

use flacos::prelude::*;

fn booted() -> FlacRack {
    FlacRack::boot(RackConfig::small_test().with_global_mem(128 << 20)).expect("boot")
}

#[test]
fn boot_table_matches_config() {
    let rack = FlacRack::boot(RackConfig::two_node_hccs()).unwrap();
    for node in 0..2 {
        let table = rack.boot_table(node).unwrap();
        assert_eq!(table.nodes, 2);
        assert_eq!(table.cores_per_node, 320);
        assert_eq!(table.total_cores(), 640, "the paper's 640-core rack");
    }
}

#[test]
fn shared_fs_namespace_is_single_system_image() {
    let rack = booted();
    let mut os0 = rack.node_os(0);
    let mut os1 = rack.node_os(1);

    os0.fs_mut().mkdir("/srv").unwrap();
    os0.fs_mut()
        .write_file("/srv/a.txt", b"from node 0")
        .unwrap();
    os1.fs_mut()
        .write_file("/srv/b.txt", b"from node 1")
        .unwrap();

    // Both nodes see the union, with identical inode numbers.
    assert_eq!(
        os0.fs_mut().readdir("/srv").unwrap(),
        vec!["a.txt", "b.txt"]
    );
    assert_eq!(
        os1.fs_mut().readdir("/srv").unwrap(),
        vec!["a.txt", "b.txt"]
    );
    assert_eq!(
        os0.fs_mut().resolve("/srv/b.txt").unwrap(),
        os1.fs_mut().resolve("/srv/b.txt").unwrap()
    );
    assert_eq!(
        os1.fs_mut().read_file("/srv/a.txt").unwrap(),
        b"from node 0"
    );
}

#[test]
fn page_cache_is_not_duplicated_per_node() {
    let rack = booted();
    let mut os0 = rack.node_os(0);
    let mut os1 = rack.node_os(1);

    let payload = vec![0x42u8; 40 * 4096];
    os0.fs_mut().write_file("/big.bin", &payload).unwrap();
    let before = rack.fs_shared().cache().resident_pages();

    // Node 1 reading the whole file must not add pages.
    assert_eq!(os1.fs_mut().read_file("/big.bin").unwrap(), payload);
    assert_eq!(rack.fs_shared().cache().resident_pages(), before);
}

#[test]
fn ipc_channel_through_the_os_facade() {
    let rack = booted();
    let (mut a, mut b) = rack.channel(0, 1).unwrap();
    for i in 0..64u32 {
        a.send(&i.to_le_bytes()).unwrap();
    }
    for i in 0..64u32 {
        assert_eq!(b.try_recv().unwrap(), i.to_le_bytes());
    }
}

#[test]
fn socket_registry_names_services_rack_wide() {
    let rack = booted();
    let mut os0 = rack.node_os(0);
    let mut os1 = rack.node_os(1);
    let here = os0.id();
    os0.sockets_mut()
        .bind(
            "kv-store",
            flacos_ipc::socket_meta::SocketAddr {
                node: here,
                channel: 5,
            },
        )
        .unwrap();
    let addr = os1
        .sockets_mut()
        .lookup("kv-store")
        .unwrap()
        .expect("bound");
    assert_eq!(addr.node, os0.id());
    assert_eq!(addr.channel, 5);
}

#[test]
fn migration_rpc_shares_code_contexts() {
    let rack = booted();
    let os0 = rack.node_os(0);
    let os1 = rack.node_os(1);
    let cell = flacdk::hw::GlobalCell::alloc(rack.sim().global(), 0).unwrap();
    os0.rpc()
        .register(
            os0.node(),
            9,
            std::sync::Arc::new(move |ctx: &rack_sim::NodeCtx, _: &[u8]| {
                Ok(cell.fetch_add(ctx, 1)?.to_le_bytes().to_vec())
            }),
        )
        .unwrap();
    // Both nodes invoke the same shared context; state is shared.
    os0.rpc().call(os0.node(), 9, b"").unwrap();
    let second = os1.rpc().call(os1.node(), 9, b"").unwrap();
    assert_eq!(u64::from_le_bytes(second.try_into().unwrap()), 1);
}

#[test]
fn scheduler_balances_spawns_across_node_os_instances() {
    let rack = booted();
    let mut os0 = rack.node_os(0);
    let mut os1 = rack.node_os(1);
    let placer = rack.sim().node(0);
    let mut procs = Vec::new();
    for _ in 0..6 {
        // An external placer would consult the shared scheduler; spawn
        // where it says.
        let target = rack
            .scheduler()
            .place(&placer, |id| rack.sim().is_alive(id))
            .unwrap();
        let p = if target == os0.id() {
            os0.spawn(1, Criticality::Low).unwrap()
        } else {
            os1.spawn(1, Criticality::Low).unwrap()
        };
        procs.push(p);
    }
    assert_eq!(rack.scheduler().load_of(os0.node(), os0.id()).unwrap(), 3);
    assert_eq!(rack.scheduler().load_of(os0.node(), os1.id()).unwrap(), 3);
    assert_eq!(rack.scheduler().imbalance(os0.node(), |_| true).unwrap(), 0);
}

#[test]
fn heartbeats_and_crash_detection() {
    let rack = booted();
    let os0 = rack.node_os(0);
    let os1 = rack.node_os(1);
    os0.heartbeat().unwrap();
    os1.heartbeat().unwrap();
    assert!(rack.monitor().suspects(os0.node()).unwrap().is_empty());

    rack.sim().faults().crash_node(os1.id(), 0);
    os0.node().charge(rack.monitor().timeout_ns() * 2);
    os0.heartbeat().unwrap(); // node 0 keeps beating; node 1 cannot
    assert_eq!(rack.monitor().suspects(os0.node()).unwrap(), vec![os1.id()]);
}

#[test]
fn process_lifecycle_with_recovery_after_poison() {
    let rack = booted();
    let mut os0 = rack.node_os(0);
    let mut p = os0.spawn(2, Criticality::Low).unwrap();
    p.run(os0.node(), |ctx, fbox| {
        fbox.space().write(ctx, fbox.heap_va(0), b"critical-data")
    })
    .unwrap();
    p.protect_now(os0.node()).unwrap();

    // Poison the process's first heap page.
    let objs = p.fault_box().memory_objects();
    let (_, heap, _) = objs.iter().find(|(id, _, _)| *id >= 2_000).unwrap();
    rack.sim()
        .faults()
        .poison_memory(rack.sim().global(), *heap, 64, 0);

    let restored = p.recover(os0.node()).unwrap();
    assert!(restored > 0);
    p.run(os0.node(), |ctx, fbox| {
        let mut buf = [0u8; 13];
        fbox.space().read(ctx, fbox.heap_va(0), &mut buf)?;
        assert_eq!(&buf, b"critical-data");
        Ok(())
    })
    .unwrap();
    os0.reap(&mut p).unwrap();
    assert_eq!(p.state(), ProcessState::Exited);
}
