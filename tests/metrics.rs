//! End-to-end tests on the metrics layer: known operation mixes must
//! produce *exact* counter, histogram, and trace totals under the
//! default (HCCS) latency model, including after rack-wide merging and
//! through the subsystem counters the OS layers publish.

use flacdk::alloc::GlobalAllocator;
use flacdk::sync::rcu::EpochManager;
use flacdk::sync::reclaim::RetireList;
use flacos_fs::page_cache::SharedPageCache;
use flacos_ipc::channel::FlacChannel;
use rack_sim::metrics::bucket_index;
use rack_sim::{CostClass, OpKind, Rack, RackConfig};

fn small_rack() -> Rack {
    Rack::new(RackConfig::small_test().with_global_mem(32 << 20))
}

#[test]
fn known_op_mix_yields_exact_totals() {
    const READS: u64 = 10;
    const ATOMICS: u64 = 7;

    let rack = small_rack();
    let n0 = rack.node(0);
    let lat = n0.latency().clone();
    let a = rack.global().alloc(8, 8).unwrap();

    for _ in 0..READS {
        n0.load_uncached_u64(a).unwrap();
    }
    for _ in 0..ATOMICS {
        n0.fetch_add_u64(a, 1).unwrap();
    }

    let snap = n0.stats().snapshot();
    // Counters: uncached loads count as global reads (8 bytes each).
    assert_eq!(snap.global_reads, READS);
    assert_eq!(snap.global_atomics, ATOMICS);
    assert_eq!(snap.global_writes, 0);

    // Histograms decompose the same ops by cost class, exactly.
    let uncached = snap.histogram(CostClass::Uncached);
    assert_eq!(uncached.count, READS);
    assert_eq!(uncached.total_ns, READS * lat.global_read_ns);
    assert_eq!(uncached.max_ns, lat.global_read_ns);
    assert_eq!(uncached.buckets[bucket_index(lat.global_read_ns)], READS);

    let atomic = snap.histogram(CostClass::Atomic);
    assert_eq!(atomic.count, ATOMICS);
    assert_eq!(atomic.total_ns, ATOMICS * lat.global_atomic_ns);
    assert_eq!(atomic.buckets[bucket_index(lat.global_atomic_ns)], ATOMICS);

    // Every charged nanosecond is accounted for: histogram totals equal
    // the node's clock.
    assert_eq!(snap.total_charged_ns(), n0.clock().now());
    assert_eq!(
        n0.clock().now(),
        READS * lat.global_read_ns + ATOMICS * lat.global_atomic_ns
    );
}

#[test]
fn rack_report_merges_nodes_exactly() {
    let rack = small_rack();
    let (n0, n1) = (rack.node(0), rack.node(1));
    let lat = n0.latency().clone();
    let a = rack.global().alloc(8, 8).unwrap();

    n0.load_uncached_u64(a).unwrap();
    n0.load_uncached_u64(a).unwrap();
    n1.fetch_add_u64(a, 1).unwrap();

    let report = rack.metrics_report();
    assert_eq!(report.per_node.len(), 2);
    assert_eq!(report.merged.global_reads, 2);
    assert_eq!(report.merged.global_atomics, 1);
    assert_eq!(report.merged.histogram(CostClass::Uncached).count, 2);
    assert_eq!(report.merged.histogram(CostClass::Atomic).count, 1);
    assert_eq!(
        report.merged.total_charged_ns(),
        2 * lat.global_read_ns + lat.global_atomic_ns
    );
    // Makespan is the slower node's clock, not the sum.
    assert_eq!(report.makespan_ns, 2 * lat.global_read_ns);

    // The report renders the decomposition used by `figures`.
    let text = report.to_string();
    assert!(text.contains("2 global reads"), "got: {text}");
    assert!(text.contains("lat[    uncached]"), "got: {text}");
    assert!(text.contains("makespan"), "got: {text}");
}

#[test]
fn tracing_captures_op_kinds_in_order() {
    let rack = small_rack();
    let n0 = rack.node(0);
    let a = rack.global().alloc(8, 8).unwrap();

    rack.enable_tracing();
    n0.load_uncached_u64(a).unwrap();
    n0.fetch_add_u64(a, 1).unwrap();
    n0.store_uncached_u64(a, 9).unwrap();
    rack.disable_tracing();
    n0.load_uncached_u64(a).unwrap(); // not traced

    let events = n0.stats().trace().events();
    assert_eq!(events.len(), 3);
    assert_eq!(events[0].kind, OpKind::Read);
    assert_eq!(events[1].kind, OpKind::Atomic);
    assert_eq!(events[2].kind, OpKind::Write);
    // Simulated timestamps are monotone within a node.
    assert!(events[0].at_ns < events[1].at_ns);
    assert!(events[1].at_ns < events[2].at_ns);
}

#[test]
fn cross_bank_spans_charge_burst_costs_exactly() {
    // A 256-byte line-aligned span covers four lines, which land in four
    // *different banks* of the default 16-bank sharded cache. Sharding
    // must not change the burst cost model: full fabric latency for the
    // first missed/dirty line of a span, bandwidth-limited tails after.
    let rack = small_rack();
    let n0 = rack.node(0);
    let lat = n0.latency().clone();
    let a = rack.global().alloc(256, 64).unwrap();
    let tail = lat.transfer_ns(rack_sim::LINE_SIZE).max(1);

    // Full-line writes allocate all four lines without fetching.
    let t = n0.clock().now();
    n0.write(a, &[7u8; 256]).unwrap();
    assert_eq!(n0.clock().now() - t, 4 * lat.cache_hit_ns);

    // Writeback: full latency for the first dirty line, tail for the rest.
    let t = n0.clock().now();
    n0.writeback(a, 256);
    assert_eq!(n0.clock().now() - t, lat.writeback_line_ns + 3 * tail);

    // The lines stay resident: a spanning read now hits every bank.
    let t = n0.clock().now();
    let mut buf = [0u8; 256];
    n0.read(a, &mut buf).unwrap();
    assert_eq!(buf, [7u8; 256]);
    assert_eq!(n0.clock().now() - t, 4 * lat.cache_hit_ns);

    // Invalidate: one instruction up front, per-line tail cost after.
    let t = n0.clock().now();
    n0.invalidate(a, 256);
    assert_eq!(
        n0.clock().now() - t,
        lat.invalidate_line_ns + 3 * lat.invalidate_extra_line_ns
    );

    // Cold read refetches the whole span as one burst.
    let t = n0.clock().now();
    n0.read(a, &mut buf).unwrap();
    assert_eq!(buf, [7u8; 256]);
    assert_eq!(n0.clock().now() - t, lat.global_read_ns + 3 * tail);

    // Flush = writeback burst + invalidate burst, in one charge.
    n0.write(a, &[9u8; 256]).unwrap(); // 4 hits, all dirty again
    let t = n0.clock().now();
    n0.flush(a, 256);
    assert_eq!(
        n0.clock().now() - t,
        (lat.writeback_line_ns + 3 * tail)
            + (lat.invalidate_line_ns + 3 * lat.invalidate_extra_line_ns)
    );

    // Per-line behaviour counters match the walk above, and the snapshot
    // view (read lock-free from the per-bank atomics) agrees.
    let cs = n0.cache_stats();
    assert_eq!(cs.allocs, 4);
    assert_eq!(cs.hits, 8);
    assert_eq!(cs.misses, 4);
    assert_eq!(cs.writebacks, 8);
    assert_eq!(cs.invalidations, 8);
    let snap = n0.stats().snapshot();
    assert_eq!(snap.cache_hits, cs.hits);
    assert_eq!(snap.cache_misses, cs.misses);
    assert_eq!(snap.cache_coalesced_fills, cs.coalesced_fills);
    assert_eq!(cs.coalesced_fills, 0, "single-threaded run never coalesces");

    // Every charged nanosecond is accounted for in the histograms.
    assert_eq!(snap.total_charged_ns(), n0.clock().now());
}

#[test]
fn unaligned_cross_bank_write_mixes_miss_alloc_and_tail() {
    // 100 bytes at line offset 32: a partial first line (RMW fill at full
    // fabric latency), a full middle line (write-allocate, no fill), and
    // a partial tail line (RMW fill at bandwidth cost).
    let rack = small_rack();
    let n0 = rack.node(0);
    let lat = n0.latency().clone();
    let base = rack.global().alloc(256, 64).unwrap();
    let addr = rack_sim::GAddr(base.0 + 32);
    let tail = lat.transfer_ns(rack_sim::LINE_SIZE).max(1);

    let t = n0.clock().now();
    n0.write(addr, &[3u8; 100]).unwrap();
    assert_eq!(
        n0.clock().now() - t,
        lat.global_read_ns + lat.cache_hit_ns + tail
    );
    let cs = n0.cache_stats();
    assert_eq!((cs.misses, cs.allocs, cs.hits), (2, 1, 0));

    // Write back, then verify global memory got exactly the RMW result.
    n0.flush(addr, 100);
    let mut out = [0u8; 256];
    rack.global().read_bytes(base, &mut out).unwrap();
    assert!(out[..32].iter().all(|&b| b == 0));
    assert!(out[32..132].iter().all(|&b| b == 3));
    assert!(out[132..].iter().all(|&b| b == 0));
}

#[test]
fn page_cache_publishes_subsystem_counters() {
    let rack = small_rack();
    let n0 = rack.node(0);
    let alloc = GlobalAllocator::new(rack.global().clone());
    let epochs = EpochManager::alloc(rack.global(), rack.node_count()).unwrap();
    let cache = SharedPageCache::alloc(rack.global(), alloc, epochs, RetireList::new()).unwrap();

    let key = SharedPageCache::key(1, 0);
    assert!(cache.lookup(&n0, key).unwrap().is_none()); // miss
    cache
        .insert_page(&n0, key, &vec![7u8; flacos_mem::PAGE_SIZE], true)
        .unwrap();
    assert!(cache.lookup(&n0, key).unwrap().is_some()); // hit
    assert!(cache.lookup(&n0, key).unwrap().is_some()); // hit

    let snap = n0.stats().snapshot();
    let get = |name: &str| {
        snap.subsystems
            .iter()
            .find(|c| c.subsystem == "page_cache" && c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    };
    assert_eq!(get("miss"), 1);
    assert_eq!(get("hit"), 2);
    assert_eq!(get("insert"), 1);
}

#[test]
fn ipc_channel_publishes_message_counters() {
    let rack = small_rack();
    let alloc = GlobalAllocator::new(rack.global().clone());
    let (mut a, mut b) =
        FlacChannel::create(rack.global(), alloc, rack.node(0), rack.node(1)).unwrap();

    a.send(b"ping").unwrap();
    a.send(&vec![3u8; 4096]).unwrap();
    b.try_recv().unwrap();
    b.try_recv().unwrap();

    let sender = rack.node(0).stats().snapshot();
    let receiver = rack.node(1).stats().snapshot();
    let get = |snap: &rack_sim::StatsSnapshot, name: &str| {
        snap.subsystems
            .iter()
            .find(|c| c.subsystem == "ipc" && c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    };
    assert_eq!(get(&sender, "msgs_sent"), 2);
    assert_eq!(get(&sender, "bytes_sent"), 4 + 4096);
    assert_eq!(get(&receiver, "msgs_recv"), 2);

    // Rack-wide merge sums the per-node registries.
    let merged = rack.metrics_report().merged;
    assert_eq!(get(&merged, "msgs_sent"), 2);
    assert_eq!(get(&merged, "msgs_recv"), 2);
}
