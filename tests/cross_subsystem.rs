//! Cross-subsystem integration: interactions the paper's design depends
//! on — sync ↔ reliability co-design, fs ↔ memory dedup, IPC ↔ fault
//! boxes, applications over the full stack.

use flacdk::alloc::GlobalAllocator;
use flacdk::reliability::checkpoint::CheckpointManager;
use flacdk::sync::rcu::{EpochManager, VersionedCell};
use flacdk::sync::reclaim::RetireList;
use flacos::prelude::*;
use flacos_fs::journal;
use flacos_mem::dedup::PageDeduper;
use flacos_mem::fault::FrameAllocator;
use flacos_mem::PAGE_SIZE;
use redis_mini::client::{request_stepped, RedisClient};
use redis_mini::resp::{Command, Reply};
use redis_mini::server::RedisServer;
use std::sync::Arc;

fn booted() -> FlacRack {
    FlacRack::boot(RackConfig::small_test().with_global_mem(128 << 20)).expect("boot")
}

#[test]
fn checkpoint_pins_protect_rcu_versions_under_churn() {
    // Reliability ↔ synchronization co-design: a checkpoint in progress
    // must keep old versions alive even while writers churn.
    let rack = booted();
    let n0 = rack.sim().node(0);
    let alloc = rack.alloc().clone();
    let epochs = rack.epochs().clone();
    let retired = RetireList::new();
    let cell = VersionedCell::alloc(rack.sim().global()).unwrap();
    cell.write(&n0, &alloc, &epochs, &retired, b"v0").unwrap();

    let pin = epochs.pin(&n0).unwrap();
    for i in 1..10u8 {
        cell.write(&n0, &alloc, &epochs, &retired, &[i; 2]).unwrap();
    }
    // All 9 displaced versions are protected by the pin.
    assert_eq!(retired.reclaim(&n0, &epochs, &alloc).unwrap(), 0);
    assert_eq!(retired.pending(), 9);
    epochs.unpin(pin);
    assert_eq!(retired.reclaim(&n0, &epochs, &alloc).unwrap(), 9);
}

#[test]
fn fs_journal_recovers_metadata_on_a_fresh_node() {
    let rack = booted();
    let mut os0 = rack.node_os(0);
    os0.fs_mut().mkdir("/data").unwrap();
    for i in 0..10 {
        os0.fs_mut()
            .write_file(&format!("/data/f{i}"), &[i as u8; 100])
            .unwrap();
    }
    os0.fs_mut().unlink("/data/f3").unwrap();

    // Node 1 never mounted; recover metadata purely from the journal.
    let (meta, replayed) = journal::recover_meta(&rack.sim().node(1), rack.fs_shared()).unwrap();
    assert!(replayed >= 21, "mkdir + 10x(create+set_size) + unlink");
    assert!(meta.resolve("/data/f3").is_none());
    assert!(meta.resolve("/data/f7").is_some());
}

#[test]
fn dedup_and_page_cache_compose_for_identical_content() {
    let rack = booted();
    let dedup = PageDeduper::new(FrameAllocator::new(rack.sim().global().clone()));
    let (n0, n1) = (rack.sim().node(0), rack.sim().node(1));

    // Two nodes intern the same container-image page.
    let page = vec![7u8; PAGE_SIZE];
    let f0 = dedup.intern(&n0, &page).unwrap();
    let f1 = dedup.intern(&n1, &page).unwrap();
    assert_eq!(f0, f1);
    assert_eq!(dedup.stats().bytes_saved, PAGE_SIZE as u64);

    // And the shared fs keeps file pages single-copy on top of that.
    let mut os0 = rack.node_os(0);
    let mut os1 = rack.node_os(1);
    os0.fs_mut().write_file("/img", &page).unwrap();
    os1.fs_mut().read_file("/img").unwrap();
    assert_eq!(rack.fs_shared().cache().resident_pages(), 1);
}

#[test]
fn redis_over_the_booted_rack_channel() {
    // The application path end-to-end *through the OS facade*: channel
    // from FlacRack, redis on top.
    let rack = booted();
    let (sep, cep) = rack.channel(0, 1).unwrap();
    let mut server = RedisServer::new(rack.sim().node(0), sep);
    let mut client = RedisClient::new(rack.sim().node(1), cep);

    for i in 0..20 {
        let key = format!("k{i}").into_bytes();
        let (reply, _) = request_stepped(
            &mut client,
            &mut server,
            &Command::Set {
                key: key.clone(),
                value: vec![i as u8; 128],
            },
        )
        .unwrap();
        assert_eq!(reply, Reply::Simple("OK".into()));
        let (reply, latency) =
            request_stepped(&mut client, &mut server, &Command::Get { key }).unwrap();
        assert_eq!(reply, Reply::Bulk(vec![i as u8; 128]));
        assert!(
            latency > 0 && latency < 1_000_000,
            "sane simulated latency: {latency}"
        );
    }
    assert_eq!(server.store().len(), 20);
}

#[test]
fn fault_box_covers_an_ipc_buffer() {
    // Communication buffers belong to the application's fault box
    // (§3.6 lists them explicitly); recovery restores them with the app.
    let rack = booted();
    let mut os0 = rack.node_os(0);
    let mut p = os0.spawn(1, Criticality::Medium).unwrap();

    // Attach a comm buffer region to the box and fill it.
    let buf_region = rack.sim().global().alloc(256, 64).unwrap();
    os0.node().write(buf_region, &[9u8; 256]).unwrap();
    os0.node().writeback(buf_region, 256);
    p.fault_box_mut().register_comm_buffer(buf_region, 256);
    p.protect_now(os0.node()).unwrap();

    // The buffer gets poisoned; recovery brings it back with the app.
    rack.sim()
        .faults()
        .poison_memory(rack.sim().global(), buf_region, 64, 0);
    p.recover(os0.node()).unwrap();
    let mut buf = [0u8; 256];
    os0.node().invalidate(buf_region, 256);
    os0.node().read(buf_region, &mut buf).unwrap();
    assert_eq!(buf, [9u8; 256]);
}

#[test]
fn tlb_shootdown_after_shared_mapping_change() {
    // flacos-mem TLBs + page table + rack messaging working together.
    use flacos_mem::page_table::Pte;
    use flacos_mem::tlb::{shootdown_stepped, Tlb};
    use flacos_mem::PhysFrame;

    let rack = booted();
    let alloc = GlobalAllocator::new(rack.sim().global().clone());
    let epochs = EpochManager::alloc(rack.sim().global(), rack.sim().node_count()).unwrap();
    let space =
        flacos_mem::AddressSpace::alloc(1, rack.sim().global(), alloc, epochs, RetireList::new())
            .unwrap();
    let frames = FrameAllocator::new(rack.sim().global().clone());
    let n0 = rack.sim().node(0);

    let f1 = frames.alloc(&n0).unwrap();
    space
        .map(&n0, 7, Pte::new(PhysFrame::Global(f1), true))
        .unwrap();
    let pte = space
        .translate(&n0, flacos_mem::VirtAddr::from_vpn(7))
        .unwrap()
        .unwrap();

    let mut tlbs: Vec<Tlb> = (0..rack.sim().node_count())
        .map(|i| Tlb::new(rack.sim().node(i), 64))
        .collect();
    for t in tlbs.iter_mut() {
        t.fill(1, 7, pte);
    }

    // Remap, then shoot down the stale translations everywhere.
    let f2 = frames.alloc(&n0).unwrap();
    space
        .map(&n0, 7, Pte::new(PhysFrame::Global(f2), true))
        .unwrap();
    shootdown_stepped(&mut tlbs, 0, 1, 7).unwrap();
    for t in tlbs.iter_mut() {
        assert_eq!(t.lookup(1, 7), None, "no stale translation survives");
    }
}

#[test]
fn predicted_failure_triggers_preemptive_relocation() {
    // §3.2 prediction feeding §3.2 relocation: a region racking up
    // correctable errors is predicted to fail; its objects are moved to
    // fresh memory *before* the uncorrectable fault lands.
    use flacdk::alloc::relocate::{Placement, Relocator, Tier};
    use flacdk::reliability::predict::FailurePredictor;

    let rack = booted();
    let n0 = rack.sim().node(0);
    let alloc = rack.alloc().clone();
    let relocator = Relocator::new();
    let mut predictor = FailurePredictor::new(1_000_000_000, 5.0);

    // Object 1 lives in a degrading region.
    let old_addr = alloc.alloc(&n0, 64).unwrap();
    n0.write(old_addr, &[0xAA; 64]).unwrap();
    n0.writeback(old_addr, 64);
    relocator.place(
        1,
        Placement {
            tier: Tier::Global(old_addr),
            len: 64,
        },
    );

    // ECC reports a burst of correctable errors against that region.
    for i in 0..10 {
        predictor.record_correctable(1, i * 1_000_000);
    }
    assert!(predictor.predicts_failure(1, n0.clock().now().max(10_000_000)));

    // Policy: evacuate everything in at-risk regions.
    for _region in predictor.at_risk(10_000_000) {
        let vacated = relocator.compact(&n0, &alloc, 1).unwrap();
        assert_eq!(vacated, old_addr);
    }

    // Now the predicted uncorrectable fault actually lands — on memory
    // nothing references anymore.
    rack.sim()
        .faults()
        .poison_memory(rack.sim().global(), old_addr, 64, 0);
    let Placement {
        tier: Tier::Global(new_addr),
        ..
    } = relocator.resolve(1).unwrap()
    else {
        panic!("object stayed global")
    };
    assert_ne!(new_addr, old_addr);
    let mut buf = [0u8; 64];
    n0.invalidate(new_addr, 64);
    n0.read(new_addr, &mut buf).unwrap();
    assert_eq!(buf, [0xAA; 64], "data survived, zero recovery needed");
}

#[test]
fn hotness_driven_tiering_promotes_the_working_set() {
    // §3.2 memory management: hotness tracking decides what lives in
    // fast local memory; the relocator executes the decision.
    use flacdk::alloc::hotness::HotnessTracker;
    use flacdk::alloc::relocate::{Placement, Relocator, Tier};

    let rack = booted();
    let n0 = rack.sim().node(0);
    let alloc = rack.alloc().clone();
    let relocator = Relocator::new();
    let mut tracker = HotnessTracker::new(1000);

    for id in 0..4u64 {
        let addr = alloc.alloc(&n0, 128).unwrap();
        n0.write(addr, &[id as u8; 128]).unwrap();
        n0.writeback(addr, 128);
        relocator.place(
            id,
            Placement {
                tier: Tier::Global(addr),
                len: 128,
            },
        );
        tracker.register(id, 128);
    }
    // Objects 0 and 1 are hot.
    for _ in 0..20 {
        tracker.touch(0);
        tracker.touch(1);
    }
    tracker.touch(2);

    let (hot, cold) = tracker.tier_split(256);
    assert_eq!(hot.len(), 2);
    for id in &hot {
        relocator.promote_to_local(&n0, *id).unwrap();
        assert!(matches!(
            relocator.resolve(*id).unwrap().tier,
            Tier::Local(_)
        ));
    }
    for id in &cold {
        assert!(matches!(
            relocator.resolve(*id).unwrap().tier,
            Tier::Global(_)
        ));
    }
    // Promoted data is intact and now reads at local speed.
    let Placement {
        tier: Tier::Local(laddr),
        ..
    } = relocator.resolve(0).unwrap()
    else {
        panic!("promoted")
    };
    let mut buf = [0u8; 128];
    n0.local_read(laddr, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 128]);
}

#[test]
fn checkpoint_manager_composes_with_process_heaps() {
    let rack = booted();
    let cm = CheckpointManager::new(rack.alloc().clone(), rack.epochs().clone());
    let mut os0 = rack.node_os(0);
    let p = os0.spawn(1, Criticality::Low).unwrap();
    let objs = p.fault_box().memory_objects();
    let ckpt = cm.capture(os0.node(), &objs).unwrap();
    assert_eq!(ckpt.len(), objs.len());
    assert_eq!(ckpt.bytes(), p.fault_box().state_bytes());
    cm.discard(os0.node(), ckpt);
}

#[test]
fn serverless_runtime_runs_on_the_booted_fs() {
    use flac_store::{BackendConfig, ChunkStore, ShardedBackends, StoreConfig};
    use flacos_mem::dedup::PageDeduper;
    use flacos_mem::fault::FrameAllocator;
    use serverless::image::ContainerImage;
    use serverless::registry::{ImageRegistry, RegistryConfig};
    use serverless::runtime::{ContainerRuntime, StartupPath};

    let rack = booted();
    let registry = Arc::new(ImageRegistry::new(RegistryConfig { manifest_ns: 1000 }));
    let image = ContainerImage::synthetic("app", 32, 2, 5);
    let backends = Arc::new(ShardedBackends::uniform(
        2,
        BackendConfig::paper_calibrated(2, 4096),
    ));
    image.publish(&backends);
    registry.push(image);
    let dedup = Arc::new(PageDeduper::new(FrameAllocator::new(
        rack.sim().global().clone(),
    )));
    let store = ChunkStore::alloc(
        rack.sim().global(),
        backends,
        dedup,
        StoreConfig::new(rack.sim().node_count()),
    )
    .unwrap();

    let mut rt0 = ContainerRuntime::new(
        rack.sim().node(0),
        flacos_fs::memfs::MemFs::mount(rack.fs_shared().clone(), rack.sim().node(0)),
        registry.clone(),
        store.clone(),
    );
    let mut rt1 = ContainerRuntime::new(
        rack.sim().node(1),
        flacos_fs::memfs::MemFs::mount(rack.fs_shared().clone(), rack.sim().node(1)),
        registry,
        store,
    );
    let (_, cold) = rt0.start_container("app").unwrap();
    let (_, shared) = rt1.start_container("app").unwrap();
    assert_eq!(cold.path, StartupPath::Cold);
    assert_eq!(shared.path, StartupPath::SharedPageCache);
    assert!(shared.total_ns < cold.total_ns);
    assert_eq!(cold.pages_downloaded, 32);
    assert_eq!(shared.pages_from_cache, 32);
}
