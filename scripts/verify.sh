#!/usr/bin/env bash
# Tier-1 verification gate. The workspace is hermetic (zero external
# crates), so everything runs with --offline: any accidental dependency
# on the registry fails the gate instead of silently downloading.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== sync deny-list lint (no raw locks over shared state) =="
scripts/lint_sync.sh

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy (offline, warnings are errors) =="
cargo clippy --workspace --offline -- -D warnings

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

echo "== bench targets compile (offline, feature-gated) =="
cargo build --offline -p bench --benches --features criterion

echo "== cache-scale smoke (~1 s wall-clock gate, JSON shape + regressions) =="
cargo run --release --offline -p bench --bin cache-scale -- \
    --quick --out target/BENCH_cache.quick.json --gate

echo "== committed BENCH_cache.json honors the miss-heavy acceptance targets =="
cargo run --release --offline -p bench --bin cache-scale -- --check BENCH_cache.json

echo "== serve-scale smoke (open-loop loadgen gate, JSON shape + invariants) =="
cargo run --release --offline -p bench --bin flac-loadgen -- \
    --quick --out target/BENCH_serve.quick.json --gate

echo "== committed BENCH_serve.json honors the serving acceptance targets =="
cargo run --release --offline -p bench --bin flac-loadgen -- --check BENCH_serve.json

echo "== fault-storm smoke campaign (fixed seeds, replay-verified) =="
cargo run --release --offline -p bench --bin flac-faultstorm -- --seeds 2 --steps 60 --verify

echo "== tiering smoke: A7 ablation =="
cargo run --release --offline -p bench --bin figures -- tiering

echo "== tiering fault-storm campaign (fixed seeds, replay-verified) =="
cargo run --release --offline -p bench --bin flac-faultstorm -- --tiering --seeds 2 --steps 60 --verify

echo "== sync-cell fault-storm campaigns (owner + combiner crashes, replay-verified) =="
cargo run --release --offline -p bench --bin flac-faultstorm -- --sync --seeds 2 --steps 60 --verify

echo "== sync-scale smoke (flat-combining gate, JSON shape + invariants) =="
cargo run --release --offline -p bench --bin flac-sync-scale -- \
    --quick --out target/BENCH_sync.quick.json --gate

echo "== committed BENCH_sync.json honors the node-replication acceptance targets =="
cargo run --release --offline -p bench --bin flac-sync-scale -- --check BENCH_sync.json

echo "== topo-scale smoke (region probe + huge-page tiering gate, JSON shape + invariants) =="
cargo run --release --offline -p bench --bin flac-topo-scale -- \
    --quick --out target/BENCH_topo.quick.json --gate

echo "== committed BENCH_topo.json honors the ranged-shootdown acceptance targets =="
cargo run --release --offline -p bench --bin flac-topo-scale -- --check BENCH_topo.json

echo "== store-scale smoke (~1 s shard sweep + overlap gate, JSON shape + invariants) =="
cargo run --release --offline -p bench --bin flac-store-scale -- \
    --quick --out target/BENCH_store.quick.json --gate

echo "== committed BENCH_store.json honors the shard-scaling acceptance targets =="
cargo run --release --offline -p bench --bin flac-store-scale -- --check BENCH_store.json

echo "== chunk-store fault-storm campaign (fetcher crashes mid-fetch, replay-verified) =="
cargo run --release --offline -p bench --bin flac-faultstorm -- --store --seeds 2 --steps 60 --verify

echo "verify: OK"
