#!/usr/bin/env bash
# Tier-1 verification gate. The workspace is hermetic (zero external
# crates), so everything runs with --offline: any accidental dependency
# on the registry fails the gate instead of silently downloading.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all -- --check

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

echo "== bench targets compile (offline, feature-gated) =="
cargo build --offline -p bench --benches --features criterion

echo "verify: OK"
