#!/usr/bin/env bash
# Deny-list lint: shared kernel state in the flacos-* crates must go
# through flacdk::sync::SyncCell (or another charged primitive), never a
# host mutex that silently assumes rack-wide cache coherence.
#
# Any `Mutex<...>` / `RwLock<...>` declaration in crates/flacos-*/src is
# an error unless the declaration line, or one of the three lines above
# it, carries a `// coherent-local:` annotation explaining why the state
# is genuinely host-local (device media, per-node counters, rebuildable
# indexes, ...). Imports (`use ...::Mutex;`) are fine: only constructed
# types count.
#
# Second check: one-shot `registry().add(...)` calls re-take the registry
# mutex every time, so they are banned from the flacos-*/flacdk crates
# unless annotated `// cold-path: <why>` (same 3-line lookback). Hot
# paths must hold the `Counter` from `CounterRegistry::counter` instead;
# debug builds additionally enforce a per-counter call budget at runtime.
#
# Third check: the node cache must never perform a fabric access
# (`read_bytes`/`write_bytes`) while lexically inside a `.lock()` scope
# in crates/rack-sim/src/cache.rs — holding a bank lock across a
# fabric-latency operation is exactly the serialization this module was
# rebuilt to remove (debug builds also enforce it dynamically via the
# lockdep counter). Escape hatch: annotate the call, or one of the three
# preceding lines, with `// fill-publish: <why>`.
#
# Fourth check: outside crates/flacdk, a direct `SharedOpLog::append`
# bypasses the flat-combining batcher and pays one interconnect CAS per
# op — the exact serialization the node-replicated tier amortizes away.
# Any `.append(` call in a non-flacdk file that names `SharedOpLog` must
# carry a `// single-op: <why>` annotation (same 3-line lookback);
# `append_batch` is the blessed path and never flagged.
#
# Fifth check: outside flacos-mem (where the primitive lives), the
# tiering/OS crates must not issue page-at-a-time TLB shootdowns — a
# loop of `begin_shootdown`/`shootdown_stepped` over the 512 contiguous
# vpns of a 2 MiB region pays 512 broadcast/ack rounds where one
# `*_range` call pays one. Any non-ranged call in crates/flacos-tier or
# crates/flacos needs a `// single-page: <why>` annotation (same 3-line
# lookback) arguing the vpns are genuinely non-contiguous.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS=: read -r file line text; do
    # Skip comment-only lines (doc text mentioning the types).
    stripped="${text#"${text%%[![:space:]]*}"}"
    case "$stripped" in
    //*) continue ;;
    esac
    # Annotated on the same line?
    case "$text" in
    *"coherent-local:"*) continue ;;
    esac
    # Annotated within the three preceding lines?
    start=$((line > 3 ? line - 3 : 1))
    if sed -n "${start},$((line - 1))p" "$file" | grep -q "coherent-local:"; then
        continue
    fi
    echo "lint_sync: $file:$line: un-annotated shared lock: $stripped" >&2
    fail=1
done < <(grep -rn --include='*.rs' -E '(Mutex|RwLock)<' crates/flacos-fs/src crates/flacos-ipc/src crates/flacos-mem/src crates/flacos-fault/src crates/flacos-tier/src crates/flacos/src crates/flac-store/src 2>/dev/null || true)

while IFS=: read -r file line text; do
    stripped="${text#"${text%%[![:space:]]*}"}"
    case "$stripped" in
    //*) continue ;;
    esac
    case "$text" in
    *"cold-path:"*) continue ;;
    esac
    start=$((line > 3 ? line - 3 : 1))
    if sed -n "${start},$((line - 1))p" "$file" | grep -q "cold-path:"; then
        continue
    fi
    echo "lint_sync: $file:$line: one-shot registry().add in a kernel crate: $stripped" >&2
    fail=1
done < <(grep -rn --include='*.rs' -F 'registry().add(' crates/flacdk/src crates/flacos-fs/src crates/flacos-ipc/src crates/flacos-mem/src crates/flacos-fault/src crates/flacos-tier/src crates/flacos/src 2>/dev/null || true)

# Lexical scope scan for check 3: tracks brace depth, treats a
# `.lock()`/`.try_lock()` call as acquiring a guard that lives until its
# enclosing block closes or an explicit `drop(...)` releases it, and
# flags `read_bytes`/`write_bytes` calls while any guard is live. A
# lexical approximation, deliberately conservative: the dynamic lockdep
# assertion in debug builds is the precise backstop.
check_fabric_under_lock() {
    awk '
    function stripped(s) {
        gsub(/"[^"]*"/, "\"\"", s)
        sub(/\/\/.*$/, "", s)
        return s
    }
    {
        raw[NR] = $0
        line = stripped($0)
        if (nguards > 0 && line ~ /(read_bytes|write_bytes)[ \t]*\(/) {
            ok = 0
            for (j = NR - 3; j <= NR; j++)
                if (j >= 1 && raw[j] ~ /fill-publish:/) ok = 1
            if (!ok) {
                printf "lint_sync: %s:%d: fabric access lexically inside a .lock() scope: %s\n", \
                    FILENAME, NR, $0 > "/dev/stderr"
                bad = 1
            }
        }
        if (line ~ /drop\(/ && nguards > 0) nguards--
        if (line ~ /\.(try_)?lock\(\)/) { nguards++; gdepth[nguards] = depth }
        depth += gsub(/{/, "{", line)
        depth -= gsub(/}/, "}", line)
        while (nguards > 0 && gdepth[nguards] > depth) nguards--
    }
    END { exit bad }
    ' "$1"
}

if ! check_fabric_under_lock crates/rack-sim/src/cache.rs; then
    fail=1
fi

while IFS=: read -r file line text; do
    stripped="${text#"${text%%[![:space:]]*}"}"
    case "$stripped" in
    //*) continue ;;
    esac
    # `.append_batch(` is the amortized path; only bare `.append(` counts.
    case "$text" in
    *"append_batch("*) continue ;;
    *"single-op:"*) continue ;;
    esac
    start=$((line > 3 ? line - 3 : 1))
    if sed -n "${start},$((line - 1))p" "$file" | grep -q "single-op:"; then
        continue
    fi
    echo "lint_sync: $file:$line: direct SharedOpLog::append outside flacdk: $stripped" >&2
    fail=1
done < <(grep -rl --include='*.rs' 'SharedOpLog' crates tests --exclude-dir=flacdk 2>/dev/null |
    xargs -r grep -n '\.append(' /dev/null 2>/dev/null || true)

while IFS=: read -r file line text; do
    stripped="${text#"${text%%[![:space:]]*}"}"
    case "$stripped" in
    //*) continue ;;
    esac
    # The `_range` variants are the amortized path; only bare calls count.
    case "$text" in
    *"begin_shootdown_range("* | *"shootdown_stepped_range("*) continue ;;
    *"single-page:"*) continue ;;
    esac
    start=$((line > 3 ? line - 3 : 1))
    if sed -n "${start},$((line - 1))p" "$file" | grep -q "single-page:"; then
        continue
    fi
    echo "lint_sync: $file:$line: page-at-a-time TLB shootdown in a tiering crate: $stripped" >&2
    fail=1
done < <(grep -rn --include='*.rs' -E '(begin_shootdown|shootdown_stepped)\(' crates/flacos-tier/src crates/flacos/src 2>/dev/null || true)

if [ "$fail" -ne 0 ]; then
    echo "lint_sync: FAILED — migrate the state onto flacdk::sync::SyncCell" >&2
    echo "lint_sync: or annotate the declaration with '// coherent-local: <why>'." >&2
    echo "lint_sync: for registry().add, hold a Counter handle on hot paths" >&2
    echo "lint_sync: or annotate the call with '// cold-path: <why>'." >&2
    echo "lint_sync: for fabric-under-lock, stage the bytes and drop the" >&2
    echo "lint_sync: bank guard first, or annotate '// fill-publish: <why>'." >&2
    echo "lint_sync: for SharedOpLog::append outside flacdk, batch through" >&2
    echo "lint_sync: append_batch/nr_publish_batch or annotate '// single-op: <why>'." >&2
    echo "lint_sync: for page-at-a-time shootdowns, use the *_range variant" >&2
    echo "lint_sync: over contiguous vpns or annotate '// single-page: <why>'." >&2
    exit 1
fi
echo "lint_sync: OK"
